//! Bytecode compiler: lowers [`Program`] trees into compact [`Chunk`]s.
//!
//! The tree-walk interpreter re-discovers everything about a script on every
//! execution: identifier resolution hashes through environment maps, fuel is
//! charged by recursive `match` dispatch, and literals are re-boxed per
//! evaluation. This pass does that discovery once, at compile time, and
//! emits a flat `Vec<Op>` the [`crate::vm`] dispatch loop can replay:
//!
//! - **Constant pools.** Number and string literals live in per-function
//!   pools indexed by `u32`; property names and identifiers are carried as
//!   interned [`Atom`]s directly inside ops.
//! - **Slot resolution.** Function bodies that contain no inner functions
//!   (the overwhelmingly common case for generated page scripts) are
//!   compiled in *slot mode*: every `var`, parameter, and self-name gets a
//!   compile-time slot index, and identifier access becomes an indexed load
//!   through a [`NamePath`] — the chain of slots a lookup would traverse,
//!   ending in a dynamic fall-through to the captured environment for free
//!   variables. Bodies that create closures (and all top-level code) use
//!   *env mode*, which drives the same environment chain the tree-walk
//!   uses, so captured-variable semantics are shared by construction.
//! - **Fuel pre-aggregation.** The tree-walk burns one fuel unit per
//!   statement/expression node entered. The compiler emits a [`Op::Burn`]
//!   at exactly those points and then merges *adjacent* burns within a
//!   basic block (never across a jump target), so straight-line code pays
//!   its fuel in one branch instead of n. Merged burns are observably
//!   identical to sequential ones: no allocation or side effect can occur
//!   between two adjacent burn points, so the trap point, trap type, and
//!   remaining fuel all match the tree-walk bit for bit.
//!
//! Everything else — evaluation order, `this` binding, property
//! interception via `Heap::watch`, typed [`crate::RuntimeError`] traps,
//! heap/string budgets — is preserved exactly; the differential suite in
//! `tests/` holds the VM to tree-walk equality on full survey corpora.

use crate::ast::{BinOp, Expr, FunctionDef, Place, Program, Stmt, UnaryOp};
use bfu_util::Atom;
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, OnceLock};

/// One bytecode instruction. `u32` operands index per-function pools
/// ([`FuncChunk::nums`], [`FuncChunk::strs`], [`FuncChunk::paths`],
/// [`FuncChunk::funcs`], [`FuncChunk::scopes`]) or code offsets; `Atom`
/// operands are process-interned names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Charge `n` fuel units (with the heap-ceiling check), exactly as `n`
    /// consecutive tree-walk `burn()` calls would.
    Burn(u32),
    /// Push a number from the constant pool.
    Num(u32),
    /// Push a string literal from the constant pool.
    Str(u32),
    /// Push `true`.
    True,
    /// Push `false`.
    False,
    /// Push `null`.
    Null,
    /// Push `undefined`.
    Undefined,
    /// Push the `this` binding visible at this point.
    This,
    /// Push a variable resolved through the environment chain (env mode).
    LoadName(Atom),
    /// Pop a value and assign through the environment chain (env mode);
    /// creates a global if the name is nowhere declared (sloppy mode).
    StoreName(Atom),
    /// Pop a value and declare it in the current environment (env mode).
    DeclName(Atom),
    /// Push `typeof name`, yielding `"undefined"` for unresolved names.
    TypeofName(Atom),
    /// Push a variable through a [`NamePath`] (slot mode).
    LoadPath(u32),
    /// Pop a value and store through a [`NamePath`] (slot mode).
    StorePath(u32),
    /// Push `typeof` of a path-resolved variable (slot mode).
    TypeofPath(u32),
    /// Pop a value and declare it into a local slot (slot mode `var`).
    DeclSlot(u32),
    /// Reset every slot of one `for`-statement scope to undeclared
    /// (slot mode; emitted at loop entry and exit, mirroring the fresh
    /// environment the tree-walk pushes per `for` execution).
    ResetScope(u32),
    /// Pop a base, push `base.prop`.
    GetMember(Atom),
    /// Pop key then base, push `base[key]`.
    GetIndex,
    /// Pop base then value, store `base.prop = value` (fires watch).
    SetMember(Atom),
    /// Pop key, base, then value, store `base[key] = value` (fires watch).
    SetIndex,
    /// Pop a value, write it raw into the object left on the stack
    /// (object/array literal construction; no watch, like the tree-walk).
    SetPropRaw(Atom),
    /// Allocate a plain object and push it.
    AllocObject,
    /// Duplicate the top of stack.
    Dup,
    /// Swap the top two stack values.
    Swap,
    /// Discard the top of stack.
    Pop,
    /// Pop `argc` args, then `this`, then the callee; push the call result.
    Call(u32),
    /// Pop the constructor; type-check it, allocate the instance with the
    /// constructor's `prototype`, push constructor then instance back.
    NewAlloc,
    /// Pop `argc` args, the instance, and the constructor; invoke and push
    /// the constructed value (the return if it is an object).
    NewCall(u32),
    /// Allocate a closure over [`FuncChunk::funcs`]`[i]` capturing the
    /// current environment, and push it (env mode).
    MakeClosure(u32),
    /// Unconditional jump to a code offset.
    Jump(u32),
    /// Pop; jump if the value is falsy.
    JumpIfFalse(u32),
    /// `&&`: if the top of stack is falsy jump (keeping it), else pop.
    AndJump(u32),
    /// `||`: if the top of stack is truthy jump (keeping it), else pop.
    OrJump(u32),
    /// Pop rhs then lhs, push the binary result (string `+` charges the
    /// string budget exactly as the tree-walk does).
    Bin(BinOp),
    /// Pop, push numeric negation.
    Neg,
    /// Pop, push logical negation.
    Not,
    /// Pop, push its `typeof` string.
    TypeofVal,
    /// Pop, push `Num(to_number(v))`.
    ToNumber,
    /// Pop, push `Num(to_number(v) + 1)`.
    IncNum,
    /// Pop, push `Num(to_number(v) - 1)`.
    DecNum,
    /// Pop and return from the current frame.
    Return,
    /// Pop; record it as the interpreter's last expression value
    /// (expression statements anywhere but the direct top level).
    PopLastExpr,
    /// Pop; make it the program result and clear the last-expression
    /// register (direct top-level expression statements, mirroring
    /// `Interpreter::run`).
    TakeLastExpr,
    /// Push a fresh loop environment (env-mode `for` entry).
    PushLoopEnv,
    /// Restore the environment saved by the matching [`Op::PushLoopEnv`].
    PopLoopEnv,
    /// Trap: `break`/`continue` executed outside any loop.
    BreakOutside,
}

/// How a function body resolves identifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkMode {
    /// Real environment chain (top level, and bodies containing closures).
    Env,
    /// Compile-time slots with [`NamePath`] fall-through (leaf functions).
    Slot,
}

/// The slot chain one identifier would traverse in slot mode: every
/// enclosing scope's slot for the name, innermost first, then the interned
/// name for the dynamic fall-through into the captured environment chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NamePath {
    /// Slot indices to probe, innermost scope first. A slot holding `None`
    /// at runtime means "not yet declared here" and falls through.
    pub slots: Box<[u32]>,
    /// The name, for the captured-environment / global fall-through.
    pub atom: Atom,
}

/// One compiled function body (or the top-level program).
///
/// Self-contained and immutable: `Send + Sync`, shared across worker
/// threads by the content-addressed chunk cache exactly like parsed
/// programs were.
#[derive(Debug, PartialEq)]
pub struct FuncChunk {
    /// Function name, if any (declarations and named expressions).
    pub name: Option<Atom>,
    /// Parameter names in declaration order.
    pub params: Box<[Atom]>,
    /// Identifier-resolution strategy for this body.
    pub mode: ChunkMode,
    /// Total local slots (slot mode).
    pub n_slots: u32,
    /// Slot for each parameter, parallel to `params` (slot mode).
    pub param_slots: Box<[u32]>,
    /// Slot binding the function's own name, if named (slot mode).
    pub self_slot: Option<u32>,
    /// The instruction stream.
    pub code: Box<[Op]>,
    /// Number constant pool.
    pub nums: Box<[f64]>,
    /// String-literal constant pool.
    pub strs: Box<[Box<str>]>,
    /// Name paths for slot-mode identifier access.
    pub paths: Box<[NamePath]>,
    /// Per-`for`-scope slot lists for [`Op::ResetScope`] (slot mode).
    pub scopes: Box<[Box<[u32]>]>,
    /// Inner functions (env mode), lowered lazily on first call.
    pub funcs: Box<[Arc<LazyFunc>]>,
    /// Indices into `funcs` hoisted at body entry, in body order.
    pub hoisted: Box<[u32]>,
}

/// An inner function carried by a chunk: the shared parsed definition plus
/// a body that is lowered to bytecode **on first call** and memoized.
///
/// Real pages ship large library bundles that are parsed in full but mostly
/// never executed; production engines respond with exactly this split —
/// eager top-level compilation, lazy inner-function compilation, and a code
/// cache that persists whatever did get compiled. Allocating a closure (or
/// hoisting a declaration) only clones the `Arc`; the body is compiled the
/// first time the closure is *invoked*, by whichever thread gets there
/// first, and every later call — on any page sharing the chunk through the
/// content-addressed cache — reuses the lowered body.
///
/// Laziness is semantically invisible: compilation is pure and burns no
/// fuel, so *when* it happens cannot change what a script observes.
pub struct LazyFunc {
    /// The parsed definition (shared with the AST the chunk came from).
    def: Arc<FunctionDef>,
    /// The lowered body, produced by the first call.
    body: OnceLock<Result<Arc<FuncChunk>, CompileError>>,
}

impl LazyFunc {
    fn new(def: Arc<FunctionDef>) -> LazyFunc {
        LazyFunc {
            def,
            body: OnceLock::new(),
        }
    }

    /// The function's name, available without lowering the body.
    pub fn name(&self) -> Option<Atom> {
        self.def.name
    }

    /// The lowered body, compiling it on first use (thread-safe, memoized).
    pub fn force(&self) -> Result<&Arc<FuncChunk>, CompileError> {
        self.body
            .get_or_init(|| FnCompiler::compile_function(&self.def).map(Arc::new))
            .as_ref()
            .map_err(CompileError::clone)
    }

    /// The lowered body, if some call has already forced it.
    pub fn compiled(&self) -> Option<&Arc<FuncChunk>> {
        self.body.get().and_then(|r| r.as_ref().ok())
    }
}

/// Structural equality on the definition: lowering is deterministic, so two
/// `LazyFunc`s over equal trees produce equal bodies whenever forced.
impl PartialEq for LazyFunc {
    fn eq(&self, other: &Self) -> bool {
        self.def == other.def
    }
}

impl fmt::Debug for LazyFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "LazyFunc({}, {})",
            self.def.name.map(Atom::as_str).unwrap_or("<anon>"),
            if self.body.get().is_some() {
                "lowered"
            } else {
                "pending"
            }
        )
    }
}

/// A compiled program: the top-level body plus its nested function chunks.
#[derive(Debug, PartialEq)]
pub struct Chunk {
    /// The top-level code, always [`ChunkMode::Env`] over the global scope.
    pub main: FuncChunk,
}

impl Chunk {
    /// Total instructions across the lowered chunk tree (diagnostics).
    /// Counts only bodies some call has actually forced — never-called
    /// functions have no instructions to count.
    pub fn op_count(&self) -> usize {
        fn count(f: &FuncChunk) -> usize {
            f.code.len()
                + f.funcs
                    .iter()
                    .filter_map(|l| l.compiled())
                    .map(|c| count(c))
                    .sum::<usize>()
        }
        count(&self.main)
    }
}

/// Why a program could not be lowered to bytecode. Plain value (`Clone +
/// PartialEq`) so the chunk cache can replay it bit-identically, like
/// [`crate::parser::ParseError`]. The embedder falls back to tree-walk
/// execution of the AST when it sees one, so compile limits never change
/// what a survey measures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// Human-readable reason.
    pub message: String,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "compile error: {}", self.message)
    }
}

impl std::error::Error for CompileError {}

fn err(message: impl Into<String>) -> CompileError {
    CompileError {
        message: message.into(),
    }
}

/// Compile a parsed program into a bytecode chunk.
///
/// Pure: the output depends only on the tree, so chunks are safe to share
/// through the content-addressed cache. Never panics; pathological inputs
/// (pool or code-offset overflow past `u32`) surface as [`CompileError`].
pub fn compile(program: &Program) -> Result<Chunk, CompileError> {
    let main = FnCompiler::compile_top_level(&program.body)?;
    Ok(Chunk { main })
}

/// Does this statement list contain any function (declaration or
/// expression), at any nesting depth short of entering inner function
/// bodies? Presence forces env mode: closures capture real environments.
fn stmts_contain_function(stmts: &[Stmt]) -> bool {
    stmts.iter().any(stmt_contains_function)
}

fn stmt_contains_function(s: &Stmt) -> bool {
    match s {
        Stmt::FunctionDecl(_) => true,
        Stmt::Expr(e) | Stmt::Var(_, Some(e)) => expr_contains_function(e),
        Stmt::Var(_, None) | Stmt::Break | Stmt::Continue => false,
        Stmt::Return(e) => e.as_ref().is_some_and(expr_contains_function),
        Stmt::If {
            cond,
            then,
            otherwise,
        } => {
            expr_contains_function(cond)
                || stmts_contain_function(then)
                || stmts_contain_function(otherwise)
        }
        Stmt::While { cond, body } => expr_contains_function(cond) || stmts_contain_function(body),
        Stmt::For {
            init,
            cond,
            update,
            body,
        } => {
            init.as_deref().is_some_and(stmt_contains_function)
                || cond.as_ref().is_some_and(expr_contains_function)
                || update.as_ref().is_some_and(expr_contains_function)
                || stmts_contain_function(body)
        }
        Stmt::Block(b) => stmts_contain_function(b),
    }
}

fn expr_contains_function(e: &Expr) -> bool {
    match e {
        Expr::Function(_) => true,
        Expr::Num(_)
        | Expr::Str(_)
        | Expr::Bool(_)
        | Expr::Null
        | Expr::Undefined
        | Expr::Ident(_)
        | Expr::This => false,
        Expr::Member(o, _) => expr_contains_function(o),
        Expr::Index(o, k) => expr_contains_function(o) || expr_contains_function(k),
        Expr::Call { callee, args } | Expr::New { callee, args } => {
            expr_contains_function(callee) || args.iter().any(expr_contains_function)
        }
        Expr::Assign { place, value, .. } => {
            place_contains_function(place) || expr_contains_function(value)
        }
        Expr::IncDec { place, .. } => place_contains_function(place),
        Expr::Binary { lhs, rhs, .. } | Expr::Logical { lhs, rhs, .. } => {
            expr_contains_function(lhs) || expr_contains_function(rhs)
        }
        Expr::Unary { expr, .. } => expr_contains_function(expr),
        Expr::Cond {
            cond,
            then,
            otherwise,
        } => {
            expr_contains_function(cond)
                || expr_contains_function(then)
                || expr_contains_function(otherwise)
        }
        Expr::ObjectLit(props) => props.iter().any(|(_, v)| expr_contains_function(v)),
        Expr::ArrayLit(items) => items.iter().any(expr_contains_function),
    }
}

fn place_contains_function(p: &Place) -> bool {
    match p {
        Place::Var(_) => false,
        Place::Member(o, _) => expr_contains_function(o),
        Place::Index(o, k) => expr_contains_function(o) || expr_contains_function(k),
    }
}

/// Slot assignment for a slot-mode body, computed by a pre-pass so uses
/// that precede their `var` textually still resolve to the right slot.
struct SlotPlan {
    /// `maps[0]` is the function scope; `maps[i + 1]` is the scope of the
    /// i-th `for` statement in pre-order.
    maps: Vec<HashMap<Atom, u32>>,
    n_slots: u32,
}

impl SlotPlan {
    fn build(def_params: &[Atom], self_name: Option<Atom>, body: &[Stmt]) -> SlotPlan {
        let mut plan = SlotPlan {
            maps: vec![HashMap::new()],
            n_slots: 0,
        };
        for &p in def_params {
            plan.declare(0, p);
        }
        if let Some(n) = self_name {
            plan.declare(0, n);
        }
        let mut open = vec![0usize];
        plan.walk_stmts(body, &mut open);
        plan
    }

    fn declare(&mut self, scope: usize, name: Atom) -> u32 {
        let next = self.n_slots;
        let slot = *self.maps[scope].entry(name).or_insert(next);
        if slot == next {
            self.n_slots += 1;
        }
        slot
    }

    /// Mirrors the emit pass's traversal order exactly: `for` statements
    /// are numbered pre-order, and `var` declares into the innermost open
    /// scope — the environment the tree-walk would insert into.
    fn walk_stmts(&mut self, stmts: &[Stmt], open: &mut Vec<usize>) {
        for s in stmts {
            self.walk_stmt(s, open);
        }
    }

    fn walk_stmt(&mut self, s: &Stmt, open: &mut Vec<usize>) {
        match s {
            Stmt::Var(name, _) => {
                let innermost = open.last().copied().unwrap_or(0);
                self.declare(innermost, *name);
            }
            Stmt::If {
                then, otherwise, ..
            } => {
                self.walk_stmts(then, open);
                self.walk_stmts(otherwise, open);
            }
            Stmt::While { body, .. } => self.walk_stmts(body, open),
            Stmt::For { init, body, .. } => {
                let scope = self.maps.len();
                self.maps.push(HashMap::new());
                open.push(scope);
                if let Some(init) = init {
                    self.walk_stmt(init, open);
                }
                self.walk_stmts(body, open);
                open.pop();
            }
            Stmt::Block(b) => self.walk_stmts(b, open),
            Stmt::Expr(_)
            | Stmt::Return(_)
            | Stmt::Break
            | Stmt::Continue
            | Stmt::FunctionDecl(_) => {}
        }
    }
}

/// Break/continue patch sites for one enclosing loop.
#[derive(Default)]
struct LoopCtx {
    breaks: Vec<usize>,
    continues: Vec<usize>,
}

/// Per-function compilation state.
struct FnCompiler {
    code: Vec<Op>,
    nums: Vec<f64>,
    num_ix: HashMap<u64, u32>,
    strs: Vec<Box<str>>,
    str_ix: HashMap<Box<str>, u32>,
    paths: Vec<NamePath>,
    path_ix: HashMap<(Box<[u32]>, Atom), u32>,
    funcs: Vec<Arc<LazyFunc>>,
    mode: ChunkMode,
    /// Slot-mode scope maps from the pre-pass (`[0]` = function scope).
    slot_maps: Vec<HashMap<Atom, u32>>,
    /// Indices into `slot_maps` currently open, outermost first.
    open_scopes: Vec<usize>,
    /// Next pre-order `for`-scope id (slot mode).
    next_for: usize,
    loops: Vec<LoopCtx>,
    /// First code offset at which burn-merging is allowed: reset to the
    /// current position whenever a jump target is bound, so fuel charges
    /// never merge across a basic-block boundary.
    barrier: usize,
    /// The next emitted statement is a direct child of `Program::body`.
    direct_top: bool,
}

impl FnCompiler {
    fn new(mode: ChunkMode) -> FnCompiler {
        FnCompiler {
            code: Vec::new(),
            nums: Vec::new(),
            num_ix: HashMap::new(),
            strs: Vec::new(),
            str_ix: HashMap::new(),
            paths: Vec::new(),
            path_ix: HashMap::new(),
            funcs: Vec::new(),
            mode,
            slot_maps: Vec::new(),
            open_scopes: Vec::new(),
            next_for: 0,
            loops: Vec::new(),
            barrier: 0,
            direct_top: false,
        }
    }

    fn compile_top_level(body: &[Stmt]) -> Result<FuncChunk, CompileError> {
        let mut c = FnCompiler::new(ChunkMode::Env);
        let hoisted = c.precompile_hoisted(body)?;
        for (i, s) in body.iter().enumerate() {
            c.direct_top = true;
            c.emit_body_stmt(s, hoisted.get(&i).copied())?;
        }
        c.finish(None, &[], None, hoisted.into_values().collect())
    }

    fn compile_function(def: &FunctionDef) -> Result<FuncChunk, CompileError> {
        if stmts_contain_function(&def.body) {
            let mut c = FnCompiler::new(ChunkMode::Env);
            let hoisted = c.precompile_hoisted(&def.body)?;
            for (i, s) in def.body.iter().enumerate() {
                c.emit_body_stmt(s, hoisted.get(&i).copied())?;
            }
            c.finish(def.name, &def.params, None, hoisted.into_values().collect())
        } else {
            let mut c = FnCompiler::new(ChunkMode::Slot);
            let plan = SlotPlan::build(&def.params, def.name, &def.body);
            c.slot_maps = plan.maps;
            c.open_scopes = vec![0];
            for s in &def.body {
                c.stmt(s)?;
            }
            c.finish(def.name, &def.params, Some(plan.n_slots), Vec::new())
        }
    }

    /// Compile every direct `function` declaration ahead of the body (the
    /// hoisting set), returning body-position → chunk index so the
    /// declaration statements reuse the same compiled chunk.
    fn precompile_hoisted(
        &mut self,
        body: &[Stmt],
    ) -> Result<std::collections::BTreeMap<usize, u32>, CompileError> {
        let mut hoisted = std::collections::BTreeMap::new();
        for (i, s) in body.iter().enumerate() {
            if let Stmt::FunctionDecl(def) = s {
                if def.name.is_some() {
                    let fi = self.child(def)?;
                    hoisted.insert(i, fi);
                }
            }
        }
        Ok(hoisted)
    }

    fn finish(
        self,
        name: Option<Atom>,
        params: &[Atom],
        n_slots: Option<u32>,
        hoisted: Vec<u32>,
    ) -> Result<FuncChunk, CompileError> {
        if self.code.len() >= u32::MAX as usize {
            return Err(err("function body exceeds the bytecode size limit"));
        }
        let (param_slots, self_slot, scopes) = match self.mode {
            ChunkMode::Env => (Vec::new(), None, Vec::new()),
            ChunkMode::Slot => {
                let fn_scope = self.slot_maps.first().ok_or_else(|| err("missing plan"))?;
                let mut param_slots = Vec::with_capacity(params.len());
                for p in params {
                    let slot = fn_scope
                        .get(p)
                        .copied()
                        .ok_or_else(|| err("parameter missing from slot plan"))?;
                    param_slots.push(slot);
                }
                let self_slot = match name {
                    Some(n) => Some(
                        fn_scope
                            .get(&n)
                            .copied()
                            .ok_or_else(|| err("self name missing from slot plan"))?,
                    ),
                    None => None,
                };
                let scopes: Vec<Box<[u32]>> = self.slot_maps[1..]
                    .iter()
                    .map(|m| {
                        let mut slots: Vec<u32> = m.values().copied().collect();
                        slots.sort_unstable();
                        slots.into_boxed_slice()
                    })
                    .collect();
                (param_slots, self_slot, scopes)
            }
        };
        Ok(FuncChunk {
            name,
            params: params.to_vec().into_boxed_slice(),
            mode: self.mode,
            n_slots: n_slots.unwrap_or(0),
            param_slots: param_slots.into_boxed_slice(),
            self_slot,
            code: self.code.into_boxed_slice(),
            nums: self.nums.into_boxed_slice(),
            strs: self.strs.into_boxed_slice(),
            paths: self.paths.into_boxed_slice(),
            scopes: scopes.into_boxed_slice(),
            funcs: self.funcs.into_boxed_slice(),
            hoisted: hoisted.into_boxed_slice(),
        })
    }

    // ---- emission helpers ----

    fn push(&mut self, op: Op) {
        self.code.push(op);
    }

    /// Charge one fuel unit, merging into an immediately preceding burn
    /// when no basic-block boundary intervenes.
    fn burn(&mut self) {
        let at = self.code.len();
        if at > self.barrier {
            if let Some(Op::Burn(n)) = self.code.last_mut() {
                if *n < u32::MAX {
                    *n += 1;
                    return;
                }
            }
        }
        self.code.push(Op::Burn(1));
    }

    /// Bind a label here: returns the offset and fences burn-merging.
    fn here(&mut self) -> u32 {
        self.barrier = self.code.len();
        self.code.len() as u32
    }

    /// Emit a forward jump with a placeholder target; returns the patch site.
    fn emit_jump(&mut self, make: fn(u32) -> Op) -> usize {
        let at = self.code.len();
        self.code.push(make(u32::MAX));
        at
    }

    fn patch(&mut self, site: usize, target: u32) -> Result<(), CompileError> {
        let op = match self.code.get(site).copied() {
            Some(Op::Jump(_)) => Op::Jump(target),
            Some(Op::JumpIfFalse(_)) => Op::JumpIfFalse(target),
            Some(Op::AndJump(_)) => Op::AndJump(target),
            Some(Op::OrJump(_)) => Op::OrJump(target),
            _ => return Err(err("patch site is not a jump")),
        };
        self.code[site] = op;
        Ok(())
    }

    fn bind(&mut self, sites: &[usize]) -> Result<u32, CompileError> {
        let target = self.here();
        for &s in sites {
            self.patch(s, target)?;
        }
        Ok(target)
    }

    fn num(&mut self, n: f64) -> Result<u32, CompileError> {
        if let Some(&i) = self.num_ix.get(&n.to_bits()) {
            return Ok(i);
        }
        let i = u32::try_from(self.nums.len()).map_err(|_| err("number pool overflow"))?;
        self.nums.push(n);
        self.num_ix.insert(n.to_bits(), i);
        Ok(i)
    }

    fn str_const(&mut self, s: &str) -> Result<u32, CompileError> {
        if let Some(&i) = self.str_ix.get(s) {
            return Ok(i);
        }
        let i = u32::try_from(self.strs.len()).map_err(|_| err("string pool overflow"))?;
        let boxed: Box<str> = s.into();
        self.strs.push(boxed.clone());
        self.str_ix.insert(boxed, i);
        Ok(i)
    }

    /// Register an inner function. Its body is *not* lowered here — only on
    /// first call (see [`LazyFunc`]) — so a chunk's compile cost scales with
    /// the code a page actually runs, not with every library bundle it ships.
    fn child(&mut self, def: &Arc<FunctionDef>) -> Result<u32, CompileError> {
        let i = u32::try_from(self.funcs.len()).map_err(|_| err("function pool overflow"))?;
        self.funcs.push(Arc::new(LazyFunc::new(def.clone())));
        Ok(i)
    }

    /// The [`NamePath`] for `name` under the currently open slot scopes.
    fn path(&mut self, name: Atom) -> Result<u32, CompileError> {
        let mut slots = Vec::new();
        for &scope in self.open_scopes.iter().rev() {
            if let Some(&slot) = self.slot_maps[scope].get(&name) {
                slots.push(slot);
            }
        }
        let key = (slots.into_boxed_slice(), name);
        if let Some(&i) = self.path_ix.get(&key) {
            return Ok(i);
        }
        let i = u32::try_from(self.paths.len()).map_err(|_| err("path pool overflow"))?;
        self.paths.push(NamePath {
            slots: key.0.clone(),
            atom: name,
        });
        self.path_ix.insert(key, i);
        Ok(i)
    }

    fn load_name(&mut self, name: Atom) -> Result<(), CompileError> {
        match self.mode {
            ChunkMode::Env => self.push(Op::LoadName(name)),
            ChunkMode::Slot => {
                let p = self.path(name)?;
                self.push(Op::LoadPath(p));
            }
        }
        Ok(())
    }

    fn store_name(&mut self, name: Atom) -> Result<(), CompileError> {
        match self.mode {
            ChunkMode::Env => self.push(Op::StoreName(name)),
            ChunkMode::Slot => {
                let p = self.path(name)?;
                self.push(Op::StorePath(p));
            }
        }
        Ok(())
    }

    fn decl_name(&mut self, name: Atom) -> Result<(), CompileError> {
        match self.mode {
            ChunkMode::Env => self.push(Op::DeclName(name)),
            ChunkMode::Slot => {
                let innermost = self.open_scopes.last().copied().unwrap_or(0);
                let slot = self.slot_maps[innermost]
                    .get(&name)
                    .copied()
                    .ok_or_else(|| err("var missing from slot plan"))?;
                self.push(Op::DeclSlot(slot));
            }
        }
        Ok(())
    }

    // ---- statements ----

    /// Emit a direct body statement, reusing the precompiled chunk for
    /// hoisted function declarations.
    fn emit_body_stmt(&mut self, s: &Stmt, hoisted_fi: Option<u32>) -> Result<(), CompileError> {
        if let (Stmt::FunctionDecl(def), Some(fi)) = (s, hoisted_fi) {
            self.direct_top = false;
            self.burn();
            if let Some(name) = def.name {
                self.push(Op::MakeClosure(fi));
                self.push(Op::DeclName(name));
            }
            return Ok(());
        }
        self.stmt(s)
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), CompileError> {
        let direct = std::mem::take(&mut self.direct_top);
        self.burn();
        match s {
            Stmt::Expr(e) => {
                self.expr(e)?;
                self.push(if direct {
                    Op::TakeLastExpr
                } else {
                    Op::PopLastExpr
                });
            }
            Stmt::Var(name, init) => {
                match init {
                    Some(e) => self.expr(e)?,
                    None => self.push(Op::Undefined),
                }
                self.decl_name(*name)?;
            }
            Stmt::FunctionDecl(def) => {
                // A non-hoisted (nested) declaration: allocates a fresh
                // closure when executed, like the tree-walk.
                if self.mode == ChunkMode::Slot {
                    return Err(err("function declaration in slot-mode body"));
                }
                if let Some(name) = def.name {
                    let fi = self.child(def)?;
                    self.push(Op::MakeClosure(fi));
                    self.push(Op::DeclName(name));
                }
            }
            Stmt::Return(e) => {
                match e {
                    Some(e) => self.expr(e)?,
                    None => self.push(Op::Undefined),
                }
                self.push(Op::Return);
            }
            Stmt::If {
                cond,
                then,
                otherwise,
            } => {
                self.expr(cond)?;
                let jf = self.emit_jump(Op::JumpIfFalse);
                for s in then {
                    self.stmt(s)?;
                }
                if otherwise.is_empty() {
                    self.bind(&[jf])?;
                } else {
                    let jend = self.emit_jump(Op::Jump);
                    self.bind(&[jf])?;
                    for s in otherwise {
                        self.stmt(s)?;
                    }
                    self.bind(&[jend])?;
                }
            }
            Stmt::While { cond, body } => {
                let start = self.here();
                self.expr(cond)?;
                let jf = self.emit_jump(Op::JumpIfFalse);
                self.loops.push(LoopCtx::default());
                for s in body {
                    self.stmt(s)?;
                }
                self.push(Op::Jump(start));
                let ctx = self.loops.pop().unwrap_or_default();
                let end = self.bind(&[jf])?;
                for b in ctx.breaks {
                    self.patch(b, end)?;
                }
                for c in ctx.continues {
                    self.patch(c, start)?;
                }
            }
            Stmt::For {
                init,
                cond,
                update,
                body,
            } => self.for_stmt(init.as_deref(), cond.as_ref(), update.as_ref(), body)?,
            Stmt::Block(stmts) => {
                for s in stmts {
                    self.stmt(s)?;
                }
            }
            Stmt::Break => {
                if self.loops.is_empty() {
                    self.push(Op::BreakOutside);
                } else {
                    let j = self.emit_jump(Op::Jump);
                    if let Some(ctx) = self.loops.last_mut() {
                        ctx.breaks.push(j);
                    }
                }
            }
            Stmt::Continue => {
                if self.loops.is_empty() {
                    self.push(Op::BreakOutside);
                } else {
                    let j = self.emit_jump(Op::Jump);
                    if let Some(ctx) = self.loops.last_mut() {
                        ctx.continues.push(j);
                    }
                }
            }
        }
        Ok(())
    }

    fn for_stmt(
        &mut self,
        init: Option<&Stmt>,
        cond: Option<&Expr>,
        update: Option<&Expr>,
        body: &[Stmt],
    ) -> Result<(), CompileError> {
        // Scope entry: a fresh environment (env mode) or a slot-scope reset
        // (slot mode) per execution of the `for` statement.
        let scope_id = match self.mode {
            ChunkMode::Env => {
                self.push(Op::PushLoopEnv);
                None
            }
            ChunkMode::Slot => {
                self.next_for += 1;
                let map_ix = self.next_for; // slot_maps[0] is the fn scope
                let id = u32::try_from(map_ix - 1).map_err(|_| err("scope overflow"))?;
                self.push(Op::ResetScope(id));
                self.open_scopes.push(map_ix);
                Some(id)
            }
        };
        if let Some(init) = init {
            self.stmt(init)?;
        }
        let cond_pos = self.here();
        let jf = match cond {
            Some(c) => {
                self.expr(c)?;
                Some(self.emit_jump(Op::JumpIfFalse))
            }
            None => None,
        };
        self.loops.push(LoopCtx::default());
        for s in body {
            self.stmt(s)?;
        }
        let cont = self.here();
        if let Some(u) = update {
            self.expr(u)?;
            self.push(Op::Pop);
        }
        self.push(Op::Jump(cond_pos));
        let ctx = self.loops.pop().unwrap_or_default();
        let mut exits = ctx.breaks;
        if let Some(jf) = jf {
            exits.push(jf);
        }
        self.bind(&exits)?;
        for c in ctx.continues {
            self.patch(c, cont)?;
        }
        match self.mode {
            ChunkMode::Env => self.push(Op::PopLoopEnv),
            ChunkMode::Slot => {
                if let Some(id) = scope_id {
                    self.push(Op::ResetScope(id));
                }
                self.open_scopes.pop();
            }
        }
        Ok(())
    }

    // ---- expressions ----

    fn expr(&mut self, e: &Expr) -> Result<(), CompileError> {
        self.burn();
        match e {
            Expr::Num(n) => {
                let i = self.num(*n)?;
                self.push(Op::Num(i));
            }
            Expr::Str(s) => {
                let i = self.str_const(s)?;
                self.push(Op::Str(i));
            }
            Expr::Bool(true) => self.push(Op::True),
            Expr::Bool(false) => self.push(Op::False),
            Expr::Null => self.push(Op::Null),
            Expr::Undefined => self.push(Op::Undefined),
            Expr::This => self.push(Op::This),
            Expr::Ident(name) => self.load_name(*name)?,
            Expr::Member(o, p) => {
                self.expr(o)?;
                self.push(Op::GetMember(*p));
            }
            Expr::Index(o, k) => {
                self.expr(o)?;
                self.expr(k)?;
                self.push(Op::GetIndex);
            }
            Expr::Call { callee, args } => {
                // Method calls bind `this` to the receiver; the callee is
                // fetched before arguments evaluate (so `null.f(...)`
                // throws without touching the args), exactly like the
                // tree-walk. The receiver expression evaluates once.
                match &**callee {
                    Expr::Member(o, p) => {
                        self.expr(o)?;
                        self.push(Op::Dup);
                        self.push(Op::GetMember(*p));
                        self.push(Op::Swap);
                    }
                    Expr::Index(o, k) => {
                        self.expr(o)?;
                        self.push(Op::Dup);
                        self.expr(k)?;
                        self.push(Op::GetIndex);
                        self.push(Op::Swap);
                    }
                    other => {
                        self.expr(other)?;
                        self.push(Op::Undefined);
                    }
                }
                for a in args {
                    self.expr(a)?;
                }
                let argc = u32::try_from(args.len()).map_err(|_| err("too many arguments"))?;
                self.push(Op::Call(argc));
            }
            Expr::New { callee, args } => {
                self.expr(callee)?;
                // Type-check + instance allocation happen before argument
                // evaluation, matching the tree-walk's order.
                self.push(Op::NewAlloc);
                for a in args {
                    self.expr(a)?;
                }
                let argc = u32::try_from(args.len()).map_err(|_| err("too many arguments"))?;
                self.push(Op::NewCall(argc));
            }
            Expr::Assign { place, op, value } => {
                self.expr(value)?;
                match op {
                    None => {
                        self.push(Op::Dup);
                        self.write_place(place)?;
                    }
                    Some(binop) => {
                        // Compound assignment re-evaluates the place's base
                        // (and key) for the write, like read_place +
                        // write_place in the tree-walk.
                        self.read_place(place)?;
                        self.push(Op::Swap);
                        self.push(Op::Bin(*binop));
                        self.push(Op::Dup);
                        self.write_place(place)?;
                    }
                }
            }
            Expr::IncDec {
                place,
                is_inc,
                postfix,
            } => {
                self.read_place(place)?;
                let step = if *is_inc { Op::IncNum } else { Op::DecNum };
                if *postfix {
                    self.push(Op::ToNumber);
                    self.push(Op::Dup);
                    self.push(step);
                } else {
                    self.push(step);
                    self.push(Op::Dup);
                }
                self.write_place(place)?;
            }
            Expr::Binary { op, lhs, rhs } => {
                self.expr(lhs)?;
                self.expr(rhs)?;
                self.push(Op::Bin(*op));
            }
            Expr::Logical { op, lhs, rhs } => {
                self.expr(lhs)?;
                let j = self.emit_jump(match op {
                    crate::ast::LogicalOp::And => Op::AndJump,
                    crate::ast::LogicalOp::Or => Op::OrJump,
                });
                self.expr(rhs)?;
                self.bind(&[j])?;
            }
            Expr::Unary { op, expr } => match op {
                UnaryOp::Neg => {
                    self.expr(expr)?;
                    self.push(Op::Neg);
                }
                UnaryOp::Not => {
                    self.expr(expr)?;
                    self.push(Op::Not);
                }
                UnaryOp::Typeof => match &**expr {
                    // typeof on a bare identifier doesn't burn for (or
                    // throw on) the lookup, per the tree-walk.
                    Expr::Ident(name) => match self.mode {
                        ChunkMode::Env => self.push(Op::TypeofName(*name)),
                        ChunkMode::Slot => {
                            let p = self.path(*name)?;
                            self.push(Op::TypeofPath(p));
                        }
                    },
                    other => {
                        self.expr(other)?;
                        self.push(Op::TypeofVal);
                    }
                },
            },
            Expr::Cond {
                cond,
                then,
                otherwise,
            } => {
                self.expr(cond)?;
                let jf = self.emit_jump(Op::JumpIfFalse);
                self.expr(then)?;
                let jend = self.emit_jump(Op::Jump);
                self.bind(&[jf])?;
                self.expr(otherwise)?;
                self.bind(&[jend])?;
            }
            Expr::Function(def) => {
                if self.mode == ChunkMode::Slot {
                    return Err(err("function expression in slot-mode body"));
                }
                let fi = self.child(def)?;
                self.push(Op::MakeClosure(fi));
            }
            Expr::ObjectLit(props) => {
                self.push(Op::AllocObject);
                for (k, v) in props {
                    self.expr(v)?;
                    self.push(Op::SetPropRaw(*k));
                }
            }
            Expr::ArrayLit(items) => {
                self.push(Op::AllocObject);
                let mut index_key = String::new();
                for (i, item) in items.iter().enumerate() {
                    self.expr(item)?;
                    index_key.clear();
                    let _ = fmt::Write::write_fmt(&mut index_key, format_args!("{i}"));
                    self.push(Op::SetPropRaw(Atom::intern(&index_key)));
                }
                let len = self.num(items.len() as f64)?;
                self.push(Op::Num(len));
                self.push(Op::SetPropRaw(Atom::intern("length")));
            }
        }
        Ok(())
    }

    /// Read a place's current value onto the stack. Unlike `expr`, charges
    /// no fuel of its own — the tree-walk's `read_place` doesn't either
    /// (only the base/key sub-expressions burn).
    fn read_place(&mut self, place: &Place) -> Result<(), CompileError> {
        match place {
            Place::Var(name) => self.load_name(*name)?,
            Place::Member(o, p) => {
                self.expr(o)?;
                self.push(Op::GetMember(*p));
            }
            Place::Index(o, k) => {
                self.expr(o)?;
                self.expr(k)?;
                self.push(Op::GetIndex);
            }
        }
        Ok(())
    }

    /// Pop the value under the place's base/key operands and store it.
    fn write_place(&mut self, place: &Place) -> Result<(), CompileError> {
        match place {
            Place::Var(name) => self.store_name(*name)?,
            Place::Member(o, p) => {
                self.expr(o)?;
                self.push(Op::SetMember(*p));
            }
            Place::Index(o, k) => {
                self.expr(o)?;
                self.expr(k)?;
                self.push(Op::SetIndex);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn compile_src(src: &str) -> Chunk {
        compile(&parse(src).expect("parses")).expect("compiles")
    }

    #[test]
    fn straight_line_burns_merge() {
        let chunk = compile_src("var a = 1; var b = 2;");
        // Each statement's burn merges with its initializer's burn (they are
        // literally adjacent), so two ops charge four tree-walk burns.
        let burns: Vec<u32> = chunk
            .main
            .code
            .iter()
            .filter_map(|op| match op {
                Op::Burn(n) => Some(*n),
                _ => None,
            })
            .collect();
        assert_eq!(burns, vec![2, 2], "stmt+expr burn pairs merge");
    }

    #[test]
    fn burns_do_not_merge_across_jump_targets() {
        let chunk = compile_src("var i = 0; while (i < 3) { i = i + 1; }");
        // The while-condition burn is a jump target: the backward edge
        // re-enters there, so it must stay its own op.
        let total: u32 = chunk
            .main
            .code
            .iter()
            .map(|op| match op {
                Op::Burn(n) => *n,
                _ => 0,
            })
            .sum();
        assert!(total > 0);
        let has_jump_back = chunk
            .main
            .code
            .iter()
            .any(|op| matches!(op, Op::Jump(t) if (*t as usize) < chunk.main.code.len()));
        assert!(has_jump_back);
    }

    #[test]
    fn leaf_functions_compile_to_slot_mode() {
        let chunk = compile_src("function f(x) { var y = x + 1; return y; } f(1);");
        assert_eq!(chunk.main.mode, ChunkMode::Env);
        assert_eq!(chunk.main.funcs.len(), 1);
        let f = chunk.main.funcs[0].force().expect("lowers");
        assert_eq!(f.mode, ChunkMode::Slot);
        assert_eq!(f.n_slots, 3, "param x + self name f + var y");
        assert!(f.code.iter().any(|op| matches!(op, Op::LoadPath(_))));
        assert!(!f.code.iter().any(|op| matches!(op, Op::LoadName(_))));
    }

    #[test]
    fn closure_bodies_stay_in_env_mode() {
        let chunk =
            compile_src("function outer() { var n = 1; return function () { return n; }; }");
        let outer = chunk.main.funcs[0].force().expect("lowers");
        assert_eq!(outer.mode, ChunkMode::Env);
        assert_eq!(outer.funcs.len(), 1);
        assert_eq!(
            outer.funcs[0].force().expect("lowers").mode,
            ChunkMode::Slot
        );
    }

    #[test]
    fn for_scopes_get_reset_ops_in_slot_mode() {
        let chunk =
            compile_src("function f() { for (var i = 0; i < 2; i = i + 1) { var t = i; } }");
        let f = chunk.main.funcs[0].force().expect("lowers");
        assert_eq!(f.mode, ChunkMode::Slot);
        assert_eq!(f.scopes.len(), 1);
        assert_eq!(f.scopes[0].len(), 2, "i and t live in the loop scope");
        let resets = f
            .code
            .iter()
            .filter(|op| matches!(op, Op::ResetScope(0)))
            .count();
        assert_eq!(resets, 2, "reset at entry and exit");
    }

    #[test]
    fn constant_pools_deduplicate() {
        let chunk = compile_src("var a = 1 + 1 + 1; var s = 'x' + 'x';");
        assert_eq!(chunk.main.nums.len(), 1);
        assert_eq!(chunk.main.strs.len(), 1);
    }

    #[test]
    fn hoisted_declarations_share_one_chunk() {
        let chunk = compile_src("function g() { return 1; } g();");
        assert_eq!(chunk.main.funcs.len(), 1, "hoist + statement reuse");
        assert_eq!(chunk.main.hoisted.len(), 1);
    }

    #[test]
    fn inner_bodies_lower_lazily_and_memoize() {
        let chunk = compile_src("function f(x) { return x + 1; } f(1);");
        let lazy = &chunk.main.funcs[0];
        assert!(
            lazy.compiled().is_none(),
            "compile() must not lower inner bodies"
        );
        let first = Arc::clone(lazy.force().expect("lowers"));
        let second = Arc::clone(lazy.force().expect("memoized"));
        assert!(
            Arc::ptr_eq(&first, &second),
            "forcing twice shares one body"
        );
        assert!(lazy.compiled().is_some());
        assert!(chunk.op_count() > chunk.main.code.len());
    }

    #[test]
    fn compile_is_deterministic() {
        let src =
            "function f(a, b) { for (var i = 0; i < b; i++) { a = a + i; } return a; } f(0, 4);";
        let p = parse(src).expect("parses");
        let a = compile(&p).expect("compiles");
        let b = compile(&p).expect("compiles");
        assert_eq!(a, b);
    }
}
