//! The tree-walking interpreter.
//!
//! Execution is *step-budgeted*: every expression/statement evaluation burns
//! one unit of fuel, and exhausting the budget aborts the script with
//! [`RuntimeError::OutOfFuel`]. The crawler uses this as its per-page script
//! budget (a runaway ad script can't stall the crawl), mirroring how the
//! paper bounded per-page interaction time.
//!
//! Host integration happens through *native functions*: Rust closures
//! registered with [`Interpreter::register_native`], wrapped in callable
//! heap objects. The browser crate uses these to implement the entire Web
//! API surface and the instrumentation wrappers.

use crate::ast::*;
use crate::budget::ResourceBudget;
use crate::object::{Callable, EnvId, Heap};
use crate::parser::{parse, ParseError};
use crate::value::Value;
use bfu_util::Atom;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;

/// Errors surfaced while running a script.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// Wrong kind of value for an operation.
    TypeError(String),
    /// Unresolved identifier.
    ReferenceError(String),
    /// Step budget exhausted.
    OutOfFuel,
    /// Call stack too deep.
    StackOverflow,
    /// Heap-cell allowance exhausted (allocation bomb).
    HeapExhausted,
    /// String-byte allowance exhausted (string bomb).
    StringOverflow,
}

impl RuntimeError {
    /// Whether this error is a resource-governor trap (as opposed to an
    /// ordinary language error like a `TypeError`). Trap-class errors mean
    /// the script was forcibly stopped and its feature log is partial.
    pub fn is_budget_trap(&self) -> bool {
        matches!(
            self,
            RuntimeError::OutOfFuel
                | RuntimeError::StackOverflow
                | RuntimeError::HeapExhausted
                | RuntimeError::StringOverflow
        )
    }
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::TypeError(m) => write!(f, "TypeError: {m}"),
            RuntimeError::ReferenceError(m) => write!(f, "ReferenceError: {m}"),
            RuntimeError::OutOfFuel => write!(f, "script exceeded its step budget"),
            RuntimeError::StackOverflow => write!(f, "call stack exceeded"),
            RuntimeError::HeapExhausted => write!(f, "script exceeded its heap budget"),
            RuntimeError::StringOverflow => write!(f, "script exceeded its string budget"),
        }
    }
}

impl std::error::Error for RuntimeError {}

/// A host function: `(interpreter, this, args) -> value`.
pub type NativeFn = Rc<dyn Fn(&mut Interpreter, Value, &[Value]) -> Result<Value, RuntimeError>>;

#[derive(Debug, Default)]
pub(crate) struct Env {
    pub(crate) vars: HashMap<Atom, Value>,
    pub(crate) parent: Option<EnvId>,
    pub(crate) this: Value,
}

/// Statement completion.
enum Flow {
    Normal,
    Return(Value),
    Break,
    Continue,
}

/// The interpreter: heap, scopes, natives, and fuel.
pub struct Interpreter {
    /// The object heap (public: the embedder builds prototypes directly).
    pub heap: Heap,
    pub(crate) envs: Vec<Env>,
    natives: Vec<NativeFn>,
    pub(crate) global: EnvId,
    pub(crate) fuel: u64,
    depth: u32,
    max_depth: u32,
    /// Absolute `heap.len()` ceiling for the current budget phase.
    pub(crate) heap_ceiling: usize,
    /// String bytes produced by concatenation this budget phase.
    string_bytes: u64,
    /// String-byte allowance for the current budget phase.
    string_budget: u64,
    /// Set by `Stmt::Expr` so `run` can return the last expression value.
    pub(crate) last_expr_value: Option<Value>,
}

impl fmt::Debug for Interpreter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Interpreter")
            .field("heap_objects", &self.heap.len())
            .field("envs", &self.envs.len())
            .field("natives", &self.natives.len())
            .field("fuel", &self.fuel)
            .finish()
    }
}

const DEFAULT_FUEL: u64 = 5_000_000;

impl Interpreter {
    /// A fresh interpreter with an empty global scope and default fuel.
    pub fn new() -> Self {
        let mut interp = Interpreter {
            heap: Heap::new(),
            envs: Vec::new(),
            natives: Vec::new(),
            global: EnvId::new(0),
            fuel: DEFAULT_FUEL,
            depth: 0,
            max_depth: 64,
            heap_ceiling: usize::MAX,
            string_bytes: 0,
            string_budget: u64::MAX,
            last_expr_value: None,
        };
        interp.global = interp.push_env(None, Value::Undefined);
        interp
    }

    pub(crate) fn push_env(&mut self, parent: Option<EnvId>, this: Value) -> EnvId {
        let id = EnvId::from_usize(self.envs.len());
        self.envs.push(Env {
            vars: HashMap::new(),
            parent,
            this,
        });
        id
    }

    /// Set the script step budget (other resource axes are untouched).
    pub fn set_fuel(&mut self, fuel: u64) {
        self.fuel = fuel;
    }

    /// Remaining fuel.
    pub fn fuel(&self) -> u64 {
        self.fuel
    }

    /// Install a full [`ResourceBudget`] for the next execution phase.
    ///
    /// Heap-cell and string-byte accounting restart from this call: cells
    /// already on the heap (the embedder's API surface, earlier scripts) are
    /// not charged against the new phase.
    pub fn set_budget(&mut self, budget: &ResourceBudget) {
        self.fuel = budget.max_steps;
        self.max_depth = budget.max_call_depth;
        self.heap_ceiling = self.heap.len().saturating_add(budget.max_heap_cells);
        self.string_bytes = 0;
        self.string_budget = budget.max_string_bytes;
    }

    /// String bytes produced by concatenation since the budget was set.
    pub fn string_bytes_allocated(&self) -> u64 {
        self.string_bytes
    }

    /// Register a native function; returns a callable [`Value`].
    pub fn register_native(&mut self, f: NativeFn) -> Value {
        Value::Obj(self.register_native_obj(f))
    }

    /// Register a native function; returns the callable's heap id directly
    /// (for embedders that need to manipulate the object, e.g. to attach a
    /// `prototype` property).
    pub fn register_native_obj(&mut self, f: NativeFn) -> crate::object::ObjId {
        // Native counts are embedder-bounded (a few thousand); saturating
        // keeps this total without a panic path.
        let idx = u32::try_from(self.natives.len()).unwrap_or(u32::MAX);
        self.natives.push(f);
        self.heap.alloc_callable(Callable::Native(idx), None)
    }

    /// Define (or overwrite) a global variable.
    pub fn set_global(&mut self, name: &str, value: Value) {
        self.envs[self.global.index()]
            .vars
            .insert(Atom::intern(name), value);
    }

    /// Read a global variable. Never grows the atom table: a name nobody
    /// interned cannot be bound anywhere.
    pub fn get_global(&self, name: &str) -> Value {
        Atom::get(name)
            .and_then(|a| self.envs[self.global.index()].vars.get(&a).cloned())
            .unwrap_or(Value::Undefined)
    }

    /// Parse and run source text in the global scope.
    pub fn run_source(&mut self, src: &str) -> Result<Value, ScriptError> {
        let program = parse(src).map_err(ScriptError::Parse)?;
        self.run(&program).map_err(ScriptError::Runtime)
    }

    /// Run a parsed program in the global scope. Returns the value of the
    /// last expression statement (useful for tests and the REPL example).
    pub fn run(&mut self, program: &Program) -> Result<Value, RuntimeError> {
        let mut last = Value::Undefined;
        self.hoist_functions(&program.body, self.global);
        for stmt in &program.body {
            match self.exec(stmt, self.global)? {
                Flow::Normal => {}
                Flow::Return(v) => return Ok(v),
                Flow::Break | Flow::Continue => {
                    return Err(RuntimeError::TypeError(
                        "break/continue outside a loop".into(),
                    ))
                }
            }
            if let Stmt::Expr(_) = stmt {
                last = self.last_expr_value.take().unwrap_or(Value::Undefined);
            }
        }
        Ok(last)
    }

    /// Call a callable value from host code (event dispatch, timers,
    /// watch handlers).
    pub fn call_value(
        &mut self,
        callee: &Value,
        this: Value,
        args: &[Value],
    ) -> Result<Value, RuntimeError> {
        let Some(obj) = callee.as_obj() else {
            return Err(RuntimeError::TypeError(format!(
                "{} is not a function",
                callee.to_display()
            )));
        };
        let callable = self
            .heap
            .get(obj)
            .callable
            .clone()
            .ok_or_else(|| RuntimeError::TypeError("called a non-callable object".into()))?;
        if self.depth >= self.max_depth {
            return Err(RuntimeError::StackOverflow);
        }
        self.depth += 1;
        let result = match callable {
            Callable::Native(idx) => {
                let f = self.natives[idx as usize].clone();
                f(self, this, args)
            }
            Callable::Compiled { func, env } => {
                crate::vm::call_compiled(self, &func, env, this, args, callee)
            }
            Callable::Script { def, env } => {
                let call_env = self.push_env(Some(env), this);
                self.hoist_functions(&def.body, call_env);
                for (i, p) in def.params.iter().enumerate() {
                    let v = args.get(i).cloned().unwrap_or(Value::Undefined);
                    self.envs[call_env.index()].vars.insert(*p, v);
                }
                // Named function expressions can refer to themselves.
                if let Some(name) = def.name {
                    self.envs[call_env.index()]
                        .vars
                        .insert(name, callee.clone());
                }
                let mut out = Value::Undefined;
                let mut err = None;
                for stmt in &def.body {
                    match self.exec(stmt, call_env) {
                        Ok(Flow::Normal) => {}
                        Ok(Flow::Return(v)) => {
                            out = v;
                            break;
                        }
                        Ok(Flow::Break | Flow::Continue) => {
                            err = Some(RuntimeError::TypeError(
                                "break/continue outside a loop".into(),
                            ));
                            break;
                        }
                        Err(e) => {
                            err = Some(e);
                            break;
                        }
                    }
                }
                match err {
                    Some(e) => Err(e),
                    None => Ok(out),
                }
            }
        };
        self.depth -= 1;
        result
    }

    /// Function-declaration hoisting: declarations at the top level of a
    /// program or function body are defined before any statement runs, so
    /// forward calls work as in JavaScript.
    fn hoist_functions(&mut self, stmts: &[Stmt], env: EnvId) {
        for stmt in stmts {
            if let Stmt::FunctionDecl(def) = stmt {
                // The parser only emits named declarations; an anonymous one
                // (impossible today) would simply not be hoisted.
                let Some(name) = def.name else {
                    continue;
                };
                let f = self.make_closure(def.clone(), env);
                self.envs[env.index()].vars.insert(name, f);
            }
        }
    }

    fn burn(&mut self) -> Result<(), RuntimeError> {
        if self.fuel == 0 {
            return Err(RuntimeError::OutOfFuel);
        }
        self.fuel -= 1;
        if self.heap.len() > self.heap_ceiling {
            return Err(RuntimeError::HeapExhausted);
        }
        Ok(())
    }

    // ---- statements ----

    fn exec(&mut self, stmt: &Stmt, env: EnvId) -> Result<Flow, RuntimeError> {
        self.burn()?;
        match stmt {
            Stmt::Expr(e) => {
                let v = self.eval(e, env)?;
                self.last_expr_value = Some(v);
                Ok(Flow::Normal)
            }
            Stmt::Var(name, init) => {
                let v = match init {
                    Some(e) => self.eval(e, env)?,
                    None => Value::Undefined,
                };
                self.envs[env.index()].vars.insert(*name, v);
                Ok(Flow::Normal)
            }
            Stmt::FunctionDecl(def) => {
                if let Some(name) = def.name {
                    let f = self.make_closure(def.clone(), env);
                    self.envs[env.index()].vars.insert(name, f);
                }
                Ok(Flow::Normal)
            }
            Stmt::Return(e) => {
                let v = match e {
                    Some(e) => self.eval(e, env)?,
                    None => Value::Undefined,
                };
                Ok(Flow::Return(v))
            }
            Stmt::If {
                cond,
                then,
                otherwise,
            } => {
                let branch = if self.eval(cond, env)?.truthy() {
                    then
                } else {
                    otherwise
                };
                self.exec_block(branch, env)
            }
            Stmt::While { cond, body } => {
                while self.eval(cond, env)?.truthy() {
                    match self.exec_block(body, env)? {
                        Flow::Normal | Flow::Continue => {}
                        Flow::Break => break,
                        ret @ Flow::Return(_) => return Ok(ret),
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::For {
                init,
                cond,
                update,
                body,
            } => {
                let loop_env = self.push_env(Some(env), self.this_of(env));
                if let Some(init) = init {
                    self.exec(init, loop_env)?;
                }
                loop {
                    let go = match cond {
                        Some(c) => self.eval(c, loop_env)?.truthy(),
                        None => true,
                    };
                    if !go {
                        break;
                    }
                    match self.exec_block(body, loop_env)? {
                        Flow::Normal | Flow::Continue => {}
                        Flow::Break => break,
                        ret @ Flow::Return(_) => return Ok(ret),
                    }
                    if let Some(u) = update {
                        self.eval(u, loop_env)?;
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Block(stmts) => self.exec_block(stmts, env),
            Stmt::Break => Ok(Flow::Break),
            Stmt::Continue => Ok(Flow::Continue),
        }
    }

    fn exec_block(&mut self, stmts: &[Stmt], env: EnvId) -> Result<Flow, RuntimeError> {
        for s in stmts {
            match self.exec(s, env)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    pub(crate) fn this_of(&self, env: EnvId) -> Value {
        let mut cur = Some(env);
        while let Some(e) = cur {
            match &self.envs[e.index()].this {
                Value::Undefined => cur = self.envs[e.index()].parent,
                v => return v.clone(),
            }
        }
        Value::Undefined
    }

    fn make_closure(&mut self, def: Arc<FunctionDef>, env: EnvId) -> Value {
        Value::Obj(
            self.heap
                .alloc_callable(Callable::Script { def, env }, None),
        )
    }

    // ---- expressions ----

    fn eval(&mut self, expr: &Expr, env: EnvId) -> Result<Value, RuntimeError> {
        self.burn()?;
        match expr {
            Expr::Num(n) => Ok(Value::Num(*n)),
            Expr::Str(s) => Ok(Value::str(s)),
            Expr::Bool(b) => Ok(Value::Bool(*b)),
            Expr::Null => Ok(Value::Null),
            Expr::Undefined => Ok(Value::Undefined),
            Expr::This => Ok(self.this_of(env)),
            Expr::Ident(name) => self.lookup(*name, env),
            Expr::Member(obj, prop) => {
                let base = self.eval(obj, env)?;
                self.get_member_atom(&base, *prop)
            }
            Expr::Index(obj, key) => {
                let base = self.eval(obj, env)?;
                let k = self.eval(key, env)?.to_display();
                self.get_member(&base, &k)
            }
            Expr::Call { callee, args } => {
                // Method calls bind `this` to the receiver.
                let (f, this) = match &**callee {
                    Expr::Member(obj, prop) => {
                        let base = self.eval(obj, env)?;
                        let f = self.get_member_atom(&base, *prop)?;
                        (f, base)
                    }
                    Expr::Index(obj, key) => {
                        let base = self.eval(obj, env)?;
                        let k = self.eval(key, env)?.to_display();
                        let f = self.get_member(&base, &k)?;
                        (f, base)
                    }
                    other => (self.eval(other, env)?, Value::Undefined),
                };
                let argv = self.eval_args(args, env)?;
                self.call_value(&f, this, &argv)
            }
            Expr::New { callee, args } => {
                let ctor = self.eval(callee, env)?;
                let Some(ctor_obj) = ctor.as_obj() else {
                    return Err(RuntimeError::TypeError(
                        "constructor is not an object".into(),
                    ));
                };
                let proto = self.heap.get_prop(ctor_obj, "prototype").as_obj();
                let instance = self.heap.alloc(proto);
                let argv = self.eval_args(args, env)?;
                let result = self.call_value(&ctor, Value::Obj(instance), &argv)?;
                Ok(match result {
                    Value::Obj(o) => Value::Obj(o),
                    _ => Value::Obj(instance),
                })
            }
            Expr::Assign { place, op, value } => {
                let rhs = self.eval(value, env)?;
                let newval = match op {
                    None => rhs,
                    Some(binop) => {
                        let old = self.read_place(place, env)?;
                        self.binary(*binop, &old, &rhs)?
                    }
                };
                self.write_place(place, newval.clone(), env)?;
                Ok(newval)
            }
            Expr::IncDec {
                place,
                is_inc,
                postfix,
            } => {
                let old = self.read_place(place, env)?.to_number();
                let delta = if *is_inc { 1.0 } else { -1.0 };
                let new = Value::Num(old + delta);
                self.write_place(place, new.clone(), env)?;
                Ok(if *postfix { Value::Num(old) } else { new })
            }
            Expr::Binary { op, lhs, rhs } => {
                let l = self.eval(lhs, env)?;
                let r = self.eval(rhs, env)?;
                self.binary(*op, &l, &r)
            }
            Expr::Logical { op, lhs, rhs } => {
                let l = self.eval(lhs, env)?;
                match op {
                    LogicalOp::And => {
                        if l.truthy() {
                            self.eval(rhs, env)
                        } else {
                            Ok(l)
                        }
                    }
                    LogicalOp::Or => {
                        if l.truthy() {
                            Ok(l)
                        } else {
                            self.eval(rhs, env)
                        }
                    }
                }
            }
            Expr::Unary { op, expr } => match op {
                UnaryOp::Neg => Ok(Value::Num(-self.eval(expr, env)?.to_number())),
                UnaryOp::Not => Ok(Value::Bool(!self.eval(expr, env)?.truthy())),
                UnaryOp::Typeof => {
                    // typeof on an unresolved identifier yields "undefined"
                    // rather than throwing, per JS.
                    let v = match &**expr {
                        Expr::Ident(name) => self.lookup(*name, env).unwrap_or(Value::Undefined),
                        other => self.eval(other, env)?,
                    };
                    let heap = &self.heap;
                    Ok(Value::str(v.type_of(|id| heap.is_callable(id))))
                }
            },
            Expr::Cond {
                cond,
                then,
                otherwise,
            } => {
                if self.eval(cond, env)?.truthy() {
                    self.eval(then, env)
                } else {
                    self.eval(otherwise, env)
                }
            }
            Expr::Function(def) => Ok(self.make_closure(def.clone(), env)),
            Expr::ObjectLit(props) => {
                let obj = self.heap.alloc(None);
                for (k, v) in props {
                    let val = self.eval(v, env)?;
                    self.heap.set_prop_raw_atom(obj, *k, val);
                }
                Ok(Value::Obj(obj))
            }
            Expr::ArrayLit(items) => {
                let arr = self.heap.alloc(None);
                for (i, item) in items.iter().enumerate() {
                    let v = self.eval(item, env)?;
                    self.heap.set_prop_raw(arr, &i.to_string(), v);
                }
                self.heap
                    .set_prop_raw(arr, "length", Value::Num(items.len() as f64));
                Ok(Value::Obj(arr))
            }
        }
    }

    fn eval_args(&mut self, args: &[Expr], env: EnvId) -> Result<Vec<Value>, RuntimeError> {
        args.iter().map(|a| self.eval(a, env)).collect()
    }

    pub(crate) fn lookup(&self, name: Atom, env: EnvId) -> Result<Value, RuntimeError> {
        let mut cur = Some(env);
        while let Some(e) = cur {
            if let Some(v) = self.envs[e.index()].vars.get(&name) {
                return Ok(v.clone());
            }
            cur = self.envs[e.index()].parent;
        }
        Err(RuntimeError::ReferenceError(format!(
            "{name} is not defined"
        )))
    }

    /// Read a member by atom (the hot path: `obj.prop` in source).
    pub(crate) fn get_member_atom(
        &mut self,
        base: &Value,
        prop: Atom,
    ) -> Result<Value, RuntimeError> {
        match base {
            Value::Obj(id) => Ok(self.heap.get_prop_atom(*id, prop)),
            _ => self.member_of_primitive(base, prop.as_str()),
        }
    }

    /// Read a member by runtime-computed string key (`obj[expr]`).
    pub(crate) fn get_member(&mut self, base: &Value, prop: &str) -> Result<Value, RuntimeError> {
        match base {
            Value::Obj(id) => Ok(self.heap.get_prop(*id, prop)),
            _ => self.member_of_primitive(base, prop),
        }
    }

    /// Member semantics shared by both key forms for non-object bases:
    /// strings expose `length`; null/undefined throw.
    fn member_of_primitive(&self, base: &Value, prop: &str) -> Result<Value, RuntimeError> {
        match base {
            Value::Str(s) if prop == "length" => Ok(Value::Num(s.len() as f64)),
            Value::Str(_) => Ok(Value::Undefined),
            Value::Null | Value::Undefined => Err(RuntimeError::TypeError(format!(
                "cannot read property {prop:?} of {}",
                base.to_display()
            ))),
            _ => Ok(Value::Undefined),
        }
    }

    fn read_place(&mut self, place: &Place, env: EnvId) -> Result<Value, RuntimeError> {
        match place {
            Place::Var(name) => self.lookup(*name, env),
            Place::Member(obj, prop) => {
                let base = self.eval(obj, env)?;
                self.get_member_atom(&base, *prop)
            }
            Place::Index(obj, key) => {
                let base = self.eval(obj, env)?;
                let k = self.eval(key, env)?.to_display();
                self.get_member(&base, &k)
            }
        }
    }

    /// Assign `name` to the nearest scope in `env`'s chain that declares it,
    /// else create a global (sloppy-mode JS). Shared by the tree-walk's
    /// variable places and the VM's `StoreName`/`StorePath` fall-through.
    pub(crate) fn assign_name(&mut self, name: Atom, env: EnvId, value: Value) {
        let mut cur = Some(env);
        while let Some(e) = cur {
            if let std::collections::hash_map::Entry::Occupied(mut slot) =
                self.envs[e.index()].vars.entry(name)
            {
                slot.insert(value);
                return;
            }
            cur = self.envs[e.index()].parent;
        }
        self.envs[self.global.index()].vars.insert(name, value);
    }

    fn write_place(&mut self, place: &Place, value: Value, env: EnvId) -> Result<(), RuntimeError> {
        match place {
            Place::Var(name) => {
                self.assign_name(*name, env, value);
                Ok(())
            }
            Place::Member(obj, prop) => {
                let base = self.eval(obj, env)?;
                self.set_member_atom(&base, *prop, value)
            }
            Place::Index(obj, key) => {
                let base = self.eval(obj, env)?;
                let k = self.eval(key, env)?.to_display();
                self.set_member(&base, &k, value)
            }
        }
    }

    pub(crate) fn binary(
        &mut self,
        op: BinOp,
        l: &Value,
        r: &Value,
    ) -> Result<Value, RuntimeError> {
        Ok(match op {
            BinOp::Add => match (l, r) {
                (Value::Str(_), _) | (_, Value::Str(_)) => {
                    // Concatenation is the only unbounded allocator in the
                    // language subset — charge it against the string budget
                    // so `s = s + s` bombs trip in O(log budget) steps.
                    let s = format!("{}{}", l.to_display(), r.to_display());
                    self.string_bytes = self.string_bytes.saturating_add(s.len() as u64);
                    if self.string_bytes > self.string_budget {
                        return Err(RuntimeError::StringOverflow);
                    }
                    Value::str(s)
                }
                _ => Value::Num(l.to_number() + r.to_number()),
            },
            BinOp::Sub => Value::Num(l.to_number() - r.to_number()),
            BinOp::Mul => Value::Num(l.to_number() * r.to_number()),
            BinOp::Div => Value::Num(l.to_number() / r.to_number()),
            BinOp::Rem => Value::Num(l.to_number() % r.to_number()),
            BinOp::Eq => Value::Bool(l.loose_eq(r)),
            BinOp::Ne => Value::Bool(!l.loose_eq(r)),
            BinOp::StrictEq => Value::Bool(l.strict_eq(r)),
            BinOp::StrictNe => Value::Bool(!l.strict_eq(r)),
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                let res = match (l, r) {
                    (Value::Str(a), Value::Str(b)) => match op {
                        BinOp::Lt => a < b,
                        BinOp::Le => a <= b,
                        BinOp::Gt => a > b,
                        _ => a >= b,
                    },
                    _ => {
                        let (a, b) = (l.to_number(), r.to_number());
                        match op {
                            BinOp::Lt => a < b,
                            BinOp::Le => a <= b,
                            BinOp::Gt => a > b,
                            _ => a >= b,
                        }
                    }
                };
                Value::Bool(res)
            }
        })
    }

    /// Write a member, firing any watch handler installed on the object.
    pub fn set_member(
        &mut self,
        base: &Value,
        prop: &str,
        value: Value,
    ) -> Result<(), RuntimeError> {
        self.set_member_atom(base, Atom::intern(prop), value)
    }

    /// Write a member by atom, firing any watch handler on the object.
    pub fn set_member_atom(
        &mut self,
        base: &Value,
        prop: Atom,
        value: Value,
    ) -> Result<(), RuntimeError> {
        let Some(id) = base.as_obj() else {
            return Err(RuntimeError::TypeError(format!(
                "cannot set property {:?} on {}",
                prop.as_str(),
                base.to_display()
            )));
        };
        let (old, handler) = self.heap.set_prop_atom(id, prop, value.clone());
        if let Some(h) = handler {
            let hv = Value::Obj(h);
            self.call_value(
                &hv,
                Value::Obj(id),
                &[Value::str(prop.as_str()), old, value],
            )?;
        }
        Ok(())
    }
}

/// Error from [`Interpreter::run_source`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScriptError {
    /// Source failed to parse.
    Parse(ParseError),
    /// Script aborted at runtime.
    Runtime(RuntimeError),
}

impl fmt::Display for ScriptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScriptError::Parse(e) => write!(f, "{e}"),
            ScriptError::Runtime(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ScriptError {}

impl Default for Interpreter {
    fn default() -> Self {
        Self::new()
    }
}
