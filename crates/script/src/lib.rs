//! # bfu-script
//!
//! A miniature JavaScript-like language: the substrate that makes the
//! paper's instrumentation technique *real* rather than simulated.
//!
//! The paper's extension works by (a) overwriting methods on DOM prototypes
//! with logging wrappers that close over the originals, and (b) watching
//! property writes on singleton objects via `Object.watch`. Reproducing that
//! requires an object model with genuine prototype chains, closures, and
//! interceptable property access — so this crate implements one, with a
//! lexer, recursive-descent parser, and step-budgeted tree-walking
//! interpreter. Synthetic sites' scripts are authored in this language by
//! `bfu-webgen`.
//!
//! - [`token`] — lexer.
//! - [`ast`] — syntax tree.
//! - [`parser`] — recursive-descent parser.
//! - [`value`] — runtime values.
//! - [`object`] — heap, objects, prototype chains, watchpoints.
//! - [`interp`] — the tree-walk interpreter and host-function registry.
//! - [`compile`] — AST → bytecode chunk lowering.
//! - [`vm`] — the bytecode dispatch loop (the production engine).
//! - [`budget`] — multi-axis execution resource budgets.
//! - [`cache`] — survey-wide content-addressed compilation cache.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod ast;
pub mod budget;
pub mod cache;
pub mod compile;
pub mod interp;
pub mod object;
pub mod parser;
pub mod token;
pub mod value;
pub mod vm;

pub use budget::ResourceBudget;
pub use cache::{CacheOutcome, CacheStats, ChunkError, ChunkOutcome, ScriptCache};
pub use compile::{compile, Chunk, CompileError, FuncChunk, LazyFunc};
pub use interp::{Interpreter, NativeFn, RuntimeError, ScriptError};
pub use object::{Heap, ObjId, PropKey};
pub use value::Value;
pub use vm::{run_chunk, Engine};
