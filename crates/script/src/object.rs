//! Heap: objects, prototype chains, and watchpoints.
//!
//! Two capabilities carry the whole instrumentation story from §4.2 of the
//! paper, and both live here:
//!
//! 1. **Prototype chains.** Method lookup on an object walks `proto` links,
//!    so overwriting `Document.prototype.createElement` with a wrapper is
//!    observed by every document object — exactly how the paper's extension
//!    shims methods.
//! 2. **Watchpoints.** `Object.watch`-style hooks fire on property writes to
//!    a watched object, which is how the paper counts property-write features
//!    on singletons (`window`, `navigator`, `document`).

use crate::ast::FunctionDef;
use crate::value::Value;
use bfu_util::{define_id, Atom};
use std::collections::HashMap;
use std::sync::Arc;

define_id!(
    /// Heap object index.
    ObjId,
    "obj"
);

define_id!(
    /// Environment (scope) index, used by closures.
    EnvId,
    "env"
);

/// Property key: an interned atom (always a string in the language, as in
/// pre-symbol JavaScript, but compared and hashed as a `u32`).
pub type PropKey = Atom;

/// How a function object is implemented.
#[derive(Clone)]
pub enum Callable {
    /// A host (native) function, identified by its registry index.
    Native(u32),
    /// A script closure: definition plus captured environment.
    Script {
        /// Shared function definition.
        def: Arc<FunctionDef>,
        /// Captured scope.
        env: EnvId,
    },
    /// A compiled closure: a lazily-lowered function plus captured
    /// environment. Allocation is an `Arc` clone; the body is lowered to
    /// bytecode on first call and memoized in the shared chunk.
    Compiled {
        /// Shared function (definition + memoized lowered body).
        func: Arc<crate::compile::LazyFunc>,
        /// Captured scope.
        env: EnvId,
    },
}

impl std::fmt::Debug for Callable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Callable::Native(i) => write!(f, "Native({i})"),
            Callable::Script { def, .. } => {
                write!(
                    f,
                    "Script({})",
                    def.name.map(Atom::as_str).unwrap_or("<anon>")
                )
            }
            Callable::Compiled { func, .. } => {
                write!(
                    f,
                    "Compiled({})",
                    func.name().map(Atom::as_str).unwrap_or("<anon>")
                )
            }
        }
    }
}

/// One heap object.
#[derive(Debug, Clone, Default)]
pub struct Object {
    /// Own properties.
    pub props: HashMap<PropKey, Value>,
    /// Prototype link.
    pub proto: Option<ObjId>,
    /// Present if the object is callable.
    pub callable: Option<Callable>,
    /// Watch handler (a callable object id) invoked on every property write:
    /// `handler(propName, oldValue, newValue)`, mirroring `Object.watch`.
    pub watch_all: Option<ObjId>,
    /// Opaque host tag: lets the embedder associate an object with a host
    /// entity (e.g. a DOM node id) without a side table.
    pub host_tag: Option<u64>,
}

/// The object heap.
#[derive(Debug, Default)]
pub struct Heap {
    objects: Vec<Object>,
}

impl Heap {
    /// An empty heap.
    pub fn new() -> Self {
        Heap::default()
    }

    /// Allocate a plain object with the given prototype.
    pub fn alloc(&mut self, proto: Option<ObjId>) -> ObjId {
        let id = ObjId::from_usize(self.objects.len());
        self.objects.push(Object {
            proto,
            ..Object::default()
        });
        id
    }

    /// Allocate a callable object.
    pub fn alloc_callable(&mut self, callable: Callable, proto: Option<ObjId>) -> ObjId {
        let id = self.alloc(proto);
        self.objects[id.index()].callable = Some(callable);
        id
    }

    /// Borrow an object.
    pub fn get(&self, id: ObjId) -> &Object {
        &self.objects[id.index()]
    }

    /// Mutably borrow an object.
    pub fn get_mut(&mut self, id: ObjId) -> &mut Object {
        &mut self.objects[id.index()]
    }

    /// Number of live objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the heap is empty.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Whether an object is callable.
    pub fn is_callable(&self, id: ObjId) -> bool {
        self.objects[id.index()].callable.is_some()
    }

    /// Read a property by atom, walking the prototype chain. `Undefined` if
    /// absent. This is the interpreter's hot path: every hop is a `u32`
    /// hash-map probe, no string comparison.
    pub fn get_prop_atom(&self, id: ObjId, key: Atom) -> Value {
        let mut cur = Some(id);
        let mut hops = 0;
        while let Some(o) = cur {
            if let Some(v) = self.objects[o.index()].props.get(&key) {
                return v.clone();
            }
            cur = self.objects[o.index()].proto;
            hops += 1;
            if hops > 64 {
                break; // defensive: cyclic prototype chains
            }
        }
        Value::Undefined
    }

    /// Read a property by string, walking the prototype chain. `Undefined`
    /// if absent. A key nobody ever interned cannot exist on any object, so
    /// this never grows the atom table.
    pub fn get_prop(&self, id: ObjId, key: &str) -> Value {
        match Atom::get(key) {
            Some(atom) => self.get_prop_atom(id, atom),
            None => Value::Undefined,
        }
    }

    /// The object (self or ancestor) that *owns* `key`, if any.
    pub fn owner_of_prop_atom(&self, id: ObjId, key: Atom) -> Option<ObjId> {
        let mut cur = Some(id);
        let mut hops = 0;
        while let Some(o) = cur {
            if self.objects[o.index()].props.contains_key(&key) {
                return Some(o);
            }
            cur = self.objects[o.index()].proto;
            hops += 1;
            if hops > 64 {
                break;
            }
        }
        None
    }

    /// The object (self or ancestor) that *owns* `key`, if any.
    pub fn owner_of_prop(&self, id: ObjId, key: &str) -> Option<ObjId> {
        self.owner_of_prop_atom(id, Atom::get(key)?)
    }

    /// Write an own property by atom **without** firing watchpoints.
    /// Returns the old own value.
    pub fn set_prop_raw_atom(&mut self, id: ObjId, key: Atom, value: Value) -> Value {
        self.objects[id.index()]
            .props
            .insert(key, value)
            .unwrap_or(Value::Undefined)
    }

    /// Write an own property **without** firing watchpoints. Returns the old
    /// own value. Used by the embedder and by watch handlers themselves.
    pub fn set_prop_raw(&mut self, id: ObjId, key: &str, value: Value) -> Value {
        self.set_prop_raw_atom(id, Atom::intern(key), value)
    }

    /// Write an own property by atom, reporting whether a watchpoint must
    /// fire.
    ///
    /// Returns `(old_value, Some(handler))` when the object is watched; the
    /// interpreter is responsible for invoking the handler (it owns the call
    /// machinery). The write itself always happens.
    pub fn set_prop_atom(&mut self, id: ObjId, key: Atom, value: Value) -> (Value, Option<ObjId>) {
        let old = self.set_prop_raw_atom(id, key, value);
        let handler = self.objects[id.index()].watch_all;
        (old, handler)
    }

    /// Write an own property, reporting whether a watchpoint must fire (see
    /// [`Heap::set_prop_atom`]).
    pub fn set_prop(&mut self, id: ObjId, key: &str, value: Value) -> (Value, Option<ObjId>) {
        self.set_prop_atom(id, Atom::intern(key), value)
    }

    /// Install a watch handler on `id` (fires for every property write).
    pub fn watch(&mut self, id: ObjId, handler: ObjId) {
        self.objects[id.index()].watch_all = Some(handler);
    }

    /// Remove the watch handler.
    pub fn unwatch(&mut self, id: ObjId) {
        self.objects[id.index()].watch_all = None;
    }

    /// Own property names (sorted by *string*, for deterministic iteration —
    /// atom ids are scheduling-dependent and must never drive ordering).
    pub fn own_keys(&self, id: ObjId) -> Vec<&'static str> {
        let mut keys: Vec<&'static str> = self.objects[id.index()]
            .props
            .keys()
            .map(|a| a.as_str())
            .collect();
        keys.sort_unstable();
        keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prototype_chain_lookup() {
        let mut heap = Heap::new();
        let proto = heap.alloc(None);
        heap.set_prop_raw(proto, "shared", Value::Num(7.0));
        let child = heap.alloc(Some(proto));
        assert!(matches!(heap.get_prop(child, "shared"), Value::Num(n) if n == 7.0));
        assert_eq!(heap.owner_of_prop(child, "shared"), Some(proto));
        // Shadowing: write goes to the child, proto unchanged.
        heap.set_prop_raw(child, "shared", Value::Num(9.0));
        assert!(matches!(heap.get_prop(child, "shared"), Value::Num(n) if n == 9.0));
        assert!(matches!(heap.get_prop(proto, "shared"), Value::Num(n) if n == 7.0));
    }

    #[test]
    fn missing_prop_is_undefined() {
        let mut heap = Heap::new();
        let o = heap.alloc(None);
        assert!(matches!(heap.get_prop(o, "nope"), Value::Undefined));
        assert_eq!(heap.owner_of_prop(o, "nope"), None);
    }

    #[test]
    fn cyclic_prototypes_dont_hang() {
        let mut heap = Heap::new();
        let a = heap.alloc(None);
        let b = heap.alloc(Some(a));
        heap.get_mut(a).proto = Some(b);
        assert!(matches!(heap.get_prop(a, "x"), Value::Undefined));
    }

    #[test]
    fn watchpoints_reported_on_set() {
        let mut heap = Heap::new();
        let o = heap.alloc(None);
        let handler = heap.alloc_callable(Callable::Native(0), None);
        heap.watch(o, handler);
        let (old, h) = heap.set_prop(o, "x", Value::Num(1.0));
        assert!(matches!(old, Value::Undefined));
        assert_eq!(h, Some(handler));
        let (old, _) = heap.set_prop(o, "x", Value::Num(2.0));
        assert!(matches!(old, Value::Num(n) if n == 1.0));
        heap.unwatch(o);
        let (_, h) = heap.set_prop(o, "x", Value::Num(3.0));
        assert_eq!(h, None);
    }

    #[test]
    fn raw_set_bypasses_watch() {
        let mut heap = Heap::new();
        let o = heap.alloc(None);
        let handler = heap.alloc_callable(Callable::Native(0), None);
        heap.watch(o, handler);
        heap.set_prop_raw(o, "x", Value::Num(1.0));
        // No way to observe a fire here because set_prop_raw returns no
        // handler — that's the point.
        assert!(matches!(heap.get_prop(o, "x"), Value::Num(n) if n == 1.0));
    }

    #[test]
    fn own_keys_sorted() {
        let mut heap = Heap::new();
        let o = heap.alloc(None);
        heap.set_prop_raw(o, "b", Value::Num(1.0));
        heap.set_prop_raw(o, "a", Value::Num(2.0));
        assert_eq!(heap.own_keys(o), vec!["a", "b"]);
    }

    #[test]
    fn callable_flag() {
        let mut heap = Heap::new();
        let f = heap.alloc_callable(Callable::Native(3), None);
        let o = heap.alloc(None);
        assert!(heap.is_callable(f));
        assert!(!heap.is_callable(o));
    }
}
