//! Recursive-descent parser for the mini-JS language.
//!
//! Standard precedence-climbing expression parser; statements cover the
//! subset `bfu-webgen` emits and a bit more (so hand-written page scripts in
//! tests and examples are pleasant to write).

use crate::ast::*;
use crate::token::{lex, Keyword, SpannedTok, Tok};
use bfu_util::Atom;
use std::fmt;
use std::sync::Arc;

/// Parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Description.
    pub message: String,
    /// 1-based line (0 at EOF).
    pub line: u32,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse a program.
pub fn parse(src: &str) -> Result<Program, ParseError> {
    let toks = lex(src).map_err(|e| ParseError {
        message: e.message,
        line: e.line,
    })?;
    let mut p = Parser {
        toks,
        pos: 0,
        depth: 0,
    };
    let mut body = Vec::new();
    while p.peek().is_some() {
        body.push(p.statement()?);
    }
    Ok(Program { body })
}

/// Maximum grammar-recursion depth. Each level costs a dozen-odd native
/// stack frames (the full precedence chain), so this bounds parser stack use
/// far below any thread's stack while accepting any plausible real script.
const MAX_PARSE_DEPTH: u32 = 128;

struct Parser {
    toks: Vec<SpannedTok>,
    pos: usize,
    /// Current grammar-recursion depth (statements, expressions, unary
    /// chains). Deeply nested hostile source (`((((…`, `[[[[…`, `!!!!…`)
    /// must fail with a [`ParseError`], not overflow the native stack.
    depth: u32,
}

impl Parser {
    fn enter(&mut self) -> Result<(), ParseError> {
        if self.depth >= MAX_PARSE_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        self.depth += 1;
        Ok(())
    }
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|t| &t.tok)
    }

    fn line(&self) -> u32 {
        self.toks.get(self.pos).map_or(0, |t| t.line)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|t| t.tok.clone());
        self.pos += 1;
        t
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            message: msg.into(),
            line: self.line(),
        }
    }

    fn eat_op(&mut self, op: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Op(o)) if *o == op) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_op(&mut self, op: &str) -> Result<(), ParseError> {
        if self.eat_op(op) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{op}`, found {:?}", self.peek())))
        }
    }

    fn eat_kw(&mut self, kw: Keyword) -> bool {
        if matches!(self.peek(), Some(Tok::Kw(k)) if *k == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> Result<Atom, ParseError> {
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    // ---- statements ----

    fn statement(&mut self) -> Result<Stmt, ParseError> {
        self.enter()?;
        let stmt = self.statement_inner();
        self.depth -= 1;
        stmt
    }

    fn statement_inner(&mut self) -> Result<Stmt, ParseError> {
        match self.peek() {
            Some(Tok::Kw(Keyword::Var)) => {
                self.bump();
                let name = self.expect_ident()?;
                let init = if self.eat_op("=") {
                    Some(self.expression()?)
                } else {
                    None
                };
                self.expect_op(";")?;
                Ok(Stmt::Var(name, init))
            }
            Some(Tok::Kw(Keyword::Function)) => {
                self.bump();
                let name = self.expect_ident()?;
                let def = self.function_rest(Some(name))?;
                Ok(Stmt::FunctionDecl(Arc::new(def)))
            }
            Some(Tok::Kw(Keyword::Return)) => {
                self.bump();
                let value = if matches!(self.peek(), Some(Tok::Op(";"))) {
                    None
                } else {
                    Some(self.expression()?)
                };
                self.expect_op(";")?;
                Ok(Stmt::Return(value))
            }
            Some(Tok::Kw(Keyword::If)) => {
                self.bump();
                self.expect_op("(")?;
                let cond = self.expression()?;
                self.expect_op(")")?;
                let then = self.block_or_single()?;
                let otherwise = if self.eat_kw(Keyword::Else) {
                    if matches!(self.peek(), Some(Tok::Kw(Keyword::If))) {
                        vec![self.statement()?]
                    } else {
                        self.block_or_single()?
                    }
                } else {
                    Vec::new()
                };
                Ok(Stmt::If {
                    cond,
                    then,
                    otherwise,
                })
            }
            Some(Tok::Kw(Keyword::While)) => {
                self.bump();
                self.expect_op("(")?;
                let cond = self.expression()?;
                self.expect_op(")")?;
                let body = self.block_or_single()?;
                Ok(Stmt::While { cond, body })
            }
            Some(Tok::Kw(Keyword::For)) => {
                self.bump();
                self.expect_op("(")?;
                let init = if self.eat_op(";") {
                    None
                } else if matches!(self.peek(), Some(Tok::Kw(Keyword::Var))) {
                    Some(Box::new(self.statement()?)) // consumes its ';'
                } else {
                    let e = self.expression()?;
                    self.expect_op(";")?;
                    Some(Box::new(Stmt::Expr(e)))
                };
                let cond = if self.eat_op(";") {
                    None
                } else {
                    let c = self.expression()?;
                    self.expect_op(";")?;
                    Some(c)
                };
                let update = if matches!(self.peek(), Some(Tok::Op(")"))) {
                    None
                } else {
                    Some(self.expression()?)
                };
                self.expect_op(")")?;
                let body = self.block_or_single()?;
                Ok(Stmt::For {
                    init,
                    cond,
                    update,
                    body,
                })
            }
            Some(Tok::Kw(Keyword::Break)) => {
                self.bump();
                self.expect_op(";")?;
                Ok(Stmt::Break)
            }
            Some(Tok::Kw(Keyword::Continue)) => {
                self.bump();
                self.expect_op(";")?;
                Ok(Stmt::Continue)
            }
            Some(Tok::Op("{")) => Ok(Stmt::Block(self.block()?)),
            _ => {
                let e = self.expression()?;
                self.expect_op(";")?;
                Ok(Stmt::Expr(e))
            }
        }
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect_op("{")?;
        let mut stmts = Vec::new();
        while !self.eat_op("}") {
            if self.peek().is_none() {
                return Err(self.err("unterminated block"));
            }
            stmts.push(self.statement()?);
        }
        Ok(stmts)
    }

    fn block_or_single(&mut self) -> Result<Vec<Stmt>, ParseError> {
        if matches!(self.peek(), Some(Tok::Op("{"))) {
            self.block()
        } else {
            Ok(vec![self.statement()?])
        }
    }

    fn function_rest(&mut self, name: Option<Atom>) -> Result<FunctionDef, ParseError> {
        self.expect_op("(")?;
        let mut params = Vec::new();
        if !self.eat_op(")") {
            loop {
                params.push(self.expect_ident()?);
                if self.eat_op(")") {
                    break;
                }
                self.expect_op(",")?;
            }
        }
        let body = self.block()?;
        Ok(FunctionDef { name, params, body })
    }

    // ---- expressions, precedence climbing ----

    fn expression(&mut self) -> Result<Expr, ParseError> {
        self.assignment()
    }

    fn assignment(&mut self) -> Result<Expr, ParseError> {
        self.enter()?;
        let expr = self.assignment_inner();
        self.depth -= 1;
        expr
    }

    fn assignment_inner(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.conditional()?;
        let op = match self.peek() {
            Some(Tok::Op("=")) => None,
            Some(Tok::Op("+=")) => Some(BinOp::Add),
            Some(Tok::Op("-=")) => Some(BinOp::Sub),
            Some(Tok::Op("*=")) => Some(BinOp::Mul),
            Some(Tok::Op("/=")) => Some(BinOp::Div),
            _ => return Ok(lhs),
        };
        self.bump();
        let place = match lhs {
            Expr::Ident(name) => Place::Var(name),
            Expr::Member(obj, prop) => Place::Member(obj, prop),
            Expr::Index(obj, key) => Place::Index(obj, key),
            other => return Err(self.err(format!("invalid assignment target {other:?}"))),
        };
        let value = Box::new(self.assignment()?);
        Ok(Expr::Assign { place, op, value })
    }

    fn conditional(&mut self) -> Result<Expr, ParseError> {
        let cond = self.logical_or()?;
        if self.eat_op("?") {
            let then = self.assignment()?;
            self.expect_op(":")?;
            let otherwise = self.assignment()?;
            Ok(Expr::Cond {
                cond: Box::new(cond),
                then: Box::new(then),
                otherwise: Box::new(otherwise),
            })
        } else {
            Ok(cond)
        }
    }

    fn logical_or(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.logical_and()?;
        while self.eat_op("||") {
            let rhs = self.logical_and()?;
            lhs = Expr::Logical {
                op: LogicalOp::Or,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn logical_and(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.equality()?;
        while self.eat_op("&&") {
            let rhs = self.equality()?;
            lhs = Expr::Logical {
                op: LogicalOp::And,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn equality(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.relational()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Op("==")) => BinOp::Eq,
                Some(Tok::Op("!=")) => BinOp::Ne,
                Some(Tok::Op("===")) => BinOp::StrictEq,
                Some(Tok::Op("!==")) => BinOp::StrictNe,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.relational()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    fn relational(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.additive()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Op("<")) => BinOp::Lt,
                Some(Tok::Op("<=")) => BinOp::Le,
                Some(Tok::Op(">")) => BinOp::Gt,
                Some(Tok::Op(">=")) => BinOp::Ge,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.additive()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    fn additive(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Op("+")) => BinOp::Add,
                Some(Tok::Op("-")) => BinOp::Sub,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.multiplicative()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    fn multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Op("*")) => BinOp::Mul,
                Some(Tok::Op("/")) => BinOp::Div,
                Some(Tok::Op("%")) => BinOp::Rem,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.unary()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        self.enter()?;
        let expr = self.unary_inner();
        self.depth -= 1;
        expr
    }

    fn unary_inner(&mut self) -> Result<Expr, ParseError> {
        if self.eat_op("-") {
            return Ok(Expr::Unary {
                op: UnaryOp::Neg,
                expr: Box::new(self.unary()?),
            });
        }
        if self.eat_op("!") {
            return Ok(Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(self.unary()?),
            });
        }
        if self.eat_kw(Keyword::Typeof) {
            return Ok(Expr::Unary {
                op: UnaryOp::Typeof,
                expr: Box::new(self.unary()?),
            });
        }
        if self.eat_op("++") || {
            if matches!(self.peek(), Some(Tok::Op("--"))) {
                self.bump();
                let place = self.place_from_postfix()?;
                return Ok(Expr::IncDec {
                    place,
                    is_inc: false,
                    postfix: false,
                });
            }
            false
        } {
            let place = self.place_from_postfix()?;
            return Ok(Expr::IncDec {
                place,
                is_inc: true,
                postfix: false,
            });
        }
        self.postfix()
    }

    fn place_from_postfix(&mut self) -> Result<Place, ParseError> {
        match self.postfix()? {
            Expr::Ident(name) => Ok(Place::Var(name)),
            Expr::Member(obj, prop) => Ok(Place::Member(obj, prop)),
            Expr::Index(obj, key) => Ok(Place::Index(obj, key)),
            other => Err(self.err(format!("invalid ++/-- target {other:?}"))),
        }
    }

    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let mut expr = self.call_member()?;
        loop {
            if matches!(self.peek(), Some(Tok::Op("++")))
                || matches!(self.peek(), Some(Tok::Op("--")))
            {
                let is_inc = matches!(self.peek(), Some(Tok::Op("++")));
                self.bump();
                let place = match expr {
                    Expr::Ident(name) => Place::Var(name),
                    Expr::Member(obj, prop) => Place::Member(obj, prop),
                    Expr::Index(obj, key) => Place::Index(obj, key),
                    other => return Err(self.err(format!("invalid ++/-- target {other:?}"))),
                };
                expr = Expr::IncDec {
                    place,
                    is_inc,
                    postfix: true,
                };
            } else {
                return Ok(expr);
            }
        }
    }

    fn call_member(&mut self) -> Result<Expr, ParseError> {
        let mut expr = if self.eat_kw(Keyword::New) {
            let callee = self.primary()?;
            // member chain before the argument list: new a.b.C(...)
            let callee = self.member_chain_only(callee)?;
            self.expect_op("(")?;
            let args = self.arguments()?;
            Expr::New {
                callee: Box::new(callee),
                args,
            }
        } else {
            self.primary()?
        };
        loop {
            if self.eat_op(".") {
                let prop = self.expect_ident()?;
                expr = Expr::Member(Box::new(expr), prop);
            } else if self.eat_op("[") {
                let key = self.expression()?;
                self.expect_op("]")?;
                expr = Expr::Index(Box::new(expr), Box::new(key));
            } else if self.eat_op("(") {
                let args = self.arguments()?;
                expr = Expr::Call {
                    callee: Box::new(expr),
                    args,
                };
            } else {
                return Ok(expr);
            }
        }
    }

    fn member_chain_only(&mut self, mut expr: Expr) -> Result<Expr, ParseError> {
        while self.eat_op(".") {
            let prop = self.expect_ident()?;
            expr = Expr::Member(Box::new(expr), prop);
        }
        Ok(expr)
    }

    fn arguments(&mut self) -> Result<Vec<Expr>, ParseError> {
        let mut args = Vec::new();
        if self.eat_op(")") {
            return Ok(args);
        }
        loop {
            args.push(self.expression()?);
            if self.eat_op(")") {
                return Ok(args);
            }
            self.expect_op(",")?;
        }
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.bump() {
            Some(Tok::Num(n)) => Ok(Expr::Num(n)),
            Some(Tok::Str(s)) => Ok(Expr::Str(s)),
            Some(Tok::Kw(Keyword::True)) => Ok(Expr::Bool(true)),
            Some(Tok::Kw(Keyword::False)) => Ok(Expr::Bool(false)),
            Some(Tok::Kw(Keyword::Null)) => Ok(Expr::Null),
            Some(Tok::Kw(Keyword::Undefined)) => Ok(Expr::Undefined),
            Some(Tok::Kw(Keyword::This)) => Ok(Expr::This),
            Some(Tok::Ident(name)) => Ok(Expr::Ident(name)),
            Some(Tok::Kw(Keyword::Function)) => {
                let name = if let Some(Tok::Ident(_)) = self.peek() {
                    Some(self.expect_ident()?)
                } else {
                    None
                };
                let def = self.function_rest(name)?;
                Ok(Expr::Function(Arc::new(def)))
            }
            Some(Tok::Op("(")) => {
                let e = self.expression()?;
                self.expect_op(")")?;
                Ok(e)
            }
            Some(Tok::Op("{")) => {
                let mut props = Vec::new();
                if !self.eat_op("}") {
                    loop {
                        let key = match self.bump() {
                            Some(Tok::Ident(a)) => a,
                            Some(Tok::Str(s)) => Atom::intern(&s),
                            Some(Tok::Num(n)) => Atom::intern(&format!("{n}")),
                            other => return Err(self.err(format!("bad object key {other:?}"))),
                        };
                        self.expect_op(":")?;
                        props.push((key, self.expression()?));
                        if self.eat_op("}") {
                            break;
                        }
                        self.expect_op(",")?;
                    }
                }
                Ok(Expr::ObjectLit(props))
            }
            Some(Tok::Op("[")) => {
                let mut items = Vec::new();
                if !self.eat_op("]") {
                    loop {
                        items.push(self.expression()?);
                        if self.eat_op("]") {
                            break;
                        }
                        self.expect_op(",")?;
                    }
                }
                Ok(Expr::ArrayLit(items))
            }
            other => Err(self.err(format!("unexpected token {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_var_and_arithmetic_precedence() {
        let prog = parse("var x = 1 + 2 * 3;").unwrap();
        let Stmt::Var(
            name,
            Some(Expr::Binary {
                op: BinOp::Add,
                rhs,
                ..
            }),
        ) = &prog.body[0]
        else {
            panic!("{:?}", prog.body[0]);
        };
        assert_eq!(name.as_str(), "x");
        assert!(matches!(**rhs, Expr::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn parses_member_call_chain() {
        let prog = parse("document.body.appendChild(el);").unwrap();
        let Stmt::Expr(Expr::Call { callee, args }) = &prog.body[0] else {
            panic!();
        };
        assert_eq!(args.len(), 1);
        assert!(matches!(**callee, Expr::Member(_, ref p) if p.as_str() == "appendChild"));
    }

    #[test]
    fn parses_new_with_member_constructor() {
        let prog = parse("var x = new XMLHttpRequest(); var y = new ns.Thing(1);").unwrap();
        assert!(matches!(
            &prog.body[0],
            Stmt::Var(_, Some(Expr::New { args, .. })) if args.is_empty()
        ));
        assert!(matches!(
            &prog.body[1],
            Stmt::Var(_, Some(Expr::New { args, .. })) if args.len() == 1
        ));
    }

    #[test]
    fn parses_function_decl_and_expr() {
        let prog =
            parse("function f(a, b) { return a + b; } var g = function() { return 1; };").unwrap();
        let Stmt::FunctionDecl(def) = &prog.body[0] else {
            panic!()
        };
        assert_eq!(def.name.map(Atom::as_str), Some("f"));
        assert_eq!(
            def.params.iter().map(|p| p.as_str()).collect::<Vec<_>>(),
            vec!["a", "b"]
        );
        assert!(matches!(
            &prog.body[1],
            Stmt::Var(_, Some(Expr::Function(_)))
        ));
    }

    #[test]
    fn parses_control_flow() {
        parse("if (x) { y(); } else if (z) { w(); } else { v(); }").unwrap();
        parse("while (i < 10) { i = i + 1; }").unwrap();
        parse("for (var i = 0; i < 3; i++) { f(i); }").unwrap();
        parse("for (;;) { break; }").unwrap();
        parse("while (1) { continue; }").unwrap();
    }

    #[test]
    fn parses_compound_assign_and_incdec() {
        let prog = parse("x += 2; y.count++; --z;").unwrap();
        assert!(matches!(
            &prog.body[0],
            Stmt::Expr(Expr::Assign {
                op: Some(BinOp::Add),
                ..
            })
        ));
        assert!(matches!(
            &prog.body[1],
            Stmt::Expr(Expr::IncDec {
                postfix: true,
                is_inc: true,
                ..
            })
        ));
        assert!(matches!(
            &prog.body[2],
            Stmt::Expr(Expr::IncDec {
                postfix: false,
                is_inc: false,
                ..
            })
        ));
    }

    #[test]
    fn parses_literals() {
        parse("var o = { a: 1, 'b c': 2, 3: x }; var arr = [1, 'two', f()];").unwrap();
        parse("var t = cond ? a : b;").unwrap();
        parse("var n = -x + !y; var ty = typeof z;").unwrap();
    }

    #[test]
    fn parses_logical_and_equality() {
        parse("if (a == null && b !== undefined || !c) { d(); }").unwrap();
    }

    #[test]
    fn index_and_assignment_targets() {
        let prog = parse("obj['key'] = 1; obj.prop = 2; arr[0] = 3;").unwrap();
        assert_eq!(prog.body.len(), 3);
        assert!(matches!(
            &prog.body[0],
            Stmt::Expr(Expr::Assign {
                place: Place::Index(..),
                ..
            })
        ));
    }

    #[test]
    fn rejects_bad_syntax() {
        assert!(parse("var ;").is_err());
        assert!(parse("1 +").is_err());
        assert!(parse("if x { }").is_err());
        assert!(parse("function () {}").is_err(), "decl needs a name");
        assert!(parse("1 = 2;").is_err(), "bad assignment target");
        assert!(parse("{ unterminated").is_err());
    }

    #[test]
    fn this_in_methods() {
        parse("var o = { m: function() { return this.x; } };").unwrap();
    }
}
