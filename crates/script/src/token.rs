//! Lexer for the mini-JS language.
//!
//! Identifiers are interned into the process-wide atom table as they are
//! lexed, so everything downstream (parser, interpreter, heap) works with
//! `u32` atoms instead of owned strings.

use bfu_util::Atom;
use std::fmt;

/// Keywords of the language.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Keyword {
    /// `var`
    Var,
    /// `function`
    Function,
    /// `return`
    Return,
    /// `if`
    If,
    /// `else`
    Else,
    /// `while`
    While,
    /// `for`
    For,
    /// `true`
    True,
    /// `false`
    False,
    /// `null`
    Null,
    /// `undefined`
    Undefined,
    /// `new`
    New,
    /// `this`
    This,
    /// `typeof`
    Typeof,
    /// `break`
    Break,
    /// `continue`
    Continue,
}

impl Keyword {
    fn from_str(s: &str) -> Option<Keyword> {
        Some(match s {
            "var" => Keyword::Var,
            "function" => Keyword::Function,
            "return" => Keyword::Return,
            "if" => Keyword::If,
            "else" => Keyword::Else,
            "while" => Keyword::While,
            "for" => Keyword::For,
            "true" => Keyword::True,
            "false" => Keyword::False,
            "null" => Keyword::Null,
            "undefined" => Keyword::Undefined,
            "new" => Keyword::New,
            "this" => Keyword::This,
            "typeof" => Keyword::Typeof,
            "break" => Keyword::Break,
            "continue" => Keyword::Continue,
            _ => return None,
        })
    }
}

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier (interned).
    Ident(Atom),
    /// Keyword.
    Kw(Keyword),
    /// Numeric literal.
    Num(f64),
    /// String literal (content, unescaped).
    Str(String),
    /// Operator or punctuation, as a short string (`"=="`, `"{"`, ...).
    Op(&'static str),
}

/// Token with line info.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedTok {
    /// The token.
    pub tok: Tok,
    /// 1-based source line.
    pub line: u32,
}

/// Lexer error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Description.
    pub message: String,
    /// 1-based line.
    pub line: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

const OPS: &[&str] = &[
    // Longest first so maximal munch works.
    "===", "!==", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=", "*=", "/=", "++", "--", "+", "-",
    "*", "/", "%", "<", ">", "=", "!", "(", ")", "{", "}", "[", "]", ",", ";", ".", ":", "?",
];

/// Tokenize mini-JS source.
pub fn lex(src: &str) -> Result<Vec<SpannedTok>, LexError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    let mut line = 1u32;
    'outer: while i < bytes.len() {
        let c = bytes[i] as char;
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        if src[i..].starts_with("//") {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        if src[i..].starts_with("/*") {
            let start = line;
            i += 2;
            loop {
                if i + 1 >= bytes.len() {
                    return Err(LexError {
                        message: "unterminated comment".into(),
                        line: start,
                    });
                }
                if bytes[i] == b'\n' {
                    line += 1;
                }
                if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                    i += 2;
                    continue 'outer;
                }
                i += 1;
            }
        }
        if c == '"' || c == '\'' {
            let quote = c;
            let start_line = line;
            i += 1;
            let mut s = String::new();
            loop {
                if i >= bytes.len() {
                    return Err(LexError {
                        message: "unterminated string".into(),
                        line: start_line,
                    });
                }
                let ch = bytes[i] as char;
                if ch == quote {
                    i += 1;
                    break;
                }
                if ch == '\n' {
                    return Err(LexError {
                        message: "newline in string".into(),
                        line: start_line,
                    });
                }
                if ch == '\\' && i + 1 < bytes.len() {
                    let esc = bytes[i + 1] as char;
                    s.push(match esc {
                        'n' => '\n',
                        't' => '\t',
                        '\\' => '\\',
                        '\'' => '\'',
                        '"' => '"',
                        other => other,
                    });
                    i += 2;
                    continue;
                }
                s.push(ch);
                i += 1;
            }
            out.push(SpannedTok {
                tok: Tok::Str(s),
                line: start_line,
            });
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'.') {
                i += 1;
            }
            let text = &src[start..i];
            let n: f64 = text.parse().map_err(|_| LexError {
                message: format!("bad number {text:?}"),
                line,
            })?;
            out.push(SpannedTok {
                tok: Tok::Num(n),
                line,
            });
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' || c == '$' {
            let start = i;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric()
                    || bytes[i] == b'_'
                    || bytes[i] == b'$')
            {
                i += 1;
            }
            let word = &src[start..i];
            let tok = match Keyword::from_str(word) {
                Some(kw) => Tok::Kw(kw),
                None => Tok::Ident(Atom::intern(word)),
            };
            out.push(SpannedTok { tok, line });
            continue;
        }
        for op in OPS {
            if src[i..].starts_with(op) {
                out.push(SpannedTok {
                    tok: Tok::Op(op),
                    line,
                });
                i += op.len();
                continue 'outer;
            }
        }
        return Err(LexError {
            message: format!("unexpected character {c:?}"),
            line,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            toks("var x = 1.5;"),
            vec![
                Tok::Kw(Keyword::Var),
                Tok::Ident(Atom::intern("x")),
                Tok::Op("="),
                Tok::Num(1.5),
                Tok::Op(";"),
            ]
        );
    }

    #[test]
    fn maximal_munch_operators() {
        assert_eq!(
            toks("a === b == c = d"),
            vec![
                Tok::Ident(Atom::intern("a")),
                Tok::Op("==="),
                Tok::Ident(Atom::intern("b")),
                Tok::Op("=="),
                Tok::Ident(Atom::intern("c")),
                Tok::Op("="),
                Tok::Ident(Atom::intern("d")),
            ]
        );
        assert_eq!(
            toks("i++"),
            vec![Tok::Ident(Atom::intern("i")), Tok::Op("++")]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            toks(r#"'a\'b' "c\nd""#),
            vec![Tok::Str("a'b".into()), Tok::Str("c\nd".into())]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            toks("a // comment\n/* block */ b"),
            vec![Tok::Ident(Atom::intern("a")), Tok::Ident(Atom::intern("b"))]
        );
    }

    #[test]
    fn keywords_recognized() {
        assert_eq!(
            toks("function typeof new"),
            vec![
                Tok::Kw(Keyword::Function),
                Tok::Kw(Keyword::Typeof),
                Tok::Kw(Keyword::New),
            ]
        );
    }

    #[test]
    fn dollar_identifiers() {
        assert_eq!(
            toks("$x _y"),
            vec![
                Tok::Ident(Atom::intern("$x")),
                Tok::Ident(Atom::intern("_y"))
            ]
        );
    }

    #[test]
    fn errors_carry_line() {
        let err = lex("ok\n  @").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(lex("'unterminated").is_err());
        assert!(lex("/* open").is_err());
    }
}
