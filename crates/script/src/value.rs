//! Runtime values.

use crate::object::ObjId;
use std::fmt;
use std::rc::Rc;

/// A runtime value. Strings are refcounted; objects live in the heap.
#[derive(Debug, Clone, Default)]
pub enum Value {
    /// `undefined`
    #[default]
    Undefined,
    /// `null`
    Null,
    /// Boolean.
    Bool(bool),
    /// IEEE-754 double.
    Num(f64),
    /// Immutable string.
    Str(Rc<str>),
    /// Heap object reference.
    Obj(ObjId),
}

impl Value {
    /// Construct a string value.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Rc::from(s.as_ref()))
    }

    /// JavaScript truthiness.
    pub fn truthy(&self) -> bool {
        match self {
            Value::Undefined | Value::Null => false,
            Value::Bool(b) => *b,
            Value::Num(n) => *n != 0.0 && !n.is_nan(),
            Value::Str(s) => !s.is_empty(),
            Value::Obj(_) => true,
        }
    }

    /// Coerce to a number (`NaN` for non-numeric strings and objects).
    pub fn to_number(&self) -> f64 {
        match self {
            Value::Undefined => f64::NAN,
            Value::Null => 0.0,
            Value::Bool(b) => {
                if *b {
                    1.0
                } else {
                    0.0
                }
            }
            Value::Num(n) => *n,
            Value::Str(s) => s.trim().parse().unwrap_or(f64::NAN),
            Value::Obj(_) => f64::NAN,
        }
    }

    /// Display coercion (`String(v)`).
    pub fn to_display(&self) -> String {
        match self {
            Value::Undefined => "undefined".into(),
            Value::Null => "null".into(),
            Value::Bool(b) => b.to_string(),
            Value::Num(n) => format_num(*n),
            Value::Str(s) => s.to_string(),
            Value::Obj(_) => "[object Object]".into(),
        }
    }

    /// `typeof` result.
    pub fn type_of(&self, is_callable: impl Fn(ObjId) -> bool) -> &'static str {
        match self {
            Value::Undefined => "undefined",
            Value::Null => "object",
            Value::Bool(_) => "boolean",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Obj(id) => {
                if is_callable(*id) {
                    "function"
                } else {
                    "object"
                }
            }
        }
    }

    /// Strict equality (`===`).
    pub fn strict_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Undefined, Value::Undefined) | (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Num(a), Value::Num(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Obj(a), Value::Obj(b)) => a == b,
            _ => false,
        }
    }

    /// Loose equality (`==`): strict equality plus `null == undefined` and
    /// number/string coercion.
    pub fn loose_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Null | Value::Undefined, Value::Null | Value::Undefined) => true,
            (Value::Num(a), Value::Str(_)) => *a == other.to_number(),
            (Value::Str(_), Value::Num(b)) => self.to_number() == *b,
            (Value::Bool(_), _) => Value::Num(self.to_number()).loose_eq(other),
            (_, Value::Bool(_)) => self.loose_eq(&Value::Num(other.to_number())),
            _ => self.strict_eq(other),
        }
    }

    /// The object id, if this is an object.
    pub fn as_obj(&self) -> Option<ObjId> {
        match self {
            Value::Obj(id) => Some(*id),
            _ => None,
        }
    }
}

/// Integer-valued doubles print without a decimal point (like JS).
fn format_num(n: f64) -> String {
    if n.is_nan() {
        "NaN".into()
    } else if n.is_infinite() {
        if n > 0.0 {
            "Infinity".into()
        } else {
            "-Infinity".into()
        }
    } else if n == n.trunc() && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_display())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness() {
        assert!(!Value::Undefined.truthy());
        assert!(!Value::Null.truthy());
        assert!(!Value::Num(0.0).truthy());
        assert!(!Value::Num(f64::NAN).truthy());
        assert!(!Value::str("").truthy());
        assert!(Value::Num(2.0).truthy());
        assert!(Value::str("x").truthy());
        assert!(Value::Obj(ObjId::new(0)).truthy());
    }

    #[test]
    fn numeric_coercion() {
        assert_eq!(Value::str(" 42 ").to_number(), 42.0);
        assert!(Value::str("nope").to_number().is_nan());
        assert_eq!(Value::Null.to_number(), 0.0);
        assert_eq!(Value::Bool(true).to_number(), 1.0);
        assert!(Value::Undefined.to_number().is_nan());
    }

    #[test]
    fn display() {
        assert_eq!(Value::Num(3.0).to_display(), "3");
        assert_eq!(Value::Num(3.5).to_display(), "3.5");
        assert_eq!(Value::Num(f64::NAN).to_display(), "NaN");
        assert_eq!(Value::str("hi").to_display(), "hi");
        assert_eq!(Value::Undefined.to_display(), "undefined");
    }

    #[test]
    fn equality() {
        assert!(Value::Null.loose_eq(&Value::Undefined));
        assert!(!Value::Null.strict_eq(&Value::Undefined));
        assert!(Value::Num(1.0).loose_eq(&Value::str("1")));
        assert!(!Value::Num(1.0).strict_eq(&Value::str("1")));
        assert!(Value::Bool(true).loose_eq(&Value::Num(1.0)));
        assert!(Value::Obj(ObjId::new(3)).strict_eq(&Value::Obj(ObjId::new(3))));
        assert!(!Value::Obj(ObjId::new(3)).strict_eq(&Value::Obj(ObjId::new(4))));
    }

    #[test]
    fn typeof_names() {
        let not_callable = |_| false;
        assert_eq!(Value::Undefined.type_of(not_callable), "undefined");
        assert_eq!(Value::Null.type_of(not_callable), "object");
        assert_eq!(Value::Num(1.0).type_of(not_callable), "number");
        assert_eq!(Value::Obj(ObjId::new(0)).type_of(|_| true), "function");
    }
}
