//! Bytecode dispatch loop for compiled [`Chunk`]s.
//!
//! Executes the instruction stream [`crate::compile`] produces against the
//! *same* interpreter state the tree-walk uses: the same [`Heap`] (prototype
//! chains, watchpoints, host tags), the same environment chain for captured
//! scopes, the same native-function registry, and the same multi-axis
//! resource accounting. The VM is a drop-in execution strategy, not a
//! parallel runtime — a compiled closure and a tree-walk closure can call
//! each other freely through [`Interpreter::call_value`], which is how host
//! callbacks (timers, event dispatch, watch handlers) reach compiled code.
//!
//! Equivalence contract (held by the differential suites in `tests/`):
//! same result value, same typed [`RuntimeError`], same remaining fuel,
//! same heap length (allocation-for-allocation), and same string-byte
//! accounting as the tree-walk on any program.
//!
//! [`Heap`]: crate::object::Heap

use crate::compile::{Chunk, ChunkMode, FuncChunk, LazyFunc, Op};
use crate::interp::{Interpreter, RuntimeError};
use crate::object::{Callable, EnvId};
use crate::value::Value;
use std::rc::Rc;
use std::sync::Arc;

/// Which execution engine runs page scripts.
///
/// The tree-walk interpreter remains fully supported as the differential
/// oracle and baseline; the VM is the production default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// The original tree-walking interpreter over the AST.
    TreeWalk,
    /// The bytecode VM over compiled chunks.
    #[default]
    Vm,
}

/// Identifier resolution state for one VM frame.
enum Scope {
    /// Real environment chain (top level and closure-creating bodies).
    Env {
        /// The innermost environment.
        cur: EnvId,
        /// Environments saved by [`Op::PushLoopEnv`], innermost last.
        saved: Vec<EnvId>,
    },
    /// Compile-time slots (leaf functions). `None` = not declared (yet).
    Slot {
        slots: Vec<Option<Value>>,
        this: Value,
        captured: EnvId,
    },
}

/// Run a compiled top-level chunk in the global scope.
///
/// Mirrors [`Interpreter::run`]: function declarations are hoisted first
/// (burning no fuel), and the value of the last top-level expression
/// statement — or an explicit top-level `return` — is returned.
pub fn run_chunk(interp: &mut Interpreter, chunk: &Chunk) -> Result<Value, RuntimeError> {
    let global = interp.global;
    hoist(interp, &chunk.main, global);
    let mut scope = Scope::Env {
        cur: global,
        saved: Vec::new(),
    };
    exec(interp, &chunk.main, &mut scope)
}

/// Hoist a body's function declarations into `env`, allocating compiled
/// closures in body order (the same heap-id order the tree-walk produces).
fn hoist(interp: &mut Interpreter, f: &FuncChunk, env: EnvId) {
    for &fi in f.hoisted.iter() {
        let func = f.funcs[fi as usize].clone();
        let Some(name) = func.name() else { continue };
        let id = interp
            .heap
            .alloc_callable(Callable::Compiled { func, env }, None);
        interp.envs[env.index()].vars.insert(name, Value::Obj(id));
    }
}

/// Invoke a compiled closure. Called from [`Interpreter::call_value`],
/// which has already type-checked the callee and charged call depth.
///
/// This is where lazy lowering happens: the first call forces the body
/// through [`LazyFunc::force`] (pure, burns no fuel); every later call —
/// from any page or thread sharing the chunk — reuses the memoized body.
/// A lowering failure (pool/offset overflow past `u32`, unreachable for
/// any source that fits the string budget) surfaces as a typed error
/// rather than a panic.
pub(crate) fn call_compiled(
    interp: &mut Interpreter,
    lazy: &Arc<LazyFunc>,
    env: EnvId,
    this: Value,
    args: &[Value],
    callee: &Value,
) -> Result<Value, RuntimeError> {
    let func = lazy
        .force()
        .map_err(|e| RuntimeError::TypeError(e.to_string()))?;
    match func.mode {
        ChunkMode::Env => {
            // Same setup order as the tree-walk's script-call path: push the
            // call environment, hoist declarations, bind parameters, then
            // the self name (which shadows a same-named parameter).
            let call_env = interp.push_env(Some(env), this);
            hoist(interp, func, call_env);
            for (i, p) in func.params.iter().enumerate() {
                let v = args.get(i).cloned().unwrap_or(Value::Undefined);
                interp.envs[call_env.index()].vars.insert(*p, v);
            }
            if let Some(name) = func.name {
                interp.envs[call_env.index()]
                    .vars
                    .insert(name, callee.clone());
            }
            let mut scope = Scope::Env {
                cur: call_env,
                saved: Vec::new(),
            };
            exec(interp, func, &mut scope)
        }
        ChunkMode::Slot => {
            let mut slots: Vec<Option<Value>> = vec![None; func.n_slots as usize];
            for (i, &s) in func.param_slots.iter().enumerate() {
                slots[s as usize] = Some(args.get(i).cloned().unwrap_or(Value::Undefined));
            }
            if let Some(s) = func.self_slot {
                slots[s as usize] = Some(callee.clone());
            }
            let mut scope = Scope::Slot {
                slots,
                this,
                captured: env,
            };
            exec(interp, func, &mut scope)
        }
    }
}

/// Charge `n` merged fuel units. Exactly equivalent to `n` consecutive
/// tree-walk `burn()` calls given that nothing (in particular no heap
/// allocation) happens between them — which the compiler guarantees by
/// only merging literally adjacent burn points within a basic block.
fn burn(interp: &mut Interpreter, n: u32) -> Result<(), RuntimeError> {
    if interp.fuel == 0 {
        return Err(RuntimeError::OutOfFuel);
    }
    if interp.heap.len() > interp.heap_ceiling {
        // The first sequential burn would decrement before noticing.
        interp.fuel -= 1;
        return Err(RuntimeError::HeapExhausted);
    }
    let n = u64::from(n);
    if interp.fuel < n {
        // Sequential burns would drain to zero and trip on the next one.
        interp.fuel = 0;
        return Err(RuntimeError::OutOfFuel);
    }
    interp.fuel -= n;
    Ok(())
}

/// A malformed instruction stream (wrong-mode op, stack underflow). The
/// compiler cannot emit one; surfacing a typed error instead of panicking
/// keeps the no-panic contract even if a chunk were corrupted.
fn bad_chunk() -> RuntimeError {
    RuntimeError::TypeError("malformed bytecode chunk".into())
}

fn pop(stack: &mut Vec<Value>) -> Result<Value, RuntimeError> {
    stack.pop().ok_or_else(bad_chunk)
}

/// The dispatch loop: one frame, one instruction stream.
#[allow(clippy::too_many_lines)]
fn exec(interp: &mut Interpreter, f: &FuncChunk, scope: &mut Scope) -> Result<Value, RuntimeError> {
    let code = &f.code;
    let mut stack: Vec<Value> = Vec::with_capacity(16);
    // Per-frame lazy Rc cache for string literals: the pool stores plain
    // `Box<str>`; a literal evaluated in a loop shares one allocation.
    let mut strcache: Vec<Option<Rc<str>>> = vec![None; f.strs.len()];
    let mut last = Value::Undefined;
    let mut ip = 0usize;
    while let Some(op) = code.get(ip) {
        ip += 1;
        match *op {
            Op::Burn(n) => burn(interp, n)?,
            Op::Num(i) => stack.push(Value::Num(f.nums[i as usize])),
            Op::Str(i) => {
                let i = i as usize;
                let rc = match &strcache[i] {
                    Some(rc) => rc.clone(),
                    None => {
                        let rc: Rc<str> = Rc::from(&*f.strs[i]);
                        strcache[i] = Some(rc.clone());
                        rc
                    }
                };
                stack.push(Value::Str(rc));
            }
            Op::True => stack.push(Value::Bool(true)),
            Op::False => stack.push(Value::Bool(false)),
            Op::Null => stack.push(Value::Null),
            Op::Undefined => stack.push(Value::Undefined),
            Op::This => match scope {
                Scope::Env { cur, .. } => stack.push(interp.this_of(*cur)),
                Scope::Slot { this, captured, .. } => {
                    if matches!(this, Value::Undefined) {
                        stack.push(interp.this_of(*captured));
                    } else {
                        stack.push(this.clone());
                    }
                }
            },
            Op::LoadName(name) => {
                let Scope::Env { cur, .. } = scope else {
                    return Err(bad_chunk());
                };
                stack.push(interp.lookup(name, *cur)?);
            }
            Op::StoreName(name) => {
                let Scope::Env { cur, .. } = scope else {
                    return Err(bad_chunk());
                };
                let v = pop(&mut stack)?;
                interp.assign_name(name, *cur, v);
            }
            Op::DeclName(name) => {
                let Scope::Env { cur, .. } = scope else {
                    return Err(bad_chunk());
                };
                let v = pop(&mut stack)?;
                interp.envs[cur.index()].vars.insert(name, v);
            }
            Op::TypeofName(name) => {
                let Scope::Env { cur, .. } = scope else {
                    return Err(bad_chunk());
                };
                let v = interp.lookup(name, *cur).unwrap_or(Value::Undefined);
                let heap = &interp.heap;
                stack.push(Value::str(v.type_of(|id| heap.is_callable(id))));
            }
            Op::LoadPath(i) => {
                let Scope::Slot {
                    slots, captured, ..
                } = scope
                else {
                    return Err(bad_chunk());
                };
                let path = &f.paths[i as usize];
                match resolve_path(slots, &path.slots) {
                    Some(v) => stack.push(v),
                    None => stack.push(interp.lookup(path.atom, *captured)?),
                }
            }
            Op::StorePath(i) => {
                let Scope::Slot {
                    slots, captured, ..
                } = scope
                else {
                    return Err(bad_chunk());
                };
                let v = pop(&mut stack)?;
                let path = &f.paths[i as usize];
                match path.slots.iter().find(|&&s| slots[s as usize].is_some()) {
                    Some(&s) => slots[s as usize] = Some(v),
                    None => interp.assign_name(path.atom, *captured, v),
                }
            }
            Op::TypeofPath(i) => {
                let Scope::Slot {
                    slots, captured, ..
                } = scope
                else {
                    return Err(bad_chunk());
                };
                let path = &f.paths[i as usize];
                let v = match resolve_path(slots, &path.slots) {
                    Some(v) => v,
                    None => interp
                        .lookup(path.atom, *captured)
                        .unwrap_or(Value::Undefined),
                };
                let heap = &interp.heap;
                stack.push(Value::str(v.type_of(|id| heap.is_callable(id))));
            }
            Op::DeclSlot(s) => {
                let Scope::Slot { slots, .. } = scope else {
                    return Err(bad_chunk());
                };
                slots[s as usize] = Some(pop(&mut stack)?);
            }
            Op::ResetScope(i) => {
                let Scope::Slot { slots, .. } = scope else {
                    return Err(bad_chunk());
                };
                for &s in f.scopes[i as usize].iter() {
                    slots[s as usize] = None;
                }
            }
            Op::GetMember(prop) => {
                let base = pop(&mut stack)?;
                stack.push(interp.get_member_atom(&base, prop)?);
            }
            Op::GetIndex => {
                let key = pop(&mut stack)?;
                let base = pop(&mut stack)?;
                let k = key.to_display();
                stack.push(interp.get_member(&base, &k)?);
            }
            Op::SetMember(prop) => {
                let base = pop(&mut stack)?;
                let value = pop(&mut stack)?;
                interp.set_member_atom(&base, prop, value)?;
            }
            Op::SetIndex => {
                let key = pop(&mut stack)?;
                let base = pop(&mut stack)?;
                let value = pop(&mut stack)?;
                let k = key.to_display();
                interp.set_member(&base, &k, value)?;
            }
            Op::SetPropRaw(key) => {
                let v = pop(&mut stack)?;
                let target = stack.last().and_then(Value::as_obj).ok_or_else(bad_chunk)?;
                interp.heap.set_prop_raw_atom(target, key, v);
            }
            Op::AllocObject => {
                let id = interp.heap.alloc(None);
                stack.push(Value::Obj(id));
            }
            Op::Dup => {
                let v = stack.last().cloned().ok_or_else(bad_chunk)?;
                stack.push(v);
            }
            Op::Swap => {
                let a = pop(&mut stack)?;
                let b = pop(&mut stack)?;
                stack.push(a);
                stack.push(b);
            }
            Op::Pop => {
                pop(&mut stack)?;
            }
            Op::Call(argc) => {
                let n = argc as usize;
                if stack.len() < n + 2 {
                    return Err(bad_chunk());
                }
                let args = stack.split_off(stack.len() - n);
                let this = pop(&mut stack)?;
                let fval = pop(&mut stack)?;
                stack.push(interp.call_value(&fval, this, &args)?);
            }
            Op::NewAlloc => {
                let ctor = pop(&mut stack)?;
                let Some(ctor_obj) = ctor.as_obj() else {
                    return Err(RuntimeError::TypeError(
                        "constructor is not an object".into(),
                    ));
                };
                let proto = interp.heap.get_prop(ctor_obj, "prototype").as_obj();
                let instance = interp.heap.alloc(proto);
                stack.push(ctor);
                stack.push(Value::Obj(instance));
            }
            Op::NewCall(argc) => {
                let n = argc as usize;
                if stack.len() < n + 2 {
                    return Err(bad_chunk());
                }
                let args = stack.split_off(stack.len() - n);
                let instance = pop(&mut stack)?;
                let ctor = pop(&mut stack)?;
                let result = interp.call_value(&ctor, instance.clone(), &args)?;
                stack.push(match result {
                    Value::Obj(o) => Value::Obj(o),
                    _ => instance,
                });
            }
            Op::MakeClosure(fi) => {
                let Scope::Env { cur, .. } = scope else {
                    return Err(bad_chunk());
                };
                let func = f.funcs[fi as usize].clone();
                let id = interp
                    .heap
                    .alloc_callable(Callable::Compiled { func, env: *cur }, None);
                stack.push(Value::Obj(id));
            }
            Op::Jump(t) => ip = t as usize,
            Op::JumpIfFalse(t) => {
                if !pop(&mut stack)?.truthy() {
                    ip = t as usize;
                }
            }
            Op::AndJump(t) => {
                let top = stack.last().ok_or_else(bad_chunk)?;
                if top.truthy() {
                    stack.pop();
                } else {
                    ip = t as usize;
                }
            }
            Op::OrJump(t) => {
                let top = stack.last().ok_or_else(bad_chunk)?;
                if top.truthy() {
                    ip = t as usize;
                } else {
                    stack.pop();
                }
            }
            Op::Bin(op) => {
                let r = pop(&mut stack)?;
                let l = pop(&mut stack)?;
                stack.push(interp.binary(op, &l, &r)?);
            }
            Op::Neg => {
                let v = pop(&mut stack)?;
                stack.push(Value::Num(-v.to_number()));
            }
            Op::Not => {
                let v = pop(&mut stack)?;
                stack.push(Value::Bool(!v.truthy()));
            }
            Op::TypeofVal => {
                let v = pop(&mut stack)?;
                let heap = &interp.heap;
                stack.push(Value::str(v.type_of(|id| heap.is_callable(id))));
            }
            Op::ToNumber => {
                let v = pop(&mut stack)?;
                stack.push(Value::Num(v.to_number()));
            }
            Op::IncNum => {
                let v = pop(&mut stack)?;
                stack.push(Value::Num(v.to_number() + 1.0));
            }
            Op::DecNum => {
                let v = pop(&mut stack)?;
                stack.push(Value::Num(v.to_number() - 1.0));
            }
            Op::Return => return pop(&mut stack),
            Op::PopLastExpr => {
                interp.last_expr_value = Some(pop(&mut stack)?);
            }
            Op::TakeLastExpr => {
                interp.last_expr_value = None;
                last = pop(&mut stack)?;
            }
            Op::PushLoopEnv => {
                let Scope::Env { cur, saved } = scope else {
                    return Err(bad_chunk());
                };
                saved.push(*cur);
                let this = interp.this_of(*cur);
                *cur = interp.push_env(Some(*cur), this);
            }
            Op::PopLoopEnv => {
                let Scope::Env { cur, saved } = scope else {
                    return Err(bad_chunk());
                };
                *cur = saved.pop().ok_or_else(bad_chunk)?;
            }
            Op::BreakOutside => {
                return Err(RuntimeError::TypeError(
                    "break/continue outside a loop".into(),
                ));
            }
        }
    }
    Ok(last)
}

/// First declared slot along a path, cloned.
fn resolve_path(slots: &[Option<Value>], path: &[u32]) -> Option<Value> {
    path.iter()
        .find_map(|&s| slots.get(s as usize).and_then(Clone::clone))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::ResourceBudget;
    use crate::compile::compile;
    use crate::parser::parse;
    use crate::ScriptError;

    /// Run `src` through both engines under the same budget and demand
    /// bit-identical outcomes: result/error, remaining fuel, heap length,
    /// and string-byte accounting.
    fn diff_with(budget: ResourceBudget, src: &str) -> Result<Value, RuntimeError> {
        let mut tw = Interpreter::new();
        tw.set_budget(&budget);
        let tw_result = match tw.run_source(src) {
            Ok(v) => Ok(v),
            Err(ScriptError::Runtime(e)) => Err(e),
            Err(ScriptError::Parse(e)) => panic!("differential source must parse: {e}"),
        };

        let mut vm = Interpreter::new();
        vm.set_budget(&budget);
        let program = parse(src).expect("parses");
        let chunk = compile(&program).expect("compiles");
        let vm_result = run_chunk(&mut vm, &chunk);

        match (&tw_result, &vm_result) {
            (Ok(a), Ok(b)) => assert!(
                a.strict_eq(b),
                "value divergence on {src:?}: tree-walk {a:?}, vm {b:?}"
            ),
            (Err(a), Err(b)) => assert_eq!(a, b, "error divergence on {src:?}"),
            (a, b) => panic!("outcome divergence on {src:?}: tree-walk {a:?}, vm {b:?}"),
        }
        assert_eq!(tw.fuel(), vm.fuel(), "fuel divergence on {src:?}");
        assert_eq!(
            tw.heap.len(),
            vm.heap.len(),
            "heap-shape divergence on {src:?}"
        );
        assert_eq!(
            tw.string_bytes_allocated(),
            vm.string_bytes_allocated(),
            "string accounting divergence on {src:?}"
        );
        vm_result
    }

    fn diff(src: &str) -> Result<Value, RuntimeError> {
        diff_with(ResourceBudget::default(), src)
    }

    fn diff_ok(src: &str) -> Value {
        diff(src).expect("runs")
    }

    #[test]
    fn literals_and_arithmetic() {
        assert_eq!(diff_ok("1 + 2 * 3;").to_display(), "7");
        assert_eq!(diff_ok("'a' + 'b' + 3;").to_display(), "ab3");
        assert_eq!(diff_ok("10 % 4 - 1 / 2;").to_display(), "1.5");
        assert_eq!(diff_ok("!0;").to_display(), "true");
        assert_eq!(diff_ok("-'3';").to_display(), "-3");
        assert_eq!(diff_ok("null == undefined;").to_display(), "true");
        assert_eq!(diff_ok("1 === '1';").to_display(), "false");
        assert_eq!(diff_ok("'b' > 'a';").to_display(), "true");
    }

    #[test]
    fn vars_functions_and_closures() {
        assert_eq!(diff_ok("var x = 3; x = x + 1; x;").to_display(), "4");
        assert_eq!(
            diff_ok("function add(a, b) { return a + b; } add(2, 40);").to_display(),
            "42"
        );
        assert_eq!(
            diff_ok(
                "function mk(n) { return function (m) { return n + m; }; } \
                 var f = mk(40); f(2);"
            )
            .to_display(),
            "42"
        );
        // Self-name binding of named function expressions.
        assert_eq!(
            diff_ok("var f = function fact(n) { return n < 2 ? 1 : n * fact(n - 1); }; f(5);")
                .to_display(),
            "120"
        );
        // Forward call via hoisting.
        assert_eq!(
            diff_ok("var r = f(); function f() { return 9; } r;").to_display(),
            "9"
        );
    }

    #[test]
    fn control_flow() {
        assert_eq!(
            diff_ok("var s = 0; for (var i = 0; i < 5; i = i + 1) { s = s + i; } s;").to_display(),
            "10"
        );
        assert_eq!(
            diff_ok(
                "var s = 0; var i = 0; while (i < 10) { i = i + 1; \
                 if (i == 3) { continue; } if (i > 6) { break; } s = s + i; } s;"
            )
            .to_display(),
            "18"
        );
        assert_eq!(
            diff_ok("var x = 5; if (x > 3) { x = 1; } else { x = 2; } x;").to_display(),
            "1"
        );
        assert_eq!(diff_ok("true && 'y' || 'n';").to_display(), "y");
        assert_eq!(diff_ok("0 || '' || 'fallback';").to_display(), "fallback");
        // `for` scope is fresh per statement execution.
        assert_eq!(
            diff_ok(
                "function f() { var t = 0; \
                 for (var i = 0; i < 2; i = i + 1) { var k = i + 1; t = t + k; } \
                 return t; } f();"
            )
            .to_display(),
            "3"
        );
    }

    #[test]
    fn objects_arrays_and_prototypes() {
        assert_eq!(
            diff_ok("var o = { a: 1, b: 2 }; o.c = o.a + o['b']; o.c;").to_display(),
            "3"
        );
        assert_eq!(
            diff_ok("var a = [10, 20, 30]; a[1] = a[0] + a[2]; a.length + a[1];").to_display(),
            "43"
        );
        assert_eq!(
            diff_ok(
                "function Dog(name) { this.name = name; } \
                 Dog.prototype = { speak: function () { return this.name + '!'; } }; \
                 var d = new Dog('rex'); d.speak();"
            )
            .to_display(),
            "rex!"
        );
        assert_eq!(diff_ok("'hello'.length;").to_display(), "5");
        assert_eq!(
            diff_ok("typeof x + ' ' + typeof 1 + ' ' + typeof {};").to_display(),
            "undefined number object"
        );
    }

    #[test]
    fn incdec_and_compound_assignment() {
        assert_eq!(
            diff_ok("var i = 5; var a = i++; a + ' ' + i;").to_display(),
            "5 6"
        );
        assert_eq!(
            diff_ok("var i = 5; var a = ++i; a + ' ' + i;").to_display(),
            "6 6"
        );
        assert_eq!(diff_ok("var i = 5; i--; --i; i;").to_display(), "3");
        assert_eq!(
            diff_ok("var o = { n: 3 }; o.n += 4; o.n;").to_display(),
            "7"
        );
        assert_eq!(
            diff_ok("var a = [1]; a[0] *= 5; a[0]++; a[0];").to_display(),
            "6"
        );
    }

    #[test]
    fn typed_errors_match() {
        assert!(matches!(
            diff("nosuchvar + 1;"),
            Err(RuntimeError::ReferenceError(_))
        ));
        assert!(matches!(
            diff("null.prop;"),
            Err(RuntimeError::TypeError(_))
        ));
        assert!(matches!(
            diff("var x = 1; x();"),
            Err(RuntimeError::TypeError(_))
        ));
        assert!(matches!(diff("new 5();"), Err(RuntimeError::TypeError(_))));
        assert!(matches!(diff("break;"), Err(RuntimeError::TypeError(_))));
        assert!(matches!(
            diff("undefined.x = 1;"),
            Err(RuntimeError::TypeError(_))
        ));
    }

    #[test]
    fn budget_traps_match_exactly() {
        // Fuel: both engines must trap at the same remaining-fuel point.
        let tight = ResourceBudget::steps_only(1_000);
        assert!(matches!(
            diff_with(tight, "while (true) { var x = 1; }"),
            Err(RuntimeError::OutOfFuel)
        ));
        // Heap.
        let heap = ResourceBudget {
            max_heap_cells: 100,
            ..ResourceBudget::default()
        };
        assert!(matches!(
            diff_with(
                heap,
                "var a = []; var i = 0; while (true) { a[i] = { x: i }; i = i + 1; }"
            ),
            Err(RuntimeError::HeapExhausted)
        ));
        // Strings.
        let strings = ResourceBudget {
            max_string_bytes: 1 << 12,
            ..ResourceBudget::default()
        };
        assert!(matches!(
            diff_with(strings, "var s = 'xxxxxxxx'; while (true) { s = s + s; }"),
            Err(RuntimeError::StringOverflow)
        ));
        // Depth.
        let depth = ResourceBudget {
            max_call_depth: 24,
            ..ResourceBudget::default()
        };
        assert!(matches!(
            diff_with(depth, "function r(n) { return r(n + 1); } r(0);"),
            Err(RuntimeError::StackOverflow)
        ));
    }

    #[test]
    fn fuel_parity_on_mixed_workload() {
        // A program touching every construct: the assert inside diff_with
        // demands remaining fuel matches to the unit.
        diff_ok(
            "var total = 0; \
             function helper(n) { var acc = 0; \
               for (var i = 0; i < n; i++) { acc += i; } return acc; } \
             function Maker(v) { this.v = v; } \
             Maker.prototype = { get: function () { return this.v; } }; \
             var objs = []; \
             for (var j = 0; j < 5; j = j + 1) { \
               objs[j] = new Maker(helper(j)); \
               total += objs[j].get(); \
             } \
             var s = ''; var k = 0; \
             while (k < 3) { s = s + total; k++; } \
             typeof s == 'string' ? s.length : -1;",
        );
    }

    #[test]
    fn watchpoints_fire_identically() {
        // Property interception via Heap::watch drives the paper's
        // instrumentation; handlers must fire (reentrantly) under the VM.
        fn run(engine: Engine) -> (Vec<String>, Value) {
            let mut interp = Interpreter::new();
            let log = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
            let log2 = log.clone();
            let handler = interp.register_native(std::rc::Rc::new(move |_, _, args| {
                let name = args.first().map(Value::to_display).unwrap_or_default();
                let new = args.get(2).map(Value::to_display).unwrap_or_default();
                log2.borrow_mut().push(format!("{name}={new}"));
                Ok(Value::Undefined)
            }));
            let target = interp.heap.alloc(None);
            if let Some(h) = handler.as_obj() {
                interp.heap.watch(target, h);
            }
            interp.set_global("tgt", Value::Obj(target));
            let src = "tgt.a = 1; tgt.b = 'x'; tgt.a = 2; tgt['c'] = true; tgt.b;";
            let out = match engine {
                Engine::TreeWalk => interp.run_source(src).expect("tree-walk runs"),
                Engine::Vm => {
                    let chunk = compile(&parse(src).expect("parses")).expect("compiles");
                    run_chunk(&mut interp, &chunk).expect("vm runs")
                }
            };
            let fired = log.borrow().clone();
            (fired, out)
        }
        let (tw_log, tw_out) = run(Engine::TreeWalk);
        let (vm_log, vm_out) = run(Engine::Vm);
        assert_eq!(tw_log, vm_log);
        assert_eq!(tw_log, vec!["a=1", "b=x", "a=2", "c=true"]);
        assert!(tw_out.strict_eq(&vm_out));
    }

    #[test]
    fn sloppy_globals_and_shadowing() {
        assert_eq!(
            diff_ok("function f() { leak = 7; } f(); leak;").to_display(),
            "7"
        );
        assert_eq!(
            diff_ok("var x = 'outer'; function f(x) { x = 'inner'; return x; } f(1) + ' ' + x;")
                .to_display(),
            "inner outer"
        );
        // var with no initializer clobbers a same-named parameter.
        assert_eq!(
            diff_ok("function f(a) { var a; return typeof a; } f(5);").to_display(),
            "undefined"
        );
        // Write-before-var inside a function leaks to the global.
        assert_eq!(
            diff_ok("function f() { y = 5; var y = 1; return y; } f() + ' ' + y;").to_display(),
            "1 5"
        );
    }

    #[test]
    fn this_binding() {
        assert_eq!(
            diff_ok(
                "var o = { v: 41, m: function () { return this.v + 1; } }; \
                 o.m();"
            )
            .to_display(),
            "42"
        );
        // Plain calls get undefined `this` (host default).
        assert_eq!(
            diff_ok("function f() { return typeof this; } f();").to_display(),
            "undefined"
        );
        // `this` visible through a for-loop scope.
        assert_eq!(
            diff_ok(
                "var o = { v: 2, m: function () { var t = 0; \
                 for (var i = 0; i < 3; i++) { t = t + this.v; } return t; } }; o.m();"
            )
            .to_display(),
            "6"
        );
    }

    #[test]
    fn callbacks_into_compiled_closures() {
        // A compiled closure stored by script, invoked later from host code
        // (the browser's timer/event path).
        let mut interp = Interpreter::new();
        let chunk =
            compile(&parse("var n = 10; cb = function (x) { return x + n; };").expect("parses"))
                .expect("compiles");
        run_chunk(&mut interp, &chunk).expect("runs");
        let cb = interp.get_global("cb");
        let out = interp
            .call_value(&cb, Value::Undefined, &[Value::Num(32.0)])
            .expect("callback runs");
        assert_eq!(out.to_display(), "42");
    }

    #[test]
    fn last_expression_value_semantics() {
        // Only *direct* top-level expression statements feed the program
        // result; nested ones (inside if/for) do not.
        assert_eq!(diff_ok("1; 2; 3;").to_display(), "3");
        assert_eq!(diff_ok("9; if (true) { 5; }").to_display(), "9");
        assert_eq!(
            diff_ok("var i = 0; 7; while (i < 2) { i = i + 1; 42; }").to_display(),
            "7"
        );
        // Top-level return halts and yields its value.
        assert_eq!(diff_ok("1; return 33; 2;").to_display(), "33");
    }

    #[test]
    fn deep_member_chains_and_calls() {
        assert_eq!(
            diff_ok(
                "var a = { b: { c: { d: function () { return 'deep'; } } } }; \
                 a.b.c.d();"
            )
            .to_display(),
            "deep"
        );
        assert_eq!(
            diff_ok(
                "var k = 'b'; var o = { b: { f: function (x) { return x * 2; } } }; o[k].f(21);"
            )
            .to_display(),
            "42"
        );
    }
}
