//! End-to-end interpreter tests: the language semantics the instrumentation
//! technique (prototype patching + watchpoints) depends on.

use bfu_script::interp::{Interpreter, RuntimeError, ScriptError};
use bfu_script::object::Callable;
use bfu_script::value::Value;
use std::cell::RefCell;
use std::rc::Rc;

fn eval_num(src: &str) -> f64 {
    let mut i = Interpreter::new();
    i.run_source(src).unwrap().to_number()
}

#[test]
fn arithmetic_and_precedence() {
    assert_eq!(eval_num("1 + 2 * 3;"), 7.0);
    assert_eq!(eval_num("(1 + 2) * 3;"), 9.0);
    assert_eq!(eval_num("10 % 4;"), 2.0);
    assert_eq!(eval_num("7 / 2;"), 3.5);
}

#[test]
fn string_concat_and_comparison() {
    let mut i = Interpreter::new();
    assert_eq!(i.run_source("'a' + 1;").unwrap().to_display(), "a1");
    assert!(i.run_source("'abc' < 'abd';").unwrap().truthy());
    assert!(i.run_source("'2' == 2;").unwrap().truthy());
    assert!(!i.run_source("'2' === 2;").unwrap().truthy());
}

#[test]
fn variables_functions_and_closures() {
    let src = r#"
        function makeCounter() {
            var n = 0;
            return function() { n = n + 1; return n; };
        }
        var c = makeCounter();
        c(); c();
        c();
    "#;
    assert_eq!(eval_num(src), 3.0);
}

#[test]
fn recursion() {
    let src = r#"
        function fib(n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }
        fib(10);
    "#;
    assert_eq!(eval_num(src), 55.0);
}

#[test]
fn loops_break_continue() {
    let src = r#"
        var total = 0;
        for (var i = 0; i < 10; i++) {
            if (i % 2 == 0) { continue; }
            if (i > 7) { break; }
            total += i;
        }
        total;
    "#;
    assert_eq!(eval_num(src), 1.0 + 3.0 + 5.0 + 7.0);
}

#[test]
fn while_loop() {
    assert_eq!(eval_num("var i = 0; while (i < 5) { i++; } i;"), 5.0);
}

#[test]
fn objects_arrays_and_this() {
    let src = r#"
        var o = { x: 2, get: function() { return this.x * 10; } };
        var arr = [1, 2, 3];
        o.get() + arr[1] + arr.length;
    "#;
    assert_eq!(eval_num(src), 25.0);
}

#[test]
fn prototype_chain_method_lookup() {
    // The load-bearing semantics: a method installed on a prototype object
    // is found through instances, and *overwriting it on the prototype*
    // changes what instances see — the paper's shimming technique.
    let mut i = Interpreter::new();
    let proto = i.heap.alloc(None);
    let m = i.register_native(Rc::new(|_, _, _| Ok(Value::Num(1.0))));
    i.heap.set_prop_raw(proto, "probe", m);

    // A constructor whose .prototype is `proto`.
    let ctor = i.register_native(Rc::new(|_, _this, _| Ok(Value::Undefined)));
    let ctor_obj = ctor.as_obj().unwrap();
    i.heap
        .set_prop_raw(ctor_obj, "prototype", Value::Obj(proto));
    i.set_global("Widget", ctor);

    assert_eq!(
        i.run_source("var w = new Widget(); w.probe();")
            .unwrap()
            .to_number(),
        1.0
    );

    // Patch the prototype method (as the instrumentation extension does).
    let patched = i.register_native(Rc::new(|_, _, _| Ok(Value::Num(42.0))));
    i.heap.set_prop_raw(proto, "probe", patched);
    assert_eq!(
        i.run_source("w.probe();").unwrap().to_number(),
        42.0,
        "existing instances observe the patched prototype"
    );
}

#[test]
fn closures_capture_originals_after_patching() {
    // The extension keeps the original method reachable only through its
    // wrapper's closure; page code cannot recover it. Model that in-language.
    let src = r#"
        var obj = { real: function() { return 7; } };
        var original = obj.real;
        obj.real = function() { return 100 + original(); };
        obj.real();
    "#;
    assert_eq!(eval_num(src), 107.0);
}

#[test]
fn watchpoints_fire_on_property_writes() {
    let mut i = Interpreter::new();
    let singleton = i.heap.alloc(None);
    i.set_global("navigator", Value::Obj(singleton));

    let log: Rc<RefCell<Vec<(String, String)>>> = Rc::new(RefCell::new(Vec::new()));
    let log2 = log.clone();
    let handler = i.register_native(Rc::new(move |_, _, args| {
        log2.borrow_mut().push((
            args[0].to_display(),
            args.get(2).map(|v| v.to_display()).unwrap_or_default(),
        ));
        Ok(Value::Undefined)
    }));
    i.heap.watch(singleton, handler.as_obj().unwrap());

    i.run_source("navigator.onLine = true; navigator.appName = 'bfu';")
        .unwrap();
    let seen = log.borrow();
    assert_eq!(seen.len(), 2);
    assert_eq!(seen[0], ("onLine".to_owned(), "true".to_owned()));
    assert_eq!(seen[1], ("appName".to_owned(), "bfu".to_owned()));
}

#[test]
fn natives_receive_this_and_args() {
    let mut i = Interpreter::new();
    let f = i.register_native(Rc::new(|interp, this, args| {
        let this_obj = this.as_obj().expect("method call binds this");
        let tag = interp.heap.get_prop(this_obj, "tag").to_display();
        Ok(Value::str(format!("{tag}:{}", args[0].to_display())))
    }));
    let obj = i.heap.alloc(None);
    i.heap.set_prop_raw(obj, "tag", Value::str("X"));
    i.heap.set_prop_raw(obj, "go", f);
    i.set_global("o", Value::Obj(obj));
    assert_eq!(i.run_source("o.go('hi');").unwrap().to_display(), "X:hi");
}

#[test]
fn fuel_exhaustion_aborts_infinite_loop() {
    let mut i = Interpreter::new();
    i.set_fuel(10_000);
    let err = i.run_source("while (true) { var x = 1; }").unwrap_err();
    assert!(matches!(err, ScriptError::Runtime(RuntimeError::OutOfFuel)));
}

#[test]
fn stack_overflow_detected() {
    let mut i = Interpreter::new();
    let err = i
        .run_source("function f() { return f(); } f();")
        .unwrap_err();
    assert!(matches!(
        err,
        ScriptError::Runtime(RuntimeError::StackOverflow)
    ));
}

#[test]
fn type_errors_are_reported() {
    let mut i = Interpreter::new();
    assert!(matches!(
        i.run_source("var x = null; x.prop;").unwrap_err(),
        ScriptError::Runtime(RuntimeError::TypeError(_))
    ));
    assert!(matches!(
        i.run_source("var y = 5; y();").unwrap_err(),
        ScriptError::Runtime(RuntimeError::TypeError(_))
    ));
    assert!(matches!(
        i.run_source("missing_variable;").unwrap_err(),
        ScriptError::Runtime(RuntimeError::ReferenceError(_))
    ));
}

#[test]
fn typeof_does_not_throw_on_missing() {
    let mut i = Interpreter::new();
    assert_eq!(
        i.run_source("typeof not_defined;").unwrap().to_display(),
        "undefined"
    );
    assert_eq!(i.run_source("typeof 'x';").unwrap().to_display(), "string");
    assert_eq!(
        i.run_source("typeof function(){};").unwrap().to_display(),
        "function"
    );
}

#[test]
fn ternary_and_logical_shortcircuit() {
    assert_eq!(eval_num("true ? 1 : 2;"), 1.0);
    assert_eq!(eval_num("false ? 1 : 2;"), 2.0);
    // RHS must not evaluate when short-circuited (would throw).
    let mut i = Interpreter::new();
    assert!(i.run_source("false && missing_fn();").is_ok());
    assert!(i.run_source("true || missing_fn();").is_ok());
}

#[test]
fn assignment_to_undeclared_creates_global() {
    let mut i = Interpreter::new();
    i.run_source("function f() { leaked = 9; } f();").unwrap();
    assert_eq!(i.get_global("leaked").to_number(), 9.0);
}

#[test]
fn index_access_and_write() {
    let src = r#"
        var o = {};
        o['a'] = 1;
        o.b = 2;
        var key = 'a';
        o[key] + o['b'];
    "#;
    assert_eq!(eval_num(src), 3.0);
}

#[test]
fn new_returns_explicit_object_if_constructor_returns_one() {
    let mut i = Interpreter::new();
    let other = i.heap.alloc(None);
    i.heap.set_prop_raw(other, "marker", Value::Num(5.0));
    let ctor = i.register_native(Rc::new(move |_, _, _| Ok(Value::Obj(other))));
    i.set_global("C", ctor);
    assert_eq!(eval_with(&mut i, "var c = new C(); c.marker;"), 5.0);
}

fn eval_with(i: &mut Interpreter, src: &str) -> f64 {
    i.run_source(src).unwrap().to_number()
}

#[test]
fn script_callables_cloneable_between_heap_slots() {
    // A script function stored as a prototype method keeps its captured env.
    let mut i = Interpreter::new();
    i.run_source(
        r#"
        var base = 10;
        var proto = { scaled: function(k) { return base * k; } };
        var method = proto.scaled;
        var out = method(3);
    "#,
    )
    .unwrap();
    assert_eq!(i.get_global("out").to_number(), 30.0);
    // Verify the callable is a script closure.
    let proto = i.get_global("proto").as_obj().unwrap();
    let m = i.heap.get_prop(proto, "scaled").as_obj().unwrap();
    assert!(matches!(
        i.heap.get(m).callable,
        Some(Callable::Script { .. })
    ));
}

#[test]
fn function_declarations_are_hoisted() {
    // Forward calls at program top level.
    let mut i = Interpreter::new();
    let v = i
        .run_source("var x = later(); function later() { return 7; } x;")
        .unwrap();
    assert_eq!(v.to_number(), 7.0);
    // And inside function bodies.
    let v = i
        .run_source(
            "function outer() { return inner() + 1; function inner() { return 1; } } outer();",
        )
        .unwrap();
    assert_eq!(v.to_number(), 2.0);
}
