//! The storage backend trait: every byte the store reads or writes goes
//! through here.
//!
//! A [`StorageBackend`] is a flat namespace of named objects — exactly the
//! model of an object store, which is where the shard format is headed (the
//! shards are append-only and self-verifying, so they map onto put/get
//! cleanly). Two implementations ship:
//!
//! - [`LocalFs`]: one directory on the local filesystem. This is the
//!   production backend, and it carries the store's durability discipline:
//!   spurious `EINTR` is retried everywhere (via
//!   [`bfu_crawler::retry_interrupted`]), short writes are resumed, and
//!   [`StorageBackend::put`] syncs file data before returning so an atomic
//!   rename can never publish a name whose bytes did not survive.
//! - [`crate::faultfs::FaultFs`]: a deterministic, seeded fault injector
//!   with an explicit crash model, used by the torture suite to prove the
//!   store recovers from a power cut at *every* write/rename/sync boundary.
//!
//! Durability contract the store relies on (and [`LocalFs`] implements with
//! `fsync`; `FaultFs` simulates faithfully):
//!
//! - [`StorageFile::sync_all`] — the file's bytes survive a crash;
//! - [`StorageBackend::sync_dir`] — name operations (create/rename/remove)
//!   performed so far survive a crash;
//! - neither is implied by a plain `write` or by `flush`.

use bfu_crawler::retry_interrupted;
use std::fmt;
use std::fs::{self, File};
use std::io::{self, Read, Write};
use std::path::PathBuf;

/// A conditional write lost its race: the object's current generation was
/// not the one the caller expected. Carried as the payload of an
/// [`io::Error`] so it survives trait boundaries that only speak
/// `io::Result`; recover it with [`as_cas_conflict`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CasConflict {
    /// Generation the caller expected (0 = expected absent).
    pub expected: u64,
    /// Generation actually current (0 = actually absent).
    pub found: u64,
}

impl fmt::Display for CasConflict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "compare-and-swap conflict: expected generation {}, found {}",
            self.expected, self.found
        )
    }
}

impl std::error::Error for CasConflict {}

/// Wrap a [`CasConflict`] as the typed payload of an [`io::Error`].
pub fn cas_conflict_error(expected: u64, found: u64) -> io::Error {
    io::Error::other(CasConflict { expected, found })
}

/// Recover the [`CasConflict`] payload from an error, if that is what it is.
pub fn as_cas_conflict(err: &io::Error) -> Option<CasConflict> {
    err.get_ref()
        .and_then(|e| e.downcast_ref::<CasConflict>())
        .copied()
}

/// An open, append-only object being written.
pub trait StorageFile: fmt::Debug + Send {
    /// Append up to `buf.len()` bytes, returning how many were accepted.
    /// May write short or fail with [`io::ErrorKind::Interrupted`]; callers
    /// use [`write_all_retrying`], which handles both.
    fn write(&mut self, buf: &[u8]) -> io::Result<usize>;

    /// Push userspace buffers to the OS. No durability promise.
    fn flush(&mut self) -> io::Result<()>;

    /// Make the bytes written so far durable across a crash.
    fn sync_all(&mut self) -> io::Result<()>;
}

/// A flat namespace of named byte objects with explicit durability points.
pub trait StorageBackend: fmt::Debug + Send + Sync {
    /// Create (truncating any existing object of the same name) and open
    /// `name` for appending.
    fn create(&self, name: &str) -> io::Result<Box<dyn StorageFile>>;

    /// Read the whole object `name`. [`io::ErrorKind::NotFound`] if absent.
    fn get(&self, name: &str) -> io::Result<Vec<u8>>;

    /// Rename `from` to `to`, atomically replacing any existing `to`.
    fn rename(&self, from: &str, to: &str) -> io::Result<()>;

    /// Remove `name`. [`io::ErrorKind::NotFound`] if absent.
    fn remove(&self, name: &str) -> io::Result<()>;

    /// Whether `name` exists.
    fn exists(&self, name: &str) -> io::Result<bool>;

    /// All object names, in unspecified order.
    fn list(&self) -> io::Result<Vec<String>>;

    /// Make all name operations performed so far durable across a crash
    /// (the parent-directory `fsync` of the POSIX publish idiom).
    fn sync_dir(&self) -> io::Result<()>;

    /// Human-readable location for error messages and provenance.
    fn describe(&self) -> String;

    /// Durable whole-object write: create, write everything, sync the data.
    ///
    /// After `put` returns, the *content* of `name` survives a crash —
    /// though the name itself still needs [`StorageBackend::sync_dir`] (or
    /// a synced rename) to be durably published. This is the tmp-file half
    /// of the atomic-publish idiom, and it is deliberately a provided
    /// method so both backends route it through their own crash-point
    /// instrumented primitives.
    fn put(&self, name: &str, contents: &[u8]) -> io::Result<()> {
        let mut file = retry_interrupted(|| self.create(name))?;
        write_all_retrying(file.as_mut(), contents)?;
        retry_interrupted(|| file.sync_all())
    }

    /// Atomically replace the whole object `name` with `contents`: after
    /// `replace` returns, readers see either the old object or the new one,
    /// never a mixture — even across a crash. This is the publish primitive
    /// behind every manifest/lease-table/provenance write.
    ///
    /// The default is the POSIX idiom (durable put of `name.tmp`, atomic
    /// rename over `name`, directory sync); backends with stronger
    /// whole-object semantics (an object store's versioned put) override it
    /// with a single atomic put.
    fn replace(&self, name: &str, contents: &[u8]) -> io::Result<()> {
        let tmp = format!("{name}.tmp");
        self.put(&tmp, contents)?;
        retry_interrupted(|| self.rename(&tmp, name))?;
        retry_interrupted(|| self.sync_dir())
    }

    /// Backend op accounting, if this backend counts its traffic.
    ///
    /// `None` means "not instrumented" (LocalFs, FaultFs); counting
    /// backends return totals that land in the provenance sidecar's
    /// `"backend"` block.
    fn op_totals(&self) -> Option<bfu_crawler::BackendTotals> {
        None
    }

    /// The current generation of `name`, for conditional writes.
    ///
    /// Generations distinguish versions: two distinct versions of a name
    /// never share one, and 0 is reserved for "absent". Backends without a
    /// version notion report [`io::ErrorKind::Unsupported`] — callers fall
    /// back to unconditional [`StorageBackend::replace`], accepting that a
    /// lone writer needs no fence. [`io::ErrorKind::NotFound`] when the
    /// object does not exist.
    fn generation(&self, _name: &str) -> io::Result<u64> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "backend has no object generations",
        ))
    }

    /// Conditionally replace `name`: the write lands only if the object's
    /// current generation equals `expected` (0 = must be absent). Returns
    /// the new generation on success; a lost race surfaces as a
    /// [`CasConflict`]-carrying error (see [`as_cas_conflict`]); backends
    /// without native compare-and-swap report
    /// [`io::ErrorKind::Unsupported`].
    ///
    /// This is the fencing primitive behind coordinator election: a deposed
    /// coordinator still holds a stale generation, so its next conditional
    /// write is rejected *at the store* — no cooperation required from the
    /// zombie.
    fn replace_if(&self, _name: &str, _expected: u64, _contents: &[u8]) -> io::Result<u64> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "backend has no conditional writes",
        ))
    }
}

/// Write all of `buf`, resuming short writes and retrying `EINTR`.
///
/// The bounded-retry discipline is shared with the crawler's supervision
/// layer: a signal storm (or a fault injector) can delay a write, never
/// wedge it, and any other error surfaces immediately with no bytes
/// silently dropped.
pub fn write_all_retrying(file: &mut dyn StorageFile, mut buf: &[u8]) -> io::Result<()> {
    while !buf.is_empty() {
        let n = retry_interrupted(|| file.write(buf))?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::WriteZero,
                "backend accepted zero bytes",
            ));
        }
        buf = &buf[n.min(buf.len())..];
    }
    Ok(())
}

/// The local-filesystem backend: one directory, one object per file.
pub struct LocalFs {
    root: PathBuf,
}

impl fmt::Debug for LocalFs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LocalFs").field("root", &self.root).finish()
    }
}

impl LocalFs {
    /// Open (creating if absent) the directory `root` as a backend.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<LocalFs> {
        let root = root.into();
        retry_interrupted(|| fs::create_dir_all(&root))?;
        Ok(LocalFs { root })
    }

    /// The backing directory.
    pub fn root(&self) -> &std::path::Path {
        &self.root
    }

    fn path(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }
}

/// A [`StorageFile`] over a real [`File`].
#[derive(Debug)]
struct LocalFile {
    file: File,
}

impl StorageFile for LocalFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.file.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.file.flush()
    }

    fn sync_all(&mut self) -> io::Result<()> {
        self.file.sync_all()
    }
}

impl StorageBackend for LocalFs {
    fn create(&self, name: &str) -> io::Result<Box<dyn StorageFile>> {
        let file = retry_interrupted(|| File::create(self.path(name)))?;
        Ok(Box::new(LocalFile { file }))
    }

    fn get(&self, name: &str) -> io::Result<Vec<u8>> {
        let mut file = retry_interrupted(|| File::open(self.path(name)))?;
        let mut bytes = Vec::new();
        // `read_to_end` retries EINTR internally; the outer retry covers a
        // fresh read if the whole call was interrupted before progress.
        retry_interrupted(|| file.read_to_end(&mut bytes))?;
        Ok(bytes)
    }

    fn rename(&self, from: &str, to: &str) -> io::Result<()> {
        retry_interrupted(|| fs::rename(self.path(from), self.path(to)))
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        retry_interrupted(|| fs::remove_file(self.path(name)))
    }

    fn exists(&self, name: &str) -> io::Result<bool> {
        Ok(self.path(name).exists())
    }

    fn list(&self) -> io::Result<Vec<String>> {
        let mut out = Vec::new();
        for entry in retry_interrupted(|| fs::read_dir(&self.root))? {
            let entry = entry?;
            if let Some(name) = entry.file_name().to_str() {
                out.push(name.to_owned());
            }
        }
        Ok(out)
    }

    fn sync_dir(&self) -> io::Result<()> {
        // Sync the directory inode so create/rename/remove survive a crash.
        // Platforms where directories cannot be opened (non-POSIX) get the
        // weaker pre-existing behaviour rather than an error.
        match retry_interrupted(|| File::open(&self.root)) {
            Ok(dir) => retry_interrupted(|| dir.sync_all()),
            Err(_) => Ok(()),
        }
    }

    fn describe(&self) -> String {
        self.root.display().to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_backend(name: &str) -> LocalFs {
        let dir =
            std::env::temp_dir().join(format!("bfu-backend-test-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        LocalFs::open(dir).expect("open backend")
    }

    #[test]
    fn put_get_roundtrip() {
        let b = temp_backend("roundtrip");
        b.put("alpha.bin", b"hello world").expect("put");
        assert_eq!(b.get("alpha.bin").expect("get"), b"hello world");
        assert!(b.exists("alpha.bin").expect("exists"));
        assert!(!b.exists("beta.bin").expect("exists"));
    }

    #[test]
    fn missing_object_is_not_found() {
        let b = temp_backend("missing");
        let err = b.get("nope").expect_err("absent");
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }

    #[test]
    fn create_write_sync_then_list() {
        let b = temp_backend("create");
        let mut f = b.create("obj").expect("create");
        write_all_retrying(f.as_mut(), b"abc").expect("write");
        f.sync_all().expect("sync");
        drop(f);
        b.sync_dir().expect("sync dir");
        assert_eq!(b.list().expect("list"), vec!["obj".to_string()]);
        assert_eq!(b.get("obj").expect("get"), b"abc");
    }

    #[test]
    fn rename_replaces_and_remove_deletes() {
        let b = temp_backend("rename");
        b.put("a", b"one").expect("put a");
        b.put("b", b"two").expect("put b");
        b.rename("a", "b").expect("rename");
        assert_eq!(b.get("b").expect("get"), b"one");
        assert!(!b.exists("a").expect("exists"));
        b.remove("b").expect("remove");
        assert!(!b.exists("b").expect("exists"));
    }

    #[test]
    fn write_all_retrying_resumes_short_writes() {
        #[derive(Debug)]
        struct Dribble {
            bytes: Vec<u8>,
            interrupts: u32,
        }
        impl StorageFile for Dribble {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                if self.interrupts > 0 {
                    self.interrupts -= 1;
                    return Err(io::Error::new(io::ErrorKind::Interrupted, "eintr"));
                }
                let n = buf.len().min(2); // accept at most two bytes per call
                self.bytes.extend_from_slice(&buf[..n]);
                Ok(n)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
            fn sync_all(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut d = Dribble {
            bytes: Vec::new(),
            interrupts: 3,
        };
        write_all_retrying(&mut d, b"durable payload").expect("write all");
        assert_eq!(d.bytes, b"durable payload");
    }
}
