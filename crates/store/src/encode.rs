//! The per-record binary encoding of one [`SiteMeasurement`].
//!
//! Compact, fixed little-endian layout (shard format version 2):
//!
//! ```text
//! u32  site index
//! str  domain                      (u32 length + UTF-8 bytes)
//! f64  traffic weight              (IEEE-754 bits)
//! u8   outcome tag                 0=Completed 1=Failed 2=Panicked
//! [u8 class, u16 extra]            only when outcome == Failed
//! u8   profile count
//! per profile:
//!   u8   profile tag               BrowserProfile::tag
//!   u32  round count
//!   per round:
//!     u32 round | u32 pages | u64 interaction_ms
//!     u8 error class (0xFF = none) | u16 error extra
//!     u32 attempts | u32 retries | u64 backoff_ms
//!     u32 budget trips | u32 heap trips | u32 depth trips
//!     u32 log entries | per entry: u32 feature | u64 count
//! ```
//!
//! Every field a [`bfu_crawler::Dataset::fingerprint`] hashes round-trips
//! exactly, so `decode(encode(m))` is fingerprint-identical to `m`.

use bfu_browser::FeatureLog;
use bfu_crawler::{BrowserProfile, CrawlError, RoundMeasurement, SiteMeasurement, SiteOutcome};
use bfu_util::{ByteReader, ByteWriter, CodecError};
use bfu_webgen::SiteId;
use bfu_webidl::FeatureId;

const OUTCOME_COMPLETED: u8 = 0;
const OUTCOME_FAILED: u8 = 1;
const OUTCOME_PANICKED: u8 = 2;
const ERROR_NONE: u8 = 0xFF;

/// Encode one site measurement to bytes.
pub fn encode_site(m: &SiteMeasurement) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u32(m.site.raw());
    w.put_str(&m.domain);
    w.put_f64(m.traffic_weight);
    match m.outcome {
        SiteOutcome::Completed => w.put_u8(OUTCOME_COMPLETED),
        SiteOutcome::Failed(e) => {
            w.put_u8(OUTCOME_FAILED);
            let (class, extra) = e.to_parts();
            w.put_u8(class);
            w.put_u16(extra);
        }
        SiteOutcome::Panicked => w.put_u8(OUTCOME_PANICKED),
    }
    w.put_u8(m.rounds.len() as u8);
    for (profile, rounds) in &m.rounds {
        w.put_u8(profile.tag());
        w.put_u32(rounds.len() as u32);
        for r in rounds {
            w.put_u32(r.round);
            w.put_u32(r.pages_visited);
            w.put_u64(r.interaction_ms);
            match r.error {
                None => {
                    w.put_u8(ERROR_NONE);
                    w.put_u16(0);
                }
                Some(e) => {
                    let (class, extra) = e.to_parts();
                    w.put_u8(class);
                    w.put_u16(extra);
                }
            }
            w.put_u32(r.attempts);
            w.put_u32(r.retries);
            w.put_u64(r.backoff_ms);
            w.put_u32(r.script_budget_errors);
            w.put_u32(r.script_heap_errors);
            w.put_u32(r.script_depth_errors);
            let records = r.log.records();
            w.put_u32(records.len() as u32);
            for rec in &records {
                w.put_u32(rec.feature.raw());
                w.put_u64(rec.count);
            }
        }
    }
    w.into_bytes()
}

fn decode_error(class: u8, extra: u16) -> Result<CrawlError, CodecError> {
    CrawlError::from_parts(class, extra).ok_or(CodecError::BadTag {
        what: "crawl error class",
        value: u64::from(class),
    })
}

/// Decode one site measurement; any structural damage surfaces as an error.
pub fn decode_site(bytes: &[u8]) -> Result<SiteMeasurement, CodecError> {
    let mut r = ByteReader::new(bytes);
    let site = SiteId::new(r.get_u32()?);
    let domain = r.get_str()?.to_owned();
    let traffic_weight = r.get_f64()?;
    let outcome = match r.get_u8()? {
        OUTCOME_COMPLETED => SiteOutcome::Completed,
        OUTCOME_FAILED => {
            let class = r.get_u8()?;
            let extra = r.get_u16()?;
            SiteOutcome::Failed(decode_error(class, extra)?)
        }
        OUTCOME_PANICKED => SiteOutcome::Panicked,
        other => {
            return Err(CodecError::BadTag {
                what: "site outcome",
                value: u64::from(other),
            })
        }
    };
    let n_profiles = r.get_u8()?;
    let mut rounds = Vec::with_capacity(n_profiles as usize);
    for _ in 0..n_profiles {
        let tag = r.get_u8()?;
        let profile = BrowserProfile::from_tag(tag).ok_or(CodecError::BadTag {
            what: "browser profile",
            value: u64::from(tag),
        })?;
        let n_rounds = r.get_u32()?;
        if n_rounds as usize > bytes.len() {
            return Err(CodecError::BadLength {
                what: "round count",
                len: u64::from(n_rounds),
            });
        }
        let mut per_round = Vec::with_capacity(n_rounds as usize);
        for _ in 0..n_rounds {
            let round = r.get_u32()?;
            let pages_visited = r.get_u32()?;
            let interaction_ms = r.get_u64()?;
            let class = r.get_u8()?;
            let extra = r.get_u16()?;
            let error = if class == ERROR_NONE {
                None
            } else {
                Some(decode_error(class, extra)?)
            };
            let attempts = r.get_u32()?;
            let retries = r.get_u32()?;
            let backoff_ms = r.get_u64()?;
            let script_budget_errors = r.get_u32()?;
            let script_heap_errors = r.get_u32()?;
            let script_depth_errors = r.get_u32()?;
            let n_log = r.get_u32()?;
            if n_log as usize > bytes.len() {
                return Err(CodecError::BadLength {
                    what: "log entry count",
                    len: u64::from(n_log),
                });
            }
            let mut log = FeatureLog::new();
            for _ in 0..n_log {
                let feature = FeatureId::new(r.get_u32()?);
                let count = r.get_u64()?;
                log.record_n(feature, count);
            }
            per_round.push(RoundMeasurement {
                round,
                log,
                pages_visited,
                interaction_ms,
                error,
                attempts,
                retries,
                backoff_ms,
                script_budget_errors,
                script_heap_errors,
                script_depth_errors,
            });
        }
        rounds.push((profile, per_round));
    }
    if !r.is_empty() {
        return Err(CodecError::BadLength {
            what: "trailing bytes",
            len: r.remaining() as u64,
        });
    }
    Ok(SiteMeasurement {
        site,
        domain,
        traffic_weight,
        outcome,
        rounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SiteMeasurement {
        let mut log = FeatureLog::new();
        log.record_n(FeatureId::new(3), 7);
        log.record_n(FeatureId::new(900), 1);
        let round = RoundMeasurement {
            round: 1,
            log,
            pages_visited: 13,
            interaction_ms: 390_000,
            error: None,
            attempts: 14,
            retries: 1,
            backoff_ms: 250,
            script_budget_errors: 2,
            script_heap_errors: 1,
            script_depth_errors: 1,
        };
        let failed = RoundMeasurement {
            error: Some(CrawlError::HttpError(503)),
            attempts: 3,
            retries: 2,
            backoff_ms: 750,
            ..RoundMeasurement::empty(0)
        };
        SiteMeasurement {
            site: SiteId::new(42),
            domain: "rank42.example.test".into(),
            traffic_weight: 0.00123,
            outcome: SiteOutcome::Completed,
            rounds: vec![
                (BrowserProfile::Default, vec![failed, round]),
                (BrowserProfile::Blocking, vec![RoundMeasurement::empty(0)]),
            ],
        }
    }

    fn fingerprint_of(m: SiteMeasurement) -> u64 {
        bfu_crawler::Dataset {
            profiles: vec![BrowserProfile::Default, BrowserProfile::Blocking],
            rounds_per_profile: 2,
            sites: vec![m],
            cache: bfu_crawler::CacheTotals::default(),
        }
        .fingerprint()
    }

    #[test]
    fn roundtrip_preserves_fingerprint() {
        let m = sample();
        let decoded = decode_site(&encode_site(&m)).expect("clean decode");
        assert_eq!(decoded.site, m.site);
        assert_eq!(decoded.domain, m.domain);
        assert_eq!(decoded.outcome, m.outcome);
        assert_eq!(fingerprint_of(decoded), fingerprint_of(m));
    }

    #[test]
    fn failed_outcome_roundtrips_status() {
        let mut m = sample();
        m.outcome = SiteOutcome::Failed(CrawlError::HttpError(429));
        let decoded = decode_site(&encode_site(&m)).expect("clean decode");
        assert_eq!(
            decoded.outcome,
            SiteOutcome::Failed(CrawlError::HttpError(429))
        );
    }

    #[test]
    fn truncated_record_is_an_error() {
        let bytes = encode_site(&sample());
        for cut in [1, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_site(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn trailing_garbage_is_an_error() {
        let mut bytes = encode_site(&sample());
        bytes.extend_from_slice(&[0, 1, 2]);
        assert!(decode_site(&bytes).is_err());
    }

    #[test]
    fn bad_profile_tag_is_an_error() {
        let m = sample();
        let mut bytes = encode_site(&m);
        // The profile tag byte follows site(4) + domain(4+len) + weight(8) +
        // outcome(1) + profile count(1).
        let tag_ix = 4 + 4 + m.domain.len() + 8 + 1 + 1;
        bytes[tag_ix] = 0x7E;
        assert!(decode_site(&bytes).is_err());
    }
}
