//! `FaultFs`: a deterministic, seeded, fault-injecting storage backend with
//! an explicit crash model.
//!
//! The torture suite needs to answer one question for *every* I/O boundary
//! in the store: "if the power dies exactly here, does scrub + resume still
//! reconstruct the uninterrupted dataset?" Answering it by luck (kill -9 in
//! a loop) finds the easy windows; answering it exhaustively needs a
//! filesystem whose crashes are programmable. `FaultFs` is that filesystem:
//! an in-memory object store that models exactly the durability semantics a
//! POSIX directory gives a careful writer, nothing more:
//!
//! - **file data** is dirty until [`StorageFile::sync_all`]; a crash keeps
//!   the durable prefix plus a *seeded* amount of the dirty tail (a torn
//!   write — the OS may have flushed any prefix on its own);
//! - **namespace operations** (create/rename/remove) are pending until
//!   [`StorageBackend::sync_dir`]; a crash applies a seeded *prefix* of the
//!   pending operations, in order — the metadata journal commits in order,
//!   but how far it got is the crash's choice;
//! - neither `write` nor `flush` promises anything.
//!
//! Every backend operation is a named **crash point**, counted globally.
//! [`StoreFaultPlan::crash_at`] marks the k-th operation as "power cut
//! here": the operation takes partial effect (writes tear), the crash
//! semantics above are applied, and every subsequent operation fails with a
//! [`power cut error`](FaultFs::is_crash) until [`FaultFs::power_cycle`] —
//! after which the backend serves the survivor state, fault-free, for
//! recovery. [`FaultFs::op_trace`] enumerates the labels of every operation
//! a workload performed, which is how the torture harness sweeps all of
//! them.
//!
//! Transient faults ride the same seeded sampler ([`bfu_util::fault_sample`]
//! — shared with the network fault plan): spurious `EINTR` on any
//! operation, `ENOSPC` at a chosen write, and deterministic short writes.

use crate::backend::{StorageBackend, StorageFile};
use bfu_util::{fault_choice, fault_fires};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::io;
use std::sync::{Arc, Mutex, MutexGuard};

const SALT_EINTR: u64 = 0xE14;
const SALT_TEAR: u64 = 0x7EA2;
const SALT_FILE: u64 = 0xF11E;
const SALT_NS: u64 = 0x45;

/// What faults a [`FaultFs`] injects, and where.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StoreFaultPlan {
    /// Seed for all seeded decisions (torn-write lengths, EINTR schedule).
    pub seed: u64,
    /// Simulate a power cut at this global operation index.
    pub crash_at: Option<u64>,
    /// Probability that any single operation fails with `EINTR` first.
    pub eintr_chance: f64,
    /// Fail the write operation at this global index with `ENOSPC`.
    pub enospc_at: Option<u64>,
    /// Deterministically accept only half of every multi-byte write.
    pub short_writes: bool,
}

impl StoreFaultPlan {
    /// A plan injecting nothing: `FaultFs` behaves as a perfect store.
    pub fn none() -> StoreFaultPlan {
        StoreFaultPlan::default()
    }

    /// Builder: set the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder: cut power at operation `ix`.
    pub fn with_crash_at(mut self, ix: u64) -> Self {
        self.crash_at = Some(ix);
        self
    }

    /// Builder: set the spurious-`EINTR` probability.
    pub fn with_eintr_chance(mut self, chance: f64) -> Self {
        self.eintr_chance = chance.clamp(0.0, 1.0);
        self
    }

    /// Builder: fail the write at operation `ix` with `ENOSPC`.
    pub fn with_enospc_at(mut self, ix: u64) -> Self {
        self.enospc_at = Some(ix);
        self
    }

    /// Builder: enable deterministic short writes.
    pub fn with_short_writes(mut self) -> Self {
        self.short_writes = true;
        self
    }
}

/// Marker payload inside the simulated power-cut [`io::Error`].
#[derive(Debug)]
struct PowerCut {
    label: String,
}

impl fmt::Display for PowerCut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "simulated power cut at {}", self.label)
    }
}

impl Error for PowerCut {}

fn power_cut_error(label: &str) -> io::Error {
    io::Error::other(PowerCut {
        label: label.to_owned(),
    })
}

/// One in-memory file: full contents plus how much of them is durable.
#[derive(Debug, Default, Clone)]
struct MemFile {
    data: Vec<u8>,
    durable_len: usize,
}

/// A namespace mutation pending until the next `sync_dir`.
#[derive(Debug, Clone)]
enum NsOp {
    Link(String, usize),
    Unlink(String),
    Rename(String, String),
}

fn apply_ns(names: &mut BTreeMap<String, usize>, op: &NsOp) {
    match op {
        NsOp::Link(name, id) => {
            names.insert(name.clone(), *id);
        }
        NsOp::Unlink(name) => {
            names.remove(name);
        }
        NsOp::Rename(from, to) => {
            if let Some(id) = names.remove(from) {
                names.insert(to.clone(), id);
            }
        }
    }
}

#[derive(Debug, Default)]
struct MemState {
    files: Vec<MemFile>,
    /// Current (page-cache) view of the namespace.
    names: BTreeMap<String, usize>,
    /// Namespace as the journal last committed it.
    durable_names: BTreeMap<String, usize>,
    /// Ordered namespace ops since the last `sync_dir`.
    pending_ns: Vec<NsOp>,
    /// Global operation counter — the crash-point coordinate.
    ops: u64,
    /// Labels of every operation performed, in order.
    trace: Vec<String>,
    /// Whether the simulated machine is off.
    crashed: bool,
    /// Whether fault injection is still active (cleared by `power_cycle`).
    armed: bool,
}

enum Decision {
    Proceed,
    /// Power cut *during* this operation; `u64` is its index (for seeding
    /// the torn-write length).
    Crash(u64),
}

#[derive(PartialEq, Eq, Clone, Copy)]
enum OpKind {
    Read,
    Write,
}

/// The deterministic fault-injecting in-memory backend.
#[derive(Debug)]
pub struct FaultFs {
    state: Arc<Mutex<MemState>>,
    plan: StoreFaultPlan,
}

impl FaultFs {
    /// An empty store governed by `plan`.
    pub fn new(plan: StoreFaultPlan) -> FaultFs {
        FaultFs {
            state: Arc::new(Mutex::new(MemState {
                armed: true,
                ..MemState::default()
            })),
            plan,
        }
    }

    /// Whether `err` is this module's simulated power cut.
    pub fn is_crash(err: &io::Error) -> bool {
        err.get_ref().is_some_and(|inner| inner.is::<PowerCut>())
    }

    /// Turn the machine back on after a crash: the durable survivor state
    /// becomes the visible state and all further fault injection is
    /// disarmed, so recovery runs against an honest, quiet disk.
    pub fn power_cycle(&self) {
        let mut st = self.lock();
        st.crashed = false;
        st.armed = false;
    }

    /// Total operations performed so far.
    pub fn ops(&self) -> u64 {
        self.lock().ops
    }

    /// The labels of every operation performed, in order. Index `k` in this
    /// trace is exactly the operation `StoreFaultPlan::crash_at(k)` kills.
    pub fn op_trace(&self) -> Vec<String> {
        self.lock().trace.clone()
    }

    /// Names currently visible (for assertions in tests).
    pub fn visible_names(&self) -> Vec<String> {
        self.lock().names.keys().cloned().collect()
    }

    fn lock(&self) -> MutexGuard<'_, MemState> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }
}

/// Gate one operation: count it, maybe inject a transient fault, maybe
/// start the crash. Every fault decision is a pure function of
/// `(plan.seed, label, op index)`.
fn pre_op(
    st: &mut MemState,
    plan: &StoreFaultPlan,
    label: &str,
    kind: OpKind,
) -> io::Result<Decision> {
    if st.crashed {
        return Err(power_cut_error(label));
    }
    let ix = st.ops;
    st.ops += 1;
    st.trace.push(label.to_owned());
    if !st.armed {
        return Ok(Decision::Proceed);
    }
    let crashing = plan.crash_at == Some(ix);
    // A transient EINTR never shadows the crash point itself, so the k-th
    // operation of an enumeration run is exactly the one the crash kills.
    if !crashing && fault_fires(plan.seed, 0, label, ix, SALT_EINTR, plan.eintr_chance) {
        return Err(io::Error::new(
            io::ErrorKind::Interrupted,
            format!("injected EINTR at {label}"),
        ));
    }
    if !crashing && kind == OpKind::Write && plan.enospc_at == Some(ix) {
        return Err(io::Error::other(format!("injected ENOSPC at {label}")));
    }
    if crashing {
        return Ok(Decision::Crash(ix));
    }
    Ok(Decision::Proceed)
}

/// Apply crash semantics: tear dirty file tails, commit a prefix of the
/// pending namespace journal, and power the machine off.
fn crash(st: &mut MemState, seed: u64) {
    for (id, file) in st.files.iter_mut().enumerate() {
        let dirty = file.data.len() - file.durable_len;
        let keep = fault_choice(seed, 1, "crash:file", id as u64, SALT_FILE, dirty);
        file.data.truncate(file.durable_len + keep);
        file.durable_len = file.data.len();
    }
    let committed = fault_choice(seed, 1, "crash:ns", st.ops, SALT_NS, st.pending_ns.len());
    let pending = std::mem::take(&mut st.pending_ns);
    for op in &pending[..committed] {
        apply_ns(&mut st.durable_names, op);
    }
    st.names = st.durable_names.clone();
    st.crashed = true;
}

/// An open handle into a [`FaultFs`] object.
#[derive(Debug)]
pub struct FaultFile {
    state: Arc<Mutex<MemState>>,
    plan: StoreFaultPlan,
    id: usize,
    name: String,
}

impl StorageFile for FaultFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let mut st = self.state.lock().unwrap_or_else(|p| p.into_inner());
        let label = format!("write:{}", self.name);
        match pre_op(&mut st, &self.plan, &label, OpKind::Write)? {
            Decision::Proceed => {
                let n = if self.plan.short_writes && st.armed && buf.len() > 1 {
                    buf.len() / 2
                } else {
                    buf.len()
                };
                let file = &mut st.files[self.id];
                file.data.extend_from_slice(&buf[..n]);
                Ok(n)
            }
            Decision::Crash(ix) => {
                // The torn write: a seeded prefix of this buffer made it to
                // the (dirty) page cache before the lights went out.
                let keep = fault_choice(self.plan.seed, 0, &label, ix, SALT_TEAR, buf.len());
                let file = &mut st.files[self.id];
                file.data.extend_from_slice(&buf[..keep]);
                crash(&mut st, self.plan.seed);
                Err(power_cut_error(&label))
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        let mut st = self.state.lock().unwrap_or_else(|p| p.into_inner());
        let label = format!("flush:{}", self.name);
        match pre_op(&mut st, &self.plan, &label, OpKind::Write)? {
            Decision::Proceed => Ok(()), // flush promises nothing
            Decision::Crash(_) => {
                crash(&mut st, self.plan.seed);
                Err(power_cut_error(&label))
            }
        }
    }

    fn sync_all(&mut self) -> io::Result<()> {
        let mut st = self.state.lock().unwrap_or_else(|p| p.into_inner());
        let label = format!("sync:{}", self.name);
        match pre_op(&mut st, &self.plan, &label, OpKind::Write)? {
            Decision::Proceed => {
                let file = &mut st.files[self.id];
                file.durable_len = file.data.len();
                Ok(())
            }
            Decision::Crash(_) => {
                // Power died before the sync took effect.
                crash(&mut st, self.plan.seed);
                Err(power_cut_error(&label))
            }
        }
    }
}

impl StorageBackend for FaultFs {
    fn create(&self, name: &str) -> io::Result<Box<dyn StorageFile>> {
        let mut st = self.lock();
        let label = format!("create:{name}");
        match pre_op(&mut st, &self.plan, &label, OpKind::Write)? {
            Decision::Proceed => {
                st.files.push(MemFile::default());
                let id = st.files.len() - 1;
                st.names.insert(name.to_owned(), id);
                st.pending_ns.push(NsOp::Link(name.to_owned(), id));
                Ok(Box::new(FaultFile {
                    state: Arc::clone(&self.state),
                    plan: self.plan.clone(),
                    id,
                    name: name.to_owned(),
                }))
            }
            Decision::Crash(_) => {
                crash(&mut st, self.plan.seed);
                Err(power_cut_error(&label))
            }
        }
    }

    fn get(&self, name: &str) -> io::Result<Vec<u8>> {
        let mut st = self.lock();
        let label = format!("get:{name}");
        match pre_op(&mut st, &self.plan, &label, OpKind::Read)? {
            Decision::Proceed => match st.names.get(name) {
                Some(&id) => Ok(st.files[id].data.clone()),
                None => Err(io::Error::new(
                    io::ErrorKind::NotFound,
                    format!("no object {name}"),
                )),
            },
            Decision::Crash(_) => {
                crash(&mut st, self.plan.seed);
                Err(power_cut_error(&label))
            }
        }
    }

    fn rename(&self, from: &str, to: &str) -> io::Result<()> {
        let mut st = self.lock();
        let label = format!("rename:{from}->{to}");
        match pre_op(&mut st, &self.plan, &label, OpKind::Write)? {
            Decision::Proceed => {
                if !st.names.contains_key(from) {
                    return Err(io::Error::new(
                        io::ErrorKind::NotFound,
                        format!("no object {from}"),
                    ));
                }
                let op = NsOp::Rename(from.to_owned(), to.to_owned());
                apply_ns(&mut st.names, &op);
                st.pending_ns.push(op);
                Ok(())
            }
            Decision::Crash(_) => {
                // Power died before the rename reached the journal.
                crash(&mut st, self.plan.seed);
                Err(power_cut_error(&label))
            }
        }
    }

    fn remove(&self, name: &str) -> io::Result<()> {
        let mut st = self.lock();
        let label = format!("remove:{name}");
        match pre_op(&mut st, &self.plan, &label, OpKind::Write)? {
            Decision::Proceed => {
                if !st.names.contains_key(name) {
                    return Err(io::Error::new(
                        io::ErrorKind::NotFound,
                        format!("no object {name}"),
                    ));
                }
                let op = NsOp::Unlink(name.to_owned());
                apply_ns(&mut st.names, &op);
                st.pending_ns.push(op);
                Ok(())
            }
            Decision::Crash(_) => {
                crash(&mut st, self.plan.seed);
                Err(power_cut_error(&label))
            }
        }
    }

    fn exists(&self, name: &str) -> io::Result<bool> {
        let mut st = self.lock();
        let label = format!("exists:{name}");
        match pre_op(&mut st, &self.plan, &label, OpKind::Read)? {
            Decision::Proceed => Ok(st.names.contains_key(name)),
            Decision::Crash(_) => {
                crash(&mut st, self.plan.seed);
                Err(power_cut_error(&label))
            }
        }
    }

    fn list(&self) -> io::Result<Vec<String>> {
        let mut st = self.lock();
        match pre_op(&mut st, &self.plan, "list", OpKind::Read)? {
            Decision::Proceed => Ok(st.names.keys().cloned().collect()),
            Decision::Crash(_) => {
                crash(&mut st, self.plan.seed);
                Err(power_cut_error("list"))
            }
        }
    }

    fn sync_dir(&self) -> io::Result<()> {
        let mut st = self.lock();
        match pre_op(&mut st, &self.plan, "syncdir", OpKind::Write)? {
            Decision::Proceed => {
                let pending = std::mem::take(&mut st.pending_ns);
                for op in &pending {
                    apply_ns(&mut st.durable_names, op);
                }
                Ok(())
            }
            Decision::Crash(_) => {
                crash(&mut st, self.plan.seed);
                Err(power_cut_error("syncdir"))
            }
        }
    }

    fn describe(&self) -> String {
        format!("faultfs(seed={})", self.plan.seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::write_all_retrying;
    use bfu_crawler::retry_interrupted;

    fn durable_write(fs: &FaultFs, name: &str, bytes: &[u8]) {
        // Same EINTR discipline as the real store paths.
        let mut f = retry_interrupted(|| fs.create(name)).expect("create");
        write_all_retrying(f.as_mut(), bytes).expect("write");
        retry_interrupted(|| f.sync_all()).expect("sync");
        drop(f);
        retry_interrupted(|| fs.sync_dir()).expect("sync dir");
    }

    #[test]
    fn fault_free_roundtrip() {
        let fs = FaultFs::new(StoreFaultPlan::none());
        durable_write(&fs, "a", b"hello");
        assert_eq!(fs.get("a").expect("get"), b"hello");
        assert_eq!(fs.list().expect("list"), vec!["a".to_string()]);
        assert!(fs.ops() > 0);
        assert_eq!(fs.op_trace().len() as u64, fs.ops());
    }

    #[test]
    fn crash_discards_unsynced_data_deterministically() {
        // Write a durable object, then dirty data, then crash at a chosen
        // later op. Recovery must see the durable bytes plus some seeded
        // prefix of the dirty tail — identically across runs.
        let run = |seed: u64| -> Vec<u8> {
            // Ops: create=0 write=1 sync=2 syncdir=3 write(dirty)=4 get(crash)=5
            let plan = StoreFaultPlan::none().with_seed(seed).with_crash_at(5);
            let fs = FaultFs::new(plan);
            let mut f = fs.create("a").expect("create");
            write_all_retrying(f.as_mut(), b"durable").expect("write");
            f.sync_all().expect("sync");
            fs.sync_dir().expect("sync dir");
            write_all_retrying(f.as_mut(), b"-dirty-tail").expect("dirty write");
            let err = fs.get("a").expect_err("crash fires");
            assert!(FaultFs::is_crash(&err));
            fs.power_cycle();
            fs.get("a").expect("durable object survives")
        };
        let a = run(11);
        let b = run(11);
        assert_eq!(a, b, "crash outcome is a pure function of the seed");
        assert!(a.starts_with(b"durable"), "durable prefix always survives");
        assert!(a.len() <= b"durable-dirty-tail".len());
    }

    #[test]
    fn crash_before_sync_dir_can_lose_the_name() {
        // Create + write + sync the data but crash at the dir sync: the
        // content was durable but the name was not; whether it survives is
        // the journal's (seeded) choice. With an empty prior namespace and
        // a seed chosen so the journal commits nothing, the name vanishes.
        for seed in 0..64 {
            let fs = FaultFs::new(StoreFaultPlan::none().with_seed(seed).with_crash_at(3));
            let mut f = fs.create("a").expect("create");
            write_all_retrying(f.as_mut(), b"x").expect("write");
            f.sync_all().expect("sync");
            let err = fs.sync_dir().expect_err("crash fires");
            assert!(FaultFs::is_crash(&err));
            fs.power_cycle();
            if fs.visible_names().is_empty() {
                return; // found a seed where the create never committed
            }
        }
        panic!("no seed lost the uncommitted name — journal prefix is broken");
    }

    #[test]
    fn operations_after_crash_fail_until_power_cycle() {
        let fs = FaultFs::new(StoreFaultPlan::none().with_crash_at(0));
        let err = fs.list().expect_err("crash");
        assert!(FaultFs::is_crash(&err));
        let err = fs.get("a").expect_err("still dead");
        assert!(FaultFs::is_crash(&err));
        fs.power_cycle();
        assert!(fs.list().expect("back on").is_empty());
    }

    #[test]
    fn eintr_is_transient_and_beaten_by_retry() {
        let plan = StoreFaultPlan::none().with_seed(3).with_eintr_chance(0.4);
        let fs = FaultFs::new(plan);
        for i in 0..50 {
            durable_write(&fs, &format!("obj-{i}"), b"payload");
        }
        for i in 0..50 {
            let name = format!("obj-{i}");
            let bytes = retry_interrupted(|| fs.get(&name)).expect("get");
            assert_eq!(bytes, b"payload");
        }
    }

    #[test]
    fn short_writes_still_land_every_byte() {
        let fs = FaultFs::new(StoreFaultPlan::none().with_short_writes());
        durable_write(&fs, "a", b"a long enough payload to split many times");
        assert_eq!(
            fs.get("a").expect("get"),
            b"a long enough payload to split many times"
        );
    }

    #[test]
    fn enospc_fails_the_write_cleanly() {
        let fs = FaultFs::new(StoreFaultPlan::none().with_enospc_at(1));
        let mut f = fs.create("a").expect("create");
        let err = f.write(b"xy").expect_err("enospc");
        assert!(!FaultFs::is_crash(&err), "ENOSPC is an error, not a crash");
        assert!(err.to_string().contains("ENOSPC"));
        // The store is still alive afterwards.
        durable_write(&fs, "b", b"fine");
        assert_eq!(fs.get("b").expect("get"), b"fine");
    }

    #[test]
    fn rename_is_atomic_under_crash() {
        // Publish v1 durably, then write v2 to a tmp and rename. Crash at
        // every op of the publish sequence: the reader must always see v1
        // or v2 in full, never a mix and never nothing.
        let fs0 = FaultFs::new(StoreFaultPlan::none());
        durable_write(&fs0, "obj", b"v1");
        let baseline_ops = fs0.ops();
        // Publish sequence ops: create(tmp), write, sync, rename, syncdir.
        for k in 0..5 {
            for seed in [1, 2, 3] {
                let plan = StoreFaultPlan::none()
                    .with_seed(seed)
                    .with_crash_at(baseline_ops + k);
                let fs = FaultFs::new(plan);
                durable_write(&fs, "obj", b"v1");
                let publish = || -> io::Result<()> {
                    let mut f = fs.create("obj.tmp")?;
                    write_all_retrying(f.as_mut(), b"v2")?;
                    f.sync_all()?;
                    drop(f);
                    fs.rename("obj.tmp", "obj")?;
                    fs.sync_dir()
                };
                let err = publish().expect_err("crash fires");
                assert!(FaultFs::is_crash(&err));
                fs.power_cycle();
                let seen = fs.get("obj").expect("obj always present");
                assert!(
                    seen == b"v1" || seen == b"v2",
                    "torn object at op {k} seed {seed}: {seen:?}"
                );
            }
        }
    }
}
