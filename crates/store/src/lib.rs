//! Crash-safe on-disk dataset shards for survey results.
//!
//! The paper's crawl is the expensive step: measuring feature usage across
//! the Alexa 10k under multiple blocking profiles takes orders of magnitude
//! longer than any analysis over the result. This crate makes that cost
//! pay-once: survey results stream to an append-only, sharded on-disk format
//! as the crawl progresses, so an interrupted crawl resumes from where it
//! died, and every table and figure can be regenerated from a stored dataset
//! with zero crawl activity.
//!
//! The format is deliberately boring:
//!
//! - [`backend`]: the [`backend::StorageBackend`] trait every byte of store
//!   I/O goes through — [`backend::LocalFs`] in production (with `EINTR`
//!   retry, short-write resumption, and fsync-before-publish), and
//! - [`faultfs`]: a deterministic, seeded fault-injecting backend with an
//!   explicit crash model, so the torture suite can kill the store at every
//!   I/O boundary and prove recovery.
//! - [`shard`]: fixed-capacity shard files of length-prefixed, per-record
//!   checksummed site measurements, sealed with a chained footer checksum
//!   and an `fsync`. Writers flush per record; readers recover every intact
//!   record from damaged files and report (never fail on) the rest.
//! - [`encode`]: the compact little-endian record encoding of one
//!   [`bfu_crawler::SiteMeasurement`], fingerprint-exact on round-trip.
//! - [`manifest`]: a small durably-and-atomically rewritten text file keyed
//!   by the survey fingerprint — the identity check that stops two different
//!   configurations from mixing in one directory.
//! - [`scrub`]: the verify/quarantine/compact pass that repairs accumulated
//!   damage (corrupt shards move aside, never deleted; fragments compact
//!   into full shards) and reports what it did in the provenance sidecar.
//! - [`store`]: the [`DatasetStore`] tying those together, plus the two
//!   consumers the store exists for: [`resume_survey`] (scrub, then crawl
//!   only the sites the store is missing — lost sites self-heal) and
//!   [`load_survey_dataset`] (memoized analysis, no crawling).
//!
//! Determinism is what makes resumption sound: per-site measurements depend
//! only on the survey fingerprint and the site — a tested invariant of the
//! crawler — so a dataset assembled from stored and fresh halves is
//! fingerprint-identical to an uninterrupted run's.

// The store guards the only copy of an expensive crawl: an unwrap/expect
// outside tests is a latent panic standing between a survey and its data.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod backend;
pub mod encode;
pub mod faultfs;
pub mod manifest;
pub mod scrub;
pub mod shard;
pub mod store;

pub use backend::{
    as_cas_conflict, cas_conflict_error, write_all_retrying, CasConflict, LocalFs, StorageBackend,
    StorageFile,
};
pub use encode::{decode_site, encode_site};
pub use faultfs::{FaultFs, StoreFaultPlan};
pub use manifest::{Manifest, MANIFEST_NAME};
pub use scrub::{default_scrub_threads, ScrubReport};
pub use shard::{read_shard, SealedShard, ShardContents, ShardWriter};
pub use store::{
    load_survey_dataset, load_survey_dataset_on, resume_survey, resume_survey_on, DatasetStore,
    LoadOutcome, ReadReport, ResumeOutcome, StoreError, StoreMeta, StoreScan,
    DEFAULT_SHARD_CAPACITY, PROVENANCE_NAME,
};
