//! Crash-safe on-disk dataset shards for survey results.
//!
//! The paper's crawl is the expensive step: measuring feature usage across
//! the Alexa 10k under multiple blocking profiles takes orders of magnitude
//! longer than any analysis over the result. This crate makes that cost
//! pay-once: survey results stream to an append-only, sharded on-disk format
//! as the crawl progresses, so an interrupted crawl resumes from where it
//! died, and every table and figure can be regenerated from a stored dataset
//! with zero crawl activity.
//!
//! The format is deliberately boring:
//!
//! - [`shard`]: fixed-capacity shard files of length-prefixed, per-record
//!   checksummed site measurements, sealed with a chained footer checksum.
//!   Writers flush per record; readers recover every intact record from
//!   damaged files and report (never fail on) the rest.
//! - [`encode`]: the compact little-endian record encoding of one
//!   [`bfu_crawler::SiteMeasurement`], fingerprint-exact on round-trip.
//! - [`manifest`]: a small atomically-rewritten text file keyed by the
//!   survey fingerprint — the identity check that stops two different
//!   configurations from mixing in one directory.
//! - [`store`]: the [`DatasetStore`] tying those together, plus the two
//!   consumers the store exists for: [`resume_survey`] (crawl only the
//!   sites missing from the store) and [`load_survey_dataset`] (memoized
//!   analysis, no crawling).
//!
//! Determinism is what makes resumption sound: per-site measurements depend
//! only on the survey fingerprint and the site — a tested invariant of the
//! crawler — so a dataset assembled from stored and fresh halves is
//! fingerprint-identical to an uninterrupted run's.

pub mod encode;
pub mod manifest;
pub mod shard;
pub mod store;

pub use encode::{decode_site, encode_site};
pub use manifest::{Manifest, MANIFEST_NAME};
pub use shard::{read_shard, SealedShard, ShardContents, ShardWriter};
pub use store::{
    load_survey_dataset, resume_survey, DatasetStore, LoadOutcome, ReadReport, ResumeOutcome,
    StoreError, StoreMeta, StoreScan, DEFAULT_SHARD_CAPACITY, PROVENANCE_NAME,
};
