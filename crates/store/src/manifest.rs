//! The store manifest: one small text file naming what the shards hold.
//!
//! Line-oriented `key=value` format, rewritten atomically after every shard
//! seal, so a reader never observes a torn manifest. The rewrite follows the
//! full POSIX publish idiom — write the temp object, sync its *data*, rename
//! over the live name, sync the *directory* — because each half closes a
//! different crash window: without the data sync a power cut can leave the
//! new name pointing at unwritten bytes; without the directory sync the
//! rename itself can vanish. The torture suite kills the store at both
//! windows and asserts a reader sees the old manifest or the new one, never
//! a torn or empty one.
//!
//! The manifest is *advisory* for shard discovery — the reader lists
//! `shard-*.bfu` itself, so a crash between sealing a shard and rewriting
//! the manifest loses nothing — but it is *authoritative* for the dataset
//! identity: the [`Manifest::fingerprint`] is the resume key, and a store
//! whose fingerprint differs from the survey asking to resume is refused
//! outright.

use crate::backend::StorageBackend;
use crate::shard::SealedShard;
use crate::StoreError;
use bfu_crawler::{retry_interrupted, BrowserProfile};
use std::fmt::Write as _;
use std::io;

/// Manifest file name inside a store directory.
pub const MANIFEST_NAME: &str = "MANIFEST";
const HEADER: &str = "bfu-store-manifest v1";

/// Parsed manifest contents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Survey fingerprint the shards were measured under (the resume key).
    pub fingerprint: u64,
    /// Crawl seed (informational; folded into the fingerprint).
    pub crawl_seed: u64,
    /// Web generation seed (informational; folded into the fingerprint).
    pub web_seed: u64,
    /// Ranked sites in the study — the record-count target.
    pub sites: usize,
    /// Measurement rounds per profile.
    pub rounds_per_profile: u32,
    /// Profiles crawled, in order.
    pub profiles: Vec<BrowserProfile>,
    /// Sites per shard before the writer seals and rolls over.
    pub shard_capacity: u32,
    /// Whether a finished survey sealed this store (every site recorded).
    pub complete: bool,
    /// Sealed shards, in seal order.
    pub shards: Vec<SealedShard>,
}

impl Manifest {
    /// Render to the on-disk text form.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{HEADER}");
        let _ = writeln!(out, "fingerprint={:016x}", self.fingerprint);
        let _ = writeln!(out, "crawl_seed={}", self.crawl_seed);
        let _ = writeln!(out, "web_seed={}", self.web_seed);
        let _ = writeln!(out, "sites={}", self.sites);
        let _ = writeln!(out, "rounds_per_profile={}", self.rounds_per_profile);
        let labels: Vec<&str> = self.profiles.iter().map(|p| p.label()).collect();
        let _ = writeln!(out, "profiles={}", labels.join(","));
        let _ = writeln!(out, "shard_capacity={}", self.shard_capacity);
        let _ = writeln!(out, "complete={}", u8::from(self.complete));
        for s in &self.shards {
            let _ = writeln!(
                out,
                "shard={} records={} checksum={:016x}",
                s.ix, s.records, s.checksum
            );
        }
        out
    }

    /// Parse the on-disk text form. Unknown keys are ignored so older
    /// readers survive newer writers.
    pub fn parse(text: &str) -> Result<Manifest, StoreError> {
        let mut lines = text.lines();
        if lines.next().map(str::trim) != Some(HEADER) {
            return Err(StoreError::BadManifest("missing header line".into()));
        }
        let mut fingerprint = None;
        let mut crawl_seed = 0u64;
        let mut web_seed = 0u64;
        let mut sites = None;
        let mut rounds_per_profile = None;
        let mut profiles = Vec::new();
        let mut shard_capacity = 256u32;
        let mut complete = false;
        let mut shards = Vec::new();
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                continue;
            };
            match key {
                "fingerprint" => {
                    fingerprint = Some(parse_hex(value, "fingerprint")?);
                }
                "crawl_seed" => crawl_seed = parse_int(value, "crawl_seed")?,
                "web_seed" => web_seed = parse_int(value, "web_seed")?,
                "sites" => sites = Some(parse_int(value, "sites")? as usize),
                "rounds_per_profile" => {
                    rounds_per_profile = Some(parse_int(value, "rounds_per_profile")? as u32);
                }
                "profiles" => {
                    for label in value.split(',').filter(|s| !s.is_empty()) {
                        let p = BrowserProfile::from_label(label).ok_or_else(|| {
                            StoreError::BadManifest(format!("unknown profile {label:?}"))
                        })?;
                        profiles.push(p);
                    }
                }
                "shard_capacity" => shard_capacity = parse_int(value, "shard_capacity")? as u32,
                "complete" => complete = value == "1",
                "shard" => {
                    // shard=IX records=N checksum=HEX (value holds the rest).
                    let mut ix = None;
                    let mut records = None;
                    let mut checksum = None;
                    let rejoined = format!("shard={value}");
                    for field in rejoined.split_whitespace() {
                        let Some((k, v)) = field.split_once('=') else {
                            continue;
                        };
                        match k {
                            "shard" => ix = Some(parse_int(v, "shard ix")? as u32),
                            "records" => records = Some(parse_int(v, "shard records")? as u32),
                            "checksum" => checksum = Some(parse_hex(v, "shard checksum")?),
                            _ => {}
                        }
                    }
                    match (ix, records, checksum) {
                        (Some(ix), Some(records), Some(checksum)) => {
                            shards.push(SealedShard {
                                ix,
                                records,
                                checksum,
                            });
                        }
                        _ => {
                            return Err(StoreError::BadManifest(format!(
                                "incomplete shard line {line:?}"
                            )))
                        }
                    }
                }
                _ => {}
            }
        }
        let fingerprint =
            fingerprint.ok_or_else(|| StoreError::BadManifest("missing fingerprint".into()))?;
        let sites = sites.ok_or_else(|| StoreError::BadManifest("missing sites".into()))?;
        let rounds_per_profile = rounds_per_profile
            .ok_or_else(|| StoreError::BadManifest("missing rounds_per_profile".into()))?;
        Ok(Manifest {
            fingerprint,
            crawl_seed,
            web_seed,
            sites,
            rounds_per_profile,
            profiles,
            shard_capacity,
            complete,
            shards,
        })
    }

    /// Durably replace the manifest on `backend` (synced temp + rename +
    /// directory sync).
    pub fn write_atomic(&self, backend: &dyn StorageBackend) -> io::Result<()> {
        write_atomic(backend, MANIFEST_NAME, &self.render())
    }

    /// Read the manifest from `backend`; `Ok(None)` when none exists yet.
    pub fn read(backend: &dyn StorageBackend) -> Result<Option<Manifest>, StoreError> {
        let bytes = match retry_interrupted(|| backend.get(MANIFEST_NAME)) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(StoreError::Io(e)),
        };
        let text = String::from_utf8(bytes)
            .map_err(|_| StoreError::BadManifest("manifest is not UTF-8".into()))?;
        Manifest::parse(&text).map(Some)
    }
}

/// Atomically and durably replace object `name` with `contents`.
///
/// Thin text-typed wrapper over [`StorageBackend::replace`]: on filesystem
/// backends that is the put-tmp / rename / sync-dir publish idiom, on
/// object-store backends a single versioned put. Either way a crash leaves
/// the old object or the new one — never a torn hybrid, and never a name
/// whose bytes didn't make it.
pub fn write_atomic(backend: &dyn StorageBackend, name: &str, contents: &str) -> io::Result<()> {
    backend.replace(name, contents.as_bytes())
}

fn parse_int(value: &str, what: &str) -> Result<u64, StoreError> {
    value
        .parse()
        .map_err(|_| StoreError::BadManifest(format!("bad {what}: {value:?}")))
}

fn parse_hex(value: &str, what: &str) -> Result<u64, StoreError> {
    u64::from_str_radix(value, 16)
        .map_err(|_| StoreError::BadManifest(format!("bad {what}: {value:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::LocalFs;

    fn sample() -> Manifest {
        Manifest {
            fingerprint: 0x0123_4567_89AB_CDEF,
            crawl_seed: 11,
            web_seed: 22,
            sites: 600,
            rounds_per_profile: 3,
            profiles: vec![BrowserProfile::Default, BrowserProfile::Blocking],
            shard_capacity: 128,
            complete: true,
            shards: vec![
                SealedShard {
                    ix: 0,
                    records: 128,
                    checksum: 0xAA,
                },
                SealedShard {
                    ix: 1,
                    records: 40,
                    checksum: 0xBB,
                },
            ],
        }
    }

    #[test]
    fn render_parse_roundtrip() {
        let m = sample();
        assert_eq!(Manifest::parse(&m.render()).expect("parse"), m);
    }

    #[test]
    fn missing_header_rejected() {
        assert!(Manifest::parse("fingerprint=00").is_err());
    }

    #[test]
    fn missing_fingerprint_rejected() {
        let text = "bfu-store-manifest v1\nsites=3\nrounds_per_profile=1\n";
        assert!(Manifest::parse(text).is_err());
    }

    #[test]
    fn unknown_keys_ignored() {
        let mut text = sample().render();
        text.push_str("future_key=whatever\n");
        assert_eq!(Manifest::parse(&text).expect("parse"), sample());
    }

    #[test]
    fn atomic_write_and_read() {
        let dir = std::env::temp_dir().join(format!("bfu-manifest-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let backend = LocalFs::open(&dir).expect("open backend");
        assert!(Manifest::read(&backend).expect("read empty").is_none());
        let m = sample();
        m.write_atomic(&backend).expect("write");
        assert_eq!(Manifest::read(&backend).expect("read"), Some(m));
        assert!(!dir.join("MANIFEST.tmp").exists(), "temp renamed away");
    }
}
