//! The store scrubber: verify, quarantine, compact.
//!
//! A long-lived store accumulates scar tissue: shards torn by crashes,
//! records flipped by disk rot, small tail shards left by every interrupted
//! session, manifest entries pointing at files that no longer exist. The
//! scan layer *tolerates* all of that (it recovers every intact record and
//! reports the rest); the scrubber *repairs* it, so damage does not
//! accumulate across sessions:
//!
//! - every shard is re-read and re-verified against its own checksums and
//!   against the manifest's record of it;
//! - damaged shards have their intact records salvaged, then the file is
//!   **quarantined** — renamed aside with a `.quarantined` suffix, never
//!   deleted, so a forensic eye can still look at what the scrubber saw;
//! - fragmented stores (several small sealed shards, or salvage from damaged
//!   ones) are **compacted** into fresh full shards, dropping superseded
//!   duplicate records; a *single* small sealed tail shard is the legitimate
//!   end of a dataset and is left alone, which makes scrubbing idempotent;
//! - the manifest is fixed up: entries for vanished shards dropped, entries
//!   disagreeing with an internally-valid shard corrected (the shard is
//!   self-verifying; the manifest line is only a copy), sealed-but-unlisted
//!   shards adopted.
//!
//! The repair sequence is crash-safe in the same way the writer is: new
//! compacted shards are written and synced *before* the manifest publishes
//! them, and originals are quarantined/removed only *after* — so a power cut
//! mid-scrub leaves, at worst, duplicate records that first-record-wins
//! scanning and the next scrub clean up. Nothing intact is ever lost, which
//! the torture suite proves by killing the scrubber at every I/O boundary.
//!
//! Records that *are* lost (corrupt beyond salvage) simply leave their
//! site's slot empty, and [`crate::resume_survey`] re-crawls exactly those
//! sites: the store self-heals.

use crate::backend::StorageBackend;
use crate::shard::{read_shard, shard_file_name, SealedShard, ShardContents, ShardWriter};
use crate::store::{shard_names, DatasetStore, StoreError};
use bfu_crawler::retry_interrupted;
use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::io;

/// What one scrub pass found and did. Folded into the provenance sidecar so
/// a dataset's repair history is part of its identity record.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Shard objects examined.
    pub shards_examined: usize,
    /// Shards kept exactly as they were.
    pub shards_kept: usize,
    /// Damaged shards moved aside (never deleted) after salvage.
    pub shards_quarantined: usize,
    /// Intact small shards absorbed into compacted shards and removed.
    pub shards_compacted: usize,
    /// New full/tail shards written by compaction.
    pub shards_written: usize,
    /// Manifest entries corrected to match an internally-valid shard.
    pub manifest_entries_fixed: usize,
    /// Manifest entries dropped because their shard no longer exists.
    pub manifest_entries_dropped: usize,
    /// Sealed shards present on the backend but missing from the manifest,
    /// adopted into it.
    pub manifest_entries_adopted: usize,
    /// Records carried from damaged or absorbed shards into new ones.
    pub records_salvaged: usize,
    /// Records discarded: checksum-bad, undecodable, or out of range.
    pub records_dropped: usize,
    /// Superseded duplicate records dropped during compaction.
    pub records_deduplicated: usize,
}

impl ScrubReport {
    /// Whether the pass found nothing to repair.
    pub fn clean(&self) -> bool {
        self.shards_quarantined == 0
            && self.shards_compacted == 0
            && self.shards_written == 0
            && self.manifest_entries_fixed == 0
            && self.manifest_entries_dropped == 0
            && self.manifest_entries_adopted == 0
            && self.records_dropped == 0
    }

    /// Render as a JSON object, each line indented by `indent` spaces (for
    /// splicing into the provenance document).
    pub fn render_json(&self, indent: usize) -> String {
        let pad = " ".repeat(indent);
        let mut out = String::from("{\n");
        let fields: [(&str, usize); 12] = [
            ("shards_examined", self.shards_examined),
            ("shards_kept", self.shards_kept),
            ("shards_quarantined", self.shards_quarantined),
            ("shards_compacted", self.shards_compacted),
            ("shards_written", self.shards_written),
            ("manifest_entries_fixed", self.manifest_entries_fixed),
            ("manifest_entries_dropped", self.manifest_entries_dropped),
            ("manifest_entries_adopted", self.manifest_entries_adopted),
            ("records_salvaged", self.records_salvaged),
            ("records_dropped", self.records_dropped),
            ("records_deduplicated", self.records_deduplicated),
            ("clean", usize::from(self.clean())),
        ];
        for (i, (name, value)) in fields.iter().enumerate() {
            let comma = if i + 1 == fields.len() { "" } else { "," };
            if *name == "clean" {
                let _ = writeln!(out, "{pad}  \"{name}\": {}{comma}", *value == 1);
            } else {
                let _ = writeln!(out, "{pad}  \"{name}\": {value}{comma}");
            }
        }
        let _ = write!(out, "{pad}}}");
        out
    }
}

/// How the scrubber classified one existing shard.
enum Verdict {
    /// Intact, full (or the only small tail): keep as-is.
    Keep,
    /// Intact but small/fragmented: absorb into a compacted shard, then
    /// remove the (now superseded) original.
    Absorb,
    /// Damaged: salvage intact records, then move the file aside.
    Quarantine,
}

struct Examined {
    name: String,
    contents: Option<ShardContents>, // None: not readable as a shard at all
    verdict: Verdict,
}

impl DatasetStore {
    /// Run one scrub pass: re-verify every shard, quarantine damage,
    /// compact fragmentation, and true up the manifest. Idempotent on a
    /// healthy store (the second pass reports [`ScrubReport::clean`]).
    pub fn scrub(&self) -> Result<ScrubReport, StoreError> {
        let backend = self.backend().clone();
        let inner = &mut *self.lock();
        // Flush any open writer first so every record is in a sealed,
        // examinable shard (resume calls scrub before writing, so this is
        // normally a no-op).
        self.seal_current(inner)?;
        let mut report = ScrubReport::default();
        let capacity = inner.manifest.shard_capacity.max(1);

        // Pass 1: examine every shard object and classify it.
        let mut examined: Vec<Examined> = Vec::new();
        let mut small_intact = 0usize;
        let mut damage = false;
        for (_, name) in shard_names(backend.as_ref())? {
            report.shards_examined += 1;
            match read_shard(backend.as_ref(), &name) {
                Ok(contents) => {
                    if contents.pristine() {
                        // Self-verified; a disagreeing manifest line is the
                        // manifest's problem, fixed in pass 4.
                        if contents.seal.map(|s| s.records) < Some(capacity) {
                            small_intact += 1;
                        }
                        examined.push(Examined {
                            name,
                            contents: Some(contents),
                            verdict: Verdict::Keep, // may demote to Absorb below
                        });
                    } else {
                        damage = true;
                        examined.push(Examined {
                            name,
                            contents: Some(contents),
                            verdict: Verdict::Quarantine,
                        });
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                    // Not readable as a shard (smashed header): quarantine
                    // with nothing to salvage.
                    damage = true;
                    examined.push(Examined {
                        name,
                        contents: None,
                        verdict: Verdict::Quarantine,
                    });
                }
                Err(e) => return Err(StoreError::Io(e)),
            }
        }

        // Pass 2: decide compaction. Fragmentation alone needs ≥ 2 small
        // shards (a single small sealed tail is the legitimate end of a
        // dataset — leaving it alone is what makes scrubbing idempotent);
        // any damage with salvageable records also compacts.
        let compact = small_intact >= 2
            || (damage
                && examined.iter().any(|e| {
                    matches!(e.verdict, Verdict::Quarantine)
                        && e.contents.as_ref().is_some_and(|c| !c.payloads.is_empty())
                }));
        if compact {
            for e in &mut examined {
                let small = e
                    .contents
                    .as_ref()
                    .is_some_and(|c| c.pristine() && c.seal.map(|s| s.records) < Some(capacity));
                if matches!(e.verdict, Verdict::Keep) && small {
                    e.verdict = Verdict::Absorb;
                }
            }
        }

        // Pass 3: build the salvage set (records from absorbed + damaged
        // shards, first-record-wins against kept shards and each other) and
        // write it into fresh shards.
        let mut covered: BTreeSet<usize> = BTreeSet::new();
        for e in &examined {
            if let (Verdict::Keep, Some(c)) = (&e.verdict, &e.contents) {
                for payload in &c.payloads {
                    if let Ok(m) = crate::encode::decode_site(payload) {
                        covered.insert(m.site.index());
                    }
                }
            }
        }
        let mut salvage: Vec<Vec<u8>> = Vec::new();
        for e in &examined {
            let salvaging = matches!(e.verdict, Verdict::Absorb | Verdict::Quarantine);
            let Some(c) = e.contents.as_ref().filter(|_| salvaging) else {
                continue;
            };
            report.records_dropped += c.records_corrupt;
            for payload in &c.payloads {
                match crate::encode::decode_site(payload) {
                    Ok(m) if m.site.index() < inner.manifest.sites => {
                        if covered.insert(m.site.index()) {
                            salvage.push(payload.clone());
                        } else {
                            report.records_deduplicated += 1;
                        }
                    }
                    _ => report.records_dropped += 1,
                }
            }
        }
        let mut new_seals: Vec<SealedShard> = Vec::new();
        for chunk in salvage.chunks(capacity as usize) {
            let ix = inner.next_shard_ix;
            inner.next_shard_ix += 1;
            let mut writer = ShardWriter::create(backend.as_ref(), ix)?;
            for payload in chunk {
                writer.append(payload)?;
            }
            new_seals.push(writer.seal()?);
            report.records_salvaged += chunk.len();
        }
        if !new_seals.is_empty() {
            // Make the new shards' names durable before the manifest (whose
            // own rewrite syncs again) references them.
            retry_interrupted(|| backend.sync_dir())?;
            report.shards_written = new_seals.len();
        }

        // Pass 4: true up the manifest — kept shards' own seals (fixing
        // stale or missing entries), plus the freshly written ones — and
        // publish it before any original is touched.
        let old_shards = inner.manifest.shards.clone();
        let mut shards: Vec<SealedShard> = Vec::new();
        for e in &examined {
            if let (Verdict::Keep, Some(c)) = (&e.verdict, &e.contents) {
                report.shards_kept += 1;
                if let Some(seal) = c.seal {
                    match old_shards.iter().find(|s| s.ix == seal.ix) {
                        Some(listed) if *listed == seal => {}
                        Some(_) => report.manifest_entries_fixed += 1,
                        None => report.manifest_entries_adopted += 1,
                    }
                    shards.push(seal);
                }
            }
        }
        shards.extend(new_seals.iter().copied());
        report.manifest_entries_dropped = old_shards
            .iter()
            .filter(|s| !shards.iter().any(|n| n.ix == s.ix))
            .filter(|s| {
                // Dropped for a reason other than quarantine/absorption
                // below counts as "entry pointed at nothing".
                !examined.iter().any(|e| {
                    e.contents.as_ref().map(|c| c.ix) == Some(s.ix)
                        || e.name == shard_file_name(s.ix)
                })
            })
            .count();
        if shards != old_shards || !new_seals.is_empty() {
            inner.manifest.shards = shards;
            inner.manifest.write_atomic(backend.as_ref())?;
        }

        // Pass 5: move damaged originals aside and drop absorbed ones. Safe
        // now — everything worth keeping is sealed, synced, and published.
        for e in &examined {
            match e.verdict {
                Verdict::Keep => {}
                Verdict::Absorb => {
                    retry_interrupted(|| backend.remove(&e.name))?;
                    report.shards_compacted += 1;
                }
                Verdict::Quarantine => {
                    let to = quarantine_name(backend.as_ref(), &e.name)?;
                    retry_interrupted(|| backend.rename(&e.name, &to))?;
                    report.shards_quarantined += 1;
                }
            }
        }
        if report.shards_compacted > 0 || report.shards_quarantined > 0 {
            retry_interrupted(|| backend.sync_dir())?;
        }
        Ok(report)
    }
}

/// First unused quarantine name for `name`: `<name>.quarantined`, then
/// numbered variants — an existing quarantine file is *evidence* and is
/// never overwritten.
fn quarantine_name(backend: &dyn StorageBackend, name: &str) -> io::Result<String> {
    let base = format!("{name}.quarantined");
    if !retry_interrupted(|| backend.exists(&base))? {
        return Ok(base);
    }
    for k in 1u32.. {
        let candidate = format!("{base}-{k}");
        if !retry_interrupted(|| backend.exists(&candidate))? {
            return Ok(candidate);
        }
    }
    unreachable!("u32 quarantine suffixes exhausted")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{DatasetStore, StoreMeta};
    use bfu_crawler::{CrawlConfig, Provenance, Survey};
    use bfu_webgen::{SyntheticWeb, WebConfig};
    use std::path::PathBuf;

    fn temp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("bfu-scrub-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn survey(sites: usize) -> Survey {
        let web = SyntheticWeb::generate(WebConfig {
            sites,
            seed: 33,
            script_weight: 0,
        });
        Survey::new(web, CrawlConfig::quick(9))
    }

    fn full_store(dir: &std::path::Path, survey: &Survey, capacity: u32) -> DatasetStore {
        let dataset = survey.run();
        let mut meta = StoreMeta::for_survey(survey);
        meta.shard_capacity = capacity;
        let store = DatasetStore::open(dir, meta).expect("open");
        for m in &dataset.sites {
            store.append(m).expect("append");
        }
        store
            .finish(&Provenance::of(survey, &dataset))
            .expect("finish");
        store
    }

    #[test]
    fn healthy_store_scrubs_clean_and_idempotent() {
        let dir = temp_dir("clean");
        let survey = survey(6);
        // Capacity 4 → one full shard + one small tail: legitimate shape.
        let store = full_store(&dir, &survey, 4);
        let first = store.scrub().expect("scrub");
        assert!(first.clean(), "nothing to repair: {first:?}");
        assert_eq!(first.shards_examined, 2);
        assert_eq!(first.shards_kept, 2);
        let second = store.scrub().expect("scrub again");
        assert!(second.clean(), "scrub must be idempotent: {second:?}");
        let scan = store.scan().expect("scan");
        assert_eq!(scan.recovered, 6);
        assert!(!scan.report.any_loss());
    }

    #[test]
    fn corrupt_shard_is_quarantined_not_deleted() {
        let dir = temp_dir("quarantine");
        let survey = survey(6);
        let store = full_store(&dir, &survey, 3);
        // Flip a payload byte in the first shard.
        let name = shard_file_name(0);
        let path = dir.join(&name);
        let mut bytes = std::fs::read(&path).expect("read");
        bytes[40] ^= 0x10;
        std::fs::write(&path, bytes).expect("write");
        let report = store.scrub().expect("scrub");
        assert_eq!(report.shards_quarantined, 1);
        assert!(report.records_dropped >= 1, "the flipped record is gone");
        assert!(report.records_salvaged >= 1, "intact neighbours salvaged");
        assert!(!path.exists(), "original name vacated");
        assert!(
            dir.join(format!("{name}.quarantined")).exists(),
            "moved aside, not deleted"
        );
        // Post-scrub scan is loss-free; only the flipped record's site is
        // missing.
        let scan = store.scan().expect("scan");
        assert!(!scan.report.any_loss(), "{:?}", scan.report);
        assert_eq!(scan.recovered, 5);
        // And the pass after repair is clean.
        assert!(store.scrub().expect("rescrub").clean());
    }

    #[test]
    fn fragmented_small_shards_compact_into_full_ones() {
        let dir = temp_dir("compact");
        let survey = survey(8);
        let dataset = survey.run();
        let mut meta = StoreMeta::for_survey(&survey);
        meta.shard_capacity = 4;
        // Simulate four interrupted sessions: 2 records each, sealed by
        // reopening (finish seals the open shard).
        for pair in dataset.sites.chunks(2) {
            let store = DatasetStore::open(&dir, meta.clone()).expect("open");
            for m in pair {
                store.append(m).expect("append");
            }
            store
                .finish(&Provenance::of(&survey, &dataset))
                .expect("finish");
        }
        let store = DatasetStore::open(&dir, meta).expect("reopen");
        let report = store.scrub().expect("scrub");
        assert_eq!(report.shards_compacted, 4, "four fragments absorbed");
        assert_eq!(report.shards_written, 2, "8 records / capacity 4");
        assert_eq!(report.records_salvaged, 8);
        assert_eq!(report.records_dropped, 0, "compaction loses nothing");
        let scan = store.scan().expect("scan");
        assert_eq!(scan.recovered, 8);
        assert!(!scan.report.any_loss());
        assert!(store.scrub().expect("rescrub").clean());
    }

    #[test]
    fn duplicates_across_fragments_are_deduplicated() {
        let dir = temp_dir("dedup");
        let survey = survey(5);
        let dataset = survey.run();
        let mut meta = StoreMeta::for_survey(&survey);
        meta.shard_capacity = 8;
        // Two sessions, both writing the same first two sites.
        for _ in 0..2 {
            let store = DatasetStore::open(&dir, meta.clone()).expect("open");
            store.append(&dataset.sites[0]).expect("append");
            store.append(&dataset.sites[1]).expect("append");
            store
                .finish(&Provenance::of(&survey, &dataset))
                .expect("finish");
        }
        let store = DatasetStore::open(&dir, meta).expect("reopen");
        let report = store.scrub().expect("scrub");
        assert_eq!(report.records_deduplicated, 2);
        assert_eq!(report.records_salvaged, 2, "one copy of each site");
        let scan = store.scan().expect("scan");
        assert_eq!(scan.recovered, 2);
        assert_eq!(scan.report.records_duplicate, 0, "duplicates are gone");
    }

    #[test]
    fn unsealed_crash_artifact_is_salvaged_and_quarantined() {
        let dir = temp_dir("unsealed");
        let survey = survey(4);
        let dataset = survey.run();
        let meta = StoreMeta::for_survey(&survey);
        let store = DatasetStore::open(&dir, meta.clone()).expect("open");
        store.append(&dataset.sites[0]).expect("append");
        store.append(&dataset.sites[1]).expect("append");
        drop(store); // kill before sealing
        let store = DatasetStore::open(&dir, meta).expect("reopen");
        let report = store.scrub().expect("scrub");
        assert_eq!(report.shards_quarantined, 1);
        assert_eq!(report.records_salvaged, 2, "flushed records survive");
        let scan = store.scan().expect("scan");
        assert_eq!(scan.recovered, 2);
        assert!(!scan.report.any_loss());
    }

    #[test]
    fn manifest_entry_for_missing_shard_is_dropped() {
        let dir = temp_dir("missing");
        let survey = survey(4);
        let store = full_store(&dir, &survey, 2);
        std::fs::remove_file(dir.join(shard_file_name(0))).expect("remove");
        let report = store.scrub().expect("scrub");
        assert_eq!(report.manifest_entries_dropped, 1);
        let scan = store.scan().expect("scan");
        assert!(!scan.report.any_loss());
        assert_eq!(scan.recovered, 2, "other shard intact");
    }

    #[test]
    fn scrub_report_json_is_well_formed() {
        let report = ScrubReport {
            shards_examined: 3,
            shards_quarantined: 1,
            records_salvaged: 7,
            ..ScrubReport::default()
        };
        let json = report.render_json(2);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"shards_quarantined\": 1,"));
        assert!(json.contains("\"clean\": false"));
        assert_eq!(json.matches(':').count(), 12);
    }
}
