//! The store scrubber: verify, quarantine, compact.
//!
//! A long-lived store accumulates scar tissue: shards torn by crashes,
//! records flipped by disk rot, small tail shards left by every interrupted
//! session, manifest entries pointing at files that no longer exist. The
//! scan layer *tolerates* all of that (it recovers every intact record and
//! reports the rest); the scrubber *repairs* it, so damage does not
//! accumulate across sessions:
//!
//! - every shard is re-read and re-verified against its own checksums and
//!   against the manifest's record of it;
//! - damaged shards have their intact records salvaged, then the file is
//!   **quarantined** — renamed aside with a `.quarantined` suffix, never
//!   deleted, so a forensic eye can still look at what the scrubber saw;
//! - fragmented stores (several small sealed shards, or salvage from damaged
//!   ones) are **compacted** into fresh full shards, dropping superseded
//!   duplicate records; a *single* small sealed tail shard is the legitimate
//!   end of a dataset and is left alone, which makes scrubbing idempotent;
//! - the manifest is fixed up: entries for vanished shards dropped, entries
//!   disagreeing with an internally-valid shard corrected (the shard is
//!   self-verifying; the manifest line is only a copy), sealed-but-unlisted
//!   shards adopted.
//!
//! The repair sequence is crash-safe in the same way the writer is: new
//! compacted shards are written and synced *before* the manifest publishes
//! them, and originals are quarantined/removed only *after* — so a power cut
//! mid-scrub leaves, at worst, duplicate records that first-record-wins
//! scanning and the next scrub clean up. Nothing intact is ever lost, which
//! the torture suite proves by killing the scrubber at every I/O boundary.
//!
//! Records that *are* lost (corrupt beyond salvage) simply leave their
//! site's slot empty, and [`crate::resume_survey`] re-crawls exactly those
//! sites: the store self-heals.

use crate::backend::StorageBackend;
use crate::shard::{read_shard, shard_file_name, SealedShard, ShardContents, ShardWriter};
use crate::store::{shard_names, DatasetStore, StoreError};
use bfu_crawler::retry_interrupted;
use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::io;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Default scrubber fan-out: the machine's parallelism, capped — per-shard
/// verification is read + checksum work that saturates a handful of cores.
pub fn default_scrub_threads() -> usize {
    std::thread::available_parallelism().map_or(4, |n| n.get().min(8))
}

/// What one scrub pass found and did. Folded into the provenance sidecar so
/// a dataset's repair history is part of its identity record.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Shard objects examined.
    pub shards_examined: usize,
    /// Shards kept exactly as they were.
    pub shards_kept: usize,
    /// Damaged shards moved aside (never deleted) after salvage.
    pub shards_quarantined: usize,
    /// Intact small shards absorbed into compacted shards and removed.
    pub shards_compacted: usize,
    /// New full/tail shards written by compaction.
    pub shards_written: usize,
    /// Manifest entries corrected to match an internally-valid shard.
    pub manifest_entries_fixed: usize,
    /// Manifest entries dropped because their shard no longer exists.
    pub manifest_entries_dropped: usize,
    /// Sealed shards present on the backend but missing from the manifest,
    /// adopted into it.
    pub manifest_entries_adopted: usize,
    /// Records carried from damaged or absorbed shards into new ones.
    pub records_salvaged: usize,
    /// Records discarded: checksum-bad, undecodable, or out of range.
    pub records_dropped: usize,
    /// Superseded duplicate records dropped during compaction.
    pub records_deduplicated: usize,
}

impl ScrubReport {
    /// Whether the pass found nothing to repair.
    pub fn clean(&self) -> bool {
        self.shards_quarantined == 0
            && self.shards_compacted == 0
            && self.shards_written == 0
            && self.manifest_entries_fixed == 0
            && self.manifest_entries_dropped == 0
            && self.manifest_entries_adopted == 0
            && self.records_dropped == 0
    }

    /// Render as a JSON object, each line indented by `indent` spaces (for
    /// splicing into the provenance document).
    pub fn render_json(&self, indent: usize) -> String {
        let pad = " ".repeat(indent);
        let mut out = String::from("{\n");
        let fields: [(&str, usize); 12] = [
            ("shards_examined", self.shards_examined),
            ("shards_kept", self.shards_kept),
            ("shards_quarantined", self.shards_quarantined),
            ("shards_compacted", self.shards_compacted),
            ("shards_written", self.shards_written),
            ("manifest_entries_fixed", self.manifest_entries_fixed),
            ("manifest_entries_dropped", self.manifest_entries_dropped),
            ("manifest_entries_adopted", self.manifest_entries_adopted),
            ("records_salvaged", self.records_salvaged),
            ("records_dropped", self.records_dropped),
            ("records_deduplicated", self.records_deduplicated),
            ("clean", usize::from(self.clean())),
        ];
        for (i, (name, value)) in fields.iter().enumerate() {
            let comma = if i + 1 == fields.len() { "" } else { "," };
            if *name == "clean" {
                let _ = writeln!(out, "{pad}  \"{name}\": {}{comma}", *value == 1);
            } else {
                let _ = writeln!(out, "{pad}  \"{name}\": {value}{comma}");
            }
        }
        let _ = write!(out, "{pad}}}");
        out
    }
}

/// How the scrubber classified one existing shard.
enum Verdict {
    /// Intact, full (or the only small tail): keep as-is.
    Keep,
    /// Intact but small/fragmented: absorb into a compacted shard, then
    /// remove the (now superseded) original.
    Absorb,
    /// Damaged: salvage intact records, then move the file aside.
    Quarantine,
}

struct Examined {
    name: String,
    contents: Option<ShardContents>, // None: not readable as a shard at all
    /// Decoded site index per intact payload (`None`: undecodable record),
    /// computed during the parallel examine so the sequential passes never
    /// re-parse a payload.
    decoded: Vec<Option<usize>>,
    verdict: Verdict,
}

/// Read and classify one shard object — the per-shard unit of work the
/// scrubber fans out across its thread pool. Pure with respect to store
/// state: touches the backend only, never the store lock.
fn examine_one(backend: &dyn StorageBackend, name: &str) -> Result<Examined, StoreError> {
    match read_shard(backend, name) {
        Ok(contents) => {
            let decoded = contents
                .payloads
                .iter()
                .map(|p| crate::encode::decode_site(p).ok().map(|m| m.site.index()))
                .collect();
            let verdict = if contents.pristine() {
                // Self-verified; a disagreeing manifest line is the
                // manifest's problem, fixed in the true-up pass.
                Verdict::Keep // may demote to Absorb during compaction
            } else {
                Verdict::Quarantine
            };
            Ok(Examined {
                name: name.to_owned(),
                contents: Some(contents),
                decoded,
                verdict,
            })
        }
        Err(e) if e.kind() == io::ErrorKind::InvalidData => {
            // Not readable as a shard (smashed header): quarantine with
            // nothing to salvage.
            Ok(Examined {
                name: name.to_owned(),
                contents: None,
                decoded: Vec::new(),
                verdict: Verdict::Quarantine,
            })
        }
        Err(e) => Err(StoreError::Io(e)),
    }
}

/// Examine `names` across up to `threads` workers. Results land in
/// name-order slots, so the merged output — and every report counter
/// derived from it — is identical whatever the thread count or scheduling.
fn examine_shards(
    backend: &dyn StorageBackend,
    names: &[(u32, String)],
    threads: usize,
) -> Result<Vec<Examined>, StoreError> {
    let threads = threads.max(1).min(names.len().max(1));
    let slots: Vec<Mutex<Option<Result<Examined, StoreError>>>> =
        names.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some((_, name)) = names.get(i) else {
                    break;
                };
                let result = examine_one(backend, name);
                *slots[i].lock().unwrap_or_else(|p| p.into_inner()) = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(|p| p.into_inner())
                .unwrap_or_else(|| {
                    Err(StoreError::Io(io::Error::other(
                        "scrub examine slot never filled",
                    )))
                })
        })
        .collect()
}

impl DatasetStore {
    /// Run one scrub pass with the default thread-pool width. See
    /// [`DatasetStore::scrub_with_threads`].
    pub fn scrub(&self) -> Result<ScrubReport, StoreError> {
        self.scrub_with_threads(default_scrub_threads())
    }

    /// Run one scrub pass: re-verify every shard, quarantine damage,
    /// compact fragmentation, and true up the manifest. Idempotent on a
    /// healthy store (the second pass reports [`ScrubReport::clean`]).
    ///
    /// Per-shard verification fans out across up to `threads` workers and —
    /// deliberately — runs *outside* the store lock: appenders keep making
    /// progress while the scrubber reads, which matters when a resuming
    /// survey scrubs a store other workers are already writing into. The
    /// lock is taken only for four short critical sections (seal + snapshot,
    /// index reservation, manifest true-up), and the report is deterministic
    /// in everything but `threads` (1 thread and 8 produce identical
    /// reports, quarantine sets, and compaction output — a tested
    /// property).
    ///
    /// Shards created after the opening snapshot (a concurrent appender's
    /// live output) are left untouched: only shards that existed when the
    /// scrub began are verified, repaired, or quarantined.
    pub fn scrub_with_threads(&self, threads: usize) -> Result<ScrubReport, StoreError> {
        let backend = self.backend().clone();
        // Short lock: flush any open writer so every record this pass can
        // see is in a sealed, examinable shard (resume calls scrub before
        // writing, so this is normally a no-op), and snapshot the bounds.
        // `ix_floor` fences this pass off from concurrent appenders: any
        // shard index at or above it was created after the snapshot and
        // belongs to a live writer, not to us.
        let (capacity, sites_limit, ix_floor) = {
            let inner = &mut *self.lock();
            self.seal_current(inner)?;
            (
                inner.manifest.shard_capacity.max(1),
                inner.manifest.sites,
                inner.next_shard_ix,
            )
        };
        let mut report = ScrubReport::default();

        // Pass 1 (unlocked, parallel): examine every shard object and
        // classify it.
        let names: Vec<(u32, String)> = shard_names(backend.as_ref())?
            .into_iter()
            .filter(|(ix, _)| *ix < ix_floor)
            .collect();
        report.shards_examined = names.len();
        let mut examined = examine_shards(backend.as_ref(), &names, threads)?;
        let mut small_intact = 0usize;
        let mut damage = false;
        for e in &examined {
            match (&e.verdict, &e.contents) {
                (Verdict::Keep, Some(c)) => {
                    if c.seal.map(|s| s.records) < Some(capacity) {
                        small_intact += 1;
                    }
                }
                _ => damage = true,
            }
        }

        // Pass 2: decide compaction. Fragmentation alone needs ≥ 2 small
        // shards (a single small sealed tail is the legitimate end of a
        // dataset — leaving it alone is what makes scrubbing idempotent);
        // any damage with salvageable records also compacts.
        let compact = small_intact >= 2
            || (damage
                && examined.iter().any(|e| {
                    matches!(e.verdict, Verdict::Quarantine)
                        && e.contents.as_ref().is_some_and(|c| !c.payloads.is_empty())
                }));
        if compact {
            for e in &mut examined {
                let small = e
                    .contents
                    .as_ref()
                    .is_some_and(|c| c.pristine() && c.seal.map(|s| s.records) < Some(capacity));
                if matches!(e.verdict, Verdict::Keep) && small {
                    e.verdict = Verdict::Absorb;
                }
            }
        }

        // Pass 3 (unlocked): build the salvage set (records from absorbed +
        // damaged shards, first-record-wins against kept shards and each
        // other), then write it into fresh shards whose indices are
        // reserved under one brief lock — the writing itself happens with
        // the lock released.
        let mut covered: BTreeSet<usize> = BTreeSet::new();
        for e in &examined {
            if let (Verdict::Keep, Some(_)) = (&e.verdict, &e.contents) {
                covered.extend(e.decoded.iter().flatten());
            }
        }
        let mut salvage: Vec<Vec<u8>> = Vec::new();
        for e in &examined {
            let salvaging = matches!(e.verdict, Verdict::Absorb | Verdict::Quarantine);
            let Some(c) = e.contents.as_ref().filter(|_| salvaging) else {
                continue;
            };
            report.records_dropped += c.records_corrupt;
            for (payload, site_ix) in c.payloads.iter().zip(&e.decoded) {
                match site_ix {
                    Some(site_ix) if *site_ix < sites_limit => {
                        if covered.insert(*site_ix) {
                            salvage.push(payload.clone());
                        } else {
                            report.records_deduplicated += 1;
                        }
                    }
                    _ => report.records_dropped += 1,
                }
            }
        }
        let chunks: Vec<&[Vec<u8>]> = salvage.chunks(capacity as usize).collect();
        let mut new_seals: Vec<SealedShard> = Vec::new();
        if !chunks.is_empty() {
            let base_ix = {
                let inner = &mut *self.lock();
                let base = inner.next_shard_ix;
                inner.next_shard_ix = base + chunks.len() as u32;
                base
            };
            for (i, chunk) in chunks.iter().enumerate() {
                let mut writer = ShardWriter::create(backend.as_ref(), base_ix + i as u32)?;
                for payload in *chunk {
                    writer.append(payload)?;
                }
                new_seals.push(writer.seal()?);
                report.records_salvaged += chunk.len();
            }
            // Make the new shards' names durable before the manifest (whose
            // own rewrite syncs again) references them.
            retry_interrupted(|| backend.sync_dir())?;
            report.shards_written = new_seals.len();
        }

        // Pass 4 (short lock): true up the manifest — kept shards' own
        // seals (fixing stale or missing entries), plus the freshly written
        // ones — and publish it before any original is touched. Entries a
        // concurrent appender sealed since the snapshot (ix at or above the
        // floor) are carried over untouched.
        let mut kept_seals: Vec<SealedShard> = Vec::new();
        for e in &examined {
            if let (Verdict::Keep, Some(c)) = (&e.verdict, &e.contents) {
                report.shards_kept += 1;
                if let Some(seal) = c.seal {
                    kept_seals.push(seal);
                }
            }
        }
        {
            let inner = &mut *self.lock();
            let old_shards = inner.manifest.shards.clone();
            let mut shards: Vec<SealedShard> = Vec::new();
            for seal in &kept_seals {
                match old_shards.iter().find(|s| s.ix == seal.ix) {
                    Some(listed) if *listed == *seal => {}
                    Some(_) => report.manifest_entries_fixed += 1,
                    None => report.manifest_entries_adopted += 1,
                }
                shards.push(*seal);
            }
            shards.extend(new_seals.iter().copied());
            for s in &old_shards {
                if s.ix >= ix_floor && !shards.iter().any(|n| n.ix == s.ix) {
                    shards.push(*s);
                }
            }
            report.manifest_entries_dropped = old_shards
                .iter()
                .filter(|s| !shards.iter().any(|n| n.ix == s.ix))
                .filter(|s| {
                    // Dropped for a reason other than quarantine/absorption
                    // below counts as "entry pointed at nothing".
                    !examined.iter().any(|e| {
                        e.contents.as_ref().map(|c| c.ix) == Some(s.ix)
                            || e.name == shard_file_name(s.ix)
                    })
                })
                .count();
            if shards != old_shards || !new_seals.is_empty() {
                inner.manifest.shards = shards;
                inner.manifest.write_atomic(backend.as_ref())?;
            }
        }

        // Pass 5: move damaged originals aside and drop absorbed ones. Safe
        // now — everything worth keeping is sealed, synced, and published.
        for e in &examined {
            match e.verdict {
                Verdict::Keep => {}
                Verdict::Absorb => {
                    retry_interrupted(|| backend.remove(&e.name))?;
                    report.shards_compacted += 1;
                }
                Verdict::Quarantine => {
                    let to = quarantine_name(backend.as_ref(), &e.name)?;
                    retry_interrupted(|| backend.rename(&e.name, &to))?;
                    report.shards_quarantined += 1;
                }
            }
        }
        if report.shards_compacted > 0 || report.shards_quarantined > 0 {
            retry_interrupted(|| backend.sync_dir())?;
        }
        Ok(report)
    }
}

/// First unused quarantine name for `name`: `<name>.quarantined`, then
/// numbered variants — an existing quarantine file is *evidence* and is
/// never overwritten.
fn quarantine_name(backend: &dyn StorageBackend, name: &str) -> io::Result<String> {
    let base = format!("{name}.quarantined");
    if !retry_interrupted(|| backend.exists(&base))? {
        return Ok(base);
    }
    for k in 1u32.. {
        let candidate = format!("{base}-{k}");
        if !retry_interrupted(|| backend.exists(&candidate))? {
            return Ok(candidate);
        }
    }
    unreachable!("u32 quarantine suffixes exhausted")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{DatasetStore, StoreMeta};
    use bfu_crawler::{CrawlConfig, Provenance, Survey};
    use bfu_webgen::{SyntheticWeb, WebConfig};
    use std::path::PathBuf;

    fn temp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("bfu-scrub-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn survey(sites: usize) -> Survey {
        let web = SyntheticWeb::generate(WebConfig {
            sites,
            seed: 33,
            script_weight: 0,
        });
        Survey::new(web, CrawlConfig::quick(9))
    }

    fn full_store(dir: &std::path::Path, survey: &Survey, capacity: u32) -> DatasetStore {
        let dataset = survey.run();
        let mut meta = StoreMeta::for_survey(survey);
        meta.shard_capacity = capacity;
        let store = DatasetStore::open(dir, meta).expect("open");
        for m in &dataset.sites {
            store.append(m).expect("append");
        }
        store
            .finish(&Provenance::of(survey, &dataset))
            .expect("finish");
        store
    }

    #[test]
    fn healthy_store_scrubs_clean_and_idempotent() {
        let dir = temp_dir("clean");
        let survey = survey(6);
        // Capacity 4 → one full shard + one small tail: legitimate shape.
        let store = full_store(&dir, &survey, 4);
        let first = store.scrub().expect("scrub");
        assert!(first.clean(), "nothing to repair: {first:?}");
        assert_eq!(first.shards_examined, 2);
        assert_eq!(first.shards_kept, 2);
        let second = store.scrub().expect("scrub again");
        assert!(second.clean(), "scrub must be idempotent: {second:?}");
        let scan = store.scan().expect("scan");
        assert_eq!(scan.recovered, 6);
        assert!(!scan.report.any_loss());
    }

    #[test]
    fn corrupt_shard_is_quarantined_not_deleted() {
        let dir = temp_dir("quarantine");
        let survey = survey(6);
        let store = full_store(&dir, &survey, 3);
        // Flip a payload byte in the first shard.
        let name = shard_file_name(0);
        let path = dir.join(&name);
        let mut bytes = std::fs::read(&path).expect("read");
        bytes[40] ^= 0x10;
        std::fs::write(&path, bytes).expect("write");
        let report = store.scrub().expect("scrub");
        assert_eq!(report.shards_quarantined, 1);
        assert!(report.records_dropped >= 1, "the flipped record is gone");
        assert!(report.records_salvaged >= 1, "intact neighbours salvaged");
        assert!(!path.exists(), "original name vacated");
        assert!(
            dir.join(format!("{name}.quarantined")).exists(),
            "moved aside, not deleted"
        );
        // Post-scrub scan is loss-free; only the flipped record's site is
        // missing.
        let scan = store.scan().expect("scan");
        assert!(!scan.report.any_loss(), "{:?}", scan.report);
        assert_eq!(scan.recovered, 5);
        // And the pass after repair is clean.
        assert!(store.scrub().expect("rescrub").clean());
    }

    #[test]
    fn fragmented_small_shards_compact_into_full_ones() {
        let dir = temp_dir("compact");
        let survey = survey(8);
        let dataset = survey.run();
        let mut meta = StoreMeta::for_survey(&survey);
        meta.shard_capacity = 4;
        // Simulate four interrupted sessions: 2 records each, sealed by
        // reopening (finish seals the open shard).
        for pair in dataset.sites.chunks(2) {
            let store = DatasetStore::open(&dir, meta.clone()).expect("open");
            for m in pair {
                store.append(m).expect("append");
            }
            store
                .finish(&Provenance::of(&survey, &dataset))
                .expect("finish");
        }
        let store = DatasetStore::open(&dir, meta).expect("reopen");
        let report = store.scrub().expect("scrub");
        assert_eq!(report.shards_compacted, 4, "four fragments absorbed");
        assert_eq!(report.shards_written, 2, "8 records / capacity 4");
        assert_eq!(report.records_salvaged, 8);
        assert_eq!(report.records_dropped, 0, "compaction loses nothing");
        let scan = store.scan().expect("scan");
        assert_eq!(scan.recovered, 8);
        assert!(!scan.report.any_loss());
        assert!(store.scrub().expect("rescrub").clean());
    }

    #[test]
    fn duplicates_across_fragments_are_deduplicated() {
        let dir = temp_dir("dedup");
        let survey = survey(5);
        let dataset = survey.run();
        let mut meta = StoreMeta::for_survey(&survey);
        meta.shard_capacity = 8;
        // Two sessions, both writing the same first two sites.
        for _ in 0..2 {
            let store = DatasetStore::open(&dir, meta.clone()).expect("open");
            store.append(&dataset.sites[0]).expect("append");
            store.append(&dataset.sites[1]).expect("append");
            store
                .finish(&Provenance::of(&survey, &dataset))
                .expect("finish");
        }
        let store = DatasetStore::open(&dir, meta).expect("reopen");
        let report = store.scrub().expect("scrub");
        assert_eq!(report.records_deduplicated, 2);
        assert_eq!(report.records_salvaged, 2, "one copy of each site");
        let scan = store.scan().expect("scan");
        assert_eq!(scan.recovered, 2);
        assert_eq!(scan.report.records_duplicate, 0, "duplicates are gone");
    }

    #[test]
    fn unsealed_crash_artifact_is_salvaged_and_quarantined() {
        let dir = temp_dir("unsealed");
        let survey = survey(4);
        let dataset = survey.run();
        let meta = StoreMeta::for_survey(&survey);
        let store = DatasetStore::open(&dir, meta.clone()).expect("open");
        store.append(&dataset.sites[0]).expect("append");
        store.append(&dataset.sites[1]).expect("append");
        drop(store); // kill before sealing
        let store = DatasetStore::open(&dir, meta).expect("reopen");
        let report = store.scrub().expect("scrub");
        assert_eq!(report.shards_quarantined, 1);
        assert_eq!(report.records_salvaged, 2, "flushed records survive");
        let scan = store.scan().expect("scan");
        assert_eq!(scan.recovered, 2);
        assert!(!scan.report.any_loss());
    }

    #[test]
    fn manifest_entry_for_missing_shard_is_dropped() {
        let dir = temp_dir("missing");
        let survey = survey(4);
        let store = full_store(&dir, &survey, 2);
        std::fs::remove_file(dir.join(shard_file_name(0))).expect("remove");
        let report = store.scrub().expect("scrub");
        assert_eq!(report.manifest_entries_dropped, 1);
        let scan = store.scan().expect("scan");
        assert!(!scan.report.any_loss());
        assert_eq!(scan.recovered, 2, "other shard intact");
    }

    /// Build two byte-identical damaged stores and prove scrubbing one with
    /// 1 thread and the other with 8 produces the same report, the same
    /// surviving/quarantined object names, and the same recovered records.
    #[test]
    fn scrub_is_thread_count_invariant() {
        let survey = survey(8);
        let dataset = survey.run();
        let mut meta = StoreMeta::for_survey(&survey);
        meta.shard_capacity = 3;
        let mut dirs = Vec::new();
        for tag in ["t1", "t8"] {
            let dir = temp_dir(&format!("threads-{tag}"));
            // Fragmented sessions plus one corrupt shard and one unsealed
            // crash artifact: every verdict class is on the table.
            for pair in dataset.sites.chunks(2) {
                let store = DatasetStore::open(&dir, meta.clone()).expect("open");
                for m in pair {
                    store.append(m).expect("append");
                }
                store
                    .finish(&Provenance::of(&survey, &dataset))
                    .expect("finish");
            }
            let shard0 = dir.join(shard_file_name(0));
            let mut bytes = std::fs::read(&shard0).expect("read shard");
            bytes[40] ^= 0x08;
            std::fs::write(&shard0, bytes).expect("corrupt shard");
            let store = DatasetStore::open(&dir, meta.clone()).expect("reopen");
            store.append(&dataset.sites[0]).expect("append dup");
            drop(store); // unsealed crash artifact
            dirs.push(dir);
        }
        let open = |dir: &std::path::Path| DatasetStore::open(dir, meta.clone()).expect("open");
        let r1 = open(&dirs[0]).scrub_with_threads(1).expect("scrub 1");
        let r8 = open(&dirs[1]).scrub_with_threads(8).expect("scrub 8");
        assert_eq!(r1, r8, "reports must not depend on thread count");
        assert!(!r1.clean(), "the damage must actually exercise repair");
        let names = |dir: &std::path::Path| {
            let mut v: Vec<String> = std::fs::read_dir(dir)
                .expect("read dir")
                .map(|e| e.expect("entry").file_name().to_string_lossy().into_owned())
                .collect();
            v.sort();
            v
        };
        assert_eq!(names(&dirs[0]), names(&dirs[1]));
        let scan1 = open(&dirs[0]).scan().expect("scan 1");
        let scan8 = open(&dirs[1]).scan().expect("scan 8");
        assert_eq!(scan1.recovered, scan8.recovered);
        assert_eq!(scan1.report, scan8.report);
    }

    /// The narrowed-lock regression: while the scrubber is mid-verification
    /// (blocked inside a shard read), an `append` on another thread must
    /// complete — the store lock is not held across shard verification.
    #[test]
    fn scrub_verification_runs_outside_the_store_lock() {
        use crate::backend::{LocalFs, StorageFile};
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::{mpsc, Arc, Condvar, Mutex};

        #[derive(Debug)]
        struct GatedFs {
            inner: LocalFs,
            armed: AtomicBool,
            entered: Mutex<Option<mpsc::Sender<()>>>,
            release: Mutex<bool>,
            cv: Condvar,
        }
        impl StorageBackend for GatedFs {
            fn create(&self, name: &str) -> std::io::Result<Box<dyn StorageFile>> {
                self.inner.create(name)
            }
            fn get(&self, name: &str) -> std::io::Result<Vec<u8>> {
                // First shard read while armed: announce entry, then block
                // until the appender has made progress.
                if name.starts_with("shard-") && self.armed.swap(false, Ordering::SeqCst) {
                    if let Some(tx) = self.entered.lock().expect("entered lock").take() {
                        let _ = tx.send(());
                    }
                    let mut released = self.release.lock().expect("release lock");
                    while !*released {
                        released = self.cv.wait(released).expect("cv wait");
                    }
                }
                self.inner.get(name)
            }
            fn rename(&self, from: &str, to: &str) -> std::io::Result<()> {
                self.inner.rename(from, to)
            }
            fn remove(&self, name: &str) -> std::io::Result<()> {
                self.inner.remove(name)
            }
            fn exists(&self, name: &str) -> std::io::Result<bool> {
                self.inner.exists(name)
            }
            fn list(&self) -> std::io::Result<Vec<String>> {
                self.inner.list()
            }
            fn sync_dir(&self) -> std::io::Result<()> {
                self.inner.sync_dir()
            }
            fn describe(&self) -> String {
                self.inner.describe()
            }
        }

        let dir = temp_dir("lock-narrow");
        let survey = survey(6);
        let dataset = survey.run();
        let mut meta = StoreMeta::for_survey(&survey);
        meta.shard_capacity = 2;
        let seed_store = DatasetStore::open(&dir, meta.clone()).expect("open");
        for m in &dataset.sites[..4] {
            seed_store.append(m).expect("append");
        }
        seed_store
            .finish(&Provenance::of(&survey, &dataset))
            .expect("finish");
        drop(seed_store);

        let (tx, entered_rx) = mpsc::channel();
        let gated = Arc::new(GatedFs {
            inner: LocalFs::open(&dir).expect("open backend"),
            armed: AtomicBool::new(false),
            entered: Mutex::new(Some(tx)),
            release: Mutex::new(false),
            cv: Condvar::new(),
        });
        let backend: Arc<dyn StorageBackend> = gated.clone();
        let store = Arc::new(DatasetStore::open_on(backend, meta).expect("open on gated"));
        gated.armed.store(true, Ordering::SeqCst);

        let scrub_store = store.clone();
        let scrubber = std::thread::spawn(move || scrub_store.scrub_with_threads(2));
        entered_rx
            .recv_timeout(std::time::Duration::from_secs(10))
            .expect("scrubber never reached shard verification");

        // Scrubber is now parked inside a shard read. If it held the store
        // lock across verification (the old behaviour), this append would
        // deadlock until the gate opens; the watchdog channel catches that.
        let (done_tx, done_rx) = mpsc::channel();
        let append_store = store.clone();
        let m = dataset.sites[4].clone();
        let appender = std::thread::spawn(move || {
            let r = append_store.append(&m);
            let _ = done_tx.send(());
            r
        });
        done_rx
            .recv_timeout(std::time::Duration::from_secs(10))
            .expect("append blocked behind the scrubber: store lock held across verification");

        *gated.release.lock().expect("release lock") = true;
        gated.cv.notify_all();
        appender.join().expect("appender").expect("append ok");
        let report = scrubber.join().expect("scrubber").expect("scrub ok");
        assert_eq!(report.shards_examined, 2, "only pre-snapshot shards");
        // The concurrently appended record (an unsealed post-snapshot
        // shard) must have survived the scrub untouched.
        let scan = store.scan().expect("scan");
        assert_eq!(scan.recovered, 5);
    }

    #[test]
    fn scrub_report_json_is_well_formed() {
        let report = ScrubReport {
            shards_examined: 3,
            shards_quarantined: 1,
            records_salvaged: 7,
            ..ScrubReport::default()
        };
        let json = report.render_json(2);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"shards_quarantined\": 1,"));
        assert!(json.contains("\"clean\": false"));
        assert_eq!(json.matches(':').count(), 12);
    }
}
