//! Shard files: the append-only unit of dataset persistence.
//!
//! One shard holds up to `shard_capacity` site records. Layout:
//!
//! ```text
//! header:  "BFUSHARD" (8) | u16 version | u16 reserved | u32 shard index
//! record:  u32 payload length | payload | u64 FNV-64(payload)
//! footer:  u32 0xFFFF_FFFF | u32 record count | u64 shard checksum
//! ```
//!
//! The shard checksum chains the per-record checksums in write order. A
//! writer flushes after every record, so a process kill loses at most the
//! record being written; sealing syncs the file, so once a shard is sealed
//! even a *power cut* cannot touch it. The reader recovers every intact
//! record from the tail and reports (rather than fails on) whatever was
//! damaged:
//!
//! - payload checksum mismatch → that record is dropped, reading continues
//!   (framing is intact);
//! - length prefix pointing past EOF, or an implausible length → the tail
//!   is untrusted from that point and dropped;
//! - missing footer → the shard is *unsealed* (a crash artifact), its
//!   intact records still count.
//!
//! All I/O goes through a [`StorageBackend`], so the same reader and writer
//! run against the local filesystem, a future object store, or the torture
//! suite's fault-injecting [`crate::faultfs::FaultFs`].

use crate::backend::{write_all_retrying, StorageBackend, StorageFile};
use bfu_crawler::retry_interrupted;
use bfu_util::{fnv64, Fnv64};
use std::io;

const MAGIC: &[u8; 8] = b"BFUSHARD";
// v2: rounds carry script budget/heap/depth trip counters.
const VERSION: u16 = 2;
const SEAL_MARKER: u32 = 0xFFFF_FFFF;
/// Upper bound on a single record; anything larger is framing corruption.
const MAX_RECORD_LEN: u32 = 1 << 28;

/// File name of shard `ix`.
pub fn shard_file_name(ix: u32) -> String {
    format!("shard-{ix:05}.bfu")
}

/// Parse a shard index back out of a file name. Quarantined shards
/// (renamed aside by the scrubber) intentionally do not parse.
pub fn parse_shard_name(name: &str) -> Option<u32> {
    name.strip_prefix("shard-")?
        .strip_suffix(".bfu")?
        .parse()
        .ok()
}

/// Summary of one sealed shard, recorded in the manifest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SealedShard {
    /// Shard index.
    pub ix: u32,
    /// Records written.
    pub records: u32,
    /// Chained checksum over the per-record checksums.
    pub checksum: u64,
}

/// Incremental writer for one shard file.
#[derive(Debug)]
pub struct ShardWriter {
    file: Box<dyn StorageFile>,
    name: String,
    ix: u32,
    records: u32,
    chain: Fnv64,
}

impl ShardWriter {
    /// Create `shard-<ix>.bfu` on `backend` and write its header.
    pub fn create(backend: &dyn StorageBackend, ix: u32) -> io::Result<ShardWriter> {
        ShardWriter::create_named(backend, &shard_file_name(ix), ix)
    }

    /// Create shard object `name` with header index `ix` — the staging path
    /// used by survey-fabric workers, whose shards live *outside* the
    /// canonical `shard-NNNNN.bfu` namespace (so scan and scrub never see
    /// them) until the coordinator absorbs their records at the merge point.
    pub fn create_named(
        backend: &dyn StorageBackend,
        name: &str,
        ix: u32,
    ) -> io::Result<ShardWriter> {
        let name = name.to_owned();
        let mut file = retry_interrupted(|| backend.create(&name))?;
        let mut header = Vec::with_capacity(16);
        header.extend_from_slice(MAGIC);
        header.extend_from_slice(&VERSION.to_le_bytes());
        header.extend_from_slice(&0u16.to_le_bytes());
        header.extend_from_slice(&ix.to_le_bytes());
        write_all_retrying(file.as_mut(), &header)?;
        retry_interrupted(|| file.flush())?;
        Ok(ShardWriter {
            file,
            name,
            ix,
            records: 0,
            chain: Fnv64::new(),
        })
    }

    /// Shard index.
    pub fn ix(&self) -> u32 {
        self.ix
    }

    /// Records appended so far.
    pub fn records(&self) -> u32 {
        self.records
    }

    /// Name of the shard file.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Append one record and flush it to the OS, so a process kill after
    /// `append` returns never loses the record. (Only [`ShardWriter::seal`]
    /// survives a power cut; the torture suite's recovery path re-crawls
    /// whatever an unsealed tail lost.)
    pub fn append(&mut self, payload: &[u8]) -> io::Result<()> {
        let checksum = fnv64(payload);
        let mut frame = Vec::with_capacity(payload.len() + 12);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(payload);
        frame.extend_from_slice(&checksum.to_le_bytes());
        write_all_retrying(self.file.as_mut(), &frame)?;
        retry_interrupted(|| self.file.flush())?;
        self.records += 1;
        self.chain.write_u64(checksum);
        Ok(())
    }

    /// Write the footer, sync the file to disk, and return the seal
    /// summary. The caller (the store) syncs the directory before any
    /// manifest mentions this shard, completing the publish discipline.
    pub fn seal(mut self) -> io::Result<SealedShard> {
        let checksum = self.chain.finish();
        let mut footer = Vec::with_capacity(16);
        footer.extend_from_slice(&SEAL_MARKER.to_le_bytes());
        footer.extend_from_slice(&self.records.to_le_bytes());
        footer.extend_from_slice(&checksum.to_le_bytes());
        write_all_retrying(self.file.as_mut(), &footer)?;
        retry_interrupted(|| self.file.sync_all())?;
        Ok(SealedShard {
            ix: self.ix,
            records: self.records,
            checksum,
        })
    }
}

/// Everything recovered from one shard file.
#[derive(Debug, Clone, Default)]
pub struct ShardContents {
    /// Shard index from the header.
    pub ix: u32,
    /// Intact record payloads, in file order.
    pub payloads: Vec<Vec<u8>>,
    /// Records dropped to payload-checksum mismatches.
    pub records_corrupt: usize,
    /// Whether the tail was cut short (crash) or its framing was unusable.
    /// The shard's intact prefix is still returned.
    pub truncated: bool,
    /// Footer contents, if the shard was sealed.
    pub seal: Option<SealedShard>,
    /// Whether the reader's re-chained checksum matched the footer's.
    pub seal_valid: bool,
}

impl ShardContents {
    /// Whether this shard is pristine: sealed, checksum-valid, nothing
    /// dropped. Anything less is the scrubber's business.
    pub fn pristine(&self) -> bool {
        self.seal.is_some() && self.seal_valid && !self.truncated && self.records_corrupt == 0
    }
}

/// Read one shard object from `backend`, recovering every intact record.
///
/// Only a damaged *header* is a hard error (the object is not a shard);
/// damage past the header degrades to a partial, reported recovery.
pub fn read_shard(backend: &dyn StorageBackend, name: &str) -> io::Result<ShardContents> {
    let bytes = retry_interrupted(|| backend.get(name))?;
    if bytes.len() < 16 || &bytes[..8] != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{name} is not a bfu shard (bad magic)"),
        ));
    }
    let version = u16::from_le_bytes([bytes[8], bytes[9]]);
    if version != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{name}: unsupported shard version {version}"),
        ));
    }
    let ix = u32::from_le_bytes([bytes[12], bytes[13], bytes[14], bytes[15]]);
    let mut out = ShardContents {
        ix,
        ..ShardContents::default()
    };
    let mut chain = Fnv64::new();
    let mut pos = 16usize;
    loop {
        let Some(len_bytes) = bytes.get(pos..pos + 4) else {
            // EOF without a footer: the writer was killed before sealing.
            out.truncated = true;
            break;
        };
        let len = u32::from_le_bytes([len_bytes[0], len_bytes[1], len_bytes[2], len_bytes[3]]);
        pos += 4;
        if len == SEAL_MARKER {
            let Some(footer) = bytes.get(pos..pos + 12) else {
                out.truncated = true;
                break;
            };
            let records = u32::from_le_bytes([footer[0], footer[1], footer[2], footer[3]]);
            let checksum = u64::from_le_bytes([
                footer[4], footer[5], footer[6], footer[7], footer[8], footer[9], footer[10],
                footer[11],
            ]);
            out.seal = Some(SealedShard {
                ix,
                records,
                checksum,
            });
            out.seal_valid = checksum == chain.finish()
                && records as usize == out.payloads.len() + out.records_corrupt;
            break;
        }
        if len > MAX_RECORD_LEN {
            // Framing is garbage; nothing after this offset can be trusted.
            out.truncated = true;
            break;
        }
        let len = len as usize;
        let Some(payload) = bytes.get(pos..pos + len) else {
            out.truncated = true; // record cut short by a crash
            break;
        };
        let Some(sum_bytes) = bytes.get(pos + len..pos + len + 8) else {
            out.truncated = true;
            break;
        };
        let stored = u64::from_le_bytes([
            sum_bytes[0],
            sum_bytes[1],
            sum_bytes[2],
            sum_bytes[3],
            sum_bytes[4],
            sum_bytes[5],
            sum_bytes[6],
            sum_bytes[7],
        ]);
        chain.write_u64(stored);
        if fnv64(payload) == stored {
            out.payloads.push(payload.to_vec());
        } else {
            out.records_corrupt += 1;
        }
        pos += len + 8;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::LocalFs;
    use std::io::Write as _;
    use std::path::{Path, PathBuf};

    fn temp_backend(name: &str) -> (LocalFs, PathBuf) {
        let dir =
            std::env::temp_dir().join(format!("bfu-shard-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        (LocalFs::open(&dir).expect("open backend"), dir)
    }

    fn write_shard(backend: &LocalFs, payloads: &[&[u8]]) -> (String, SealedShard) {
        let mut w = ShardWriter::create(backend, 3).expect("create");
        for p in payloads {
            w.append(p).expect("append");
        }
        let name = w.name().to_owned();
        let seal = w.seal().expect("seal");
        (name, seal)
    }

    fn mangle(dir: &Path, name: &str, f: impl FnOnce(Vec<u8>) -> Vec<u8>) {
        let path = dir.join(name);
        let bytes = std::fs::read(&path).expect("read file");
        std::fs::write(&path, f(bytes)).expect("rewrite");
    }

    #[test]
    fn sealed_roundtrip() {
        let (backend, _dir) = temp_backend("roundtrip");
        let (name, seal) = write_shard(&backend, &[b"alpha", b"beta", b"gamma"]);
        let c = read_shard(&backend, &name).expect("read");
        assert_eq!(c.ix, 3);
        assert_eq!(
            c.payloads,
            vec![b"alpha".to_vec(), b"beta".to_vec(), b"gamma".to_vec()]
        );
        assert_eq!(c.records_corrupt, 0);
        assert!(!c.truncated);
        assert_eq!(c.seal, Some(seal));
        assert!(c.seal_valid);
        assert!(c.pristine());
    }

    #[test]
    fn flipped_payload_byte_drops_only_that_record() {
        let (backend, dir) = temp_backend("flip");
        let (name, _) = write_shard(&backend, &[b"alpha", b"beta", b"gamma"]);
        // Flip a byte inside "beta": header 16 + rec0 (4+5+8) = 33, then
        // 4 length bytes → payload starts at 37.
        mangle(&dir, &name, |mut bytes| {
            bytes[38] ^= 0x40;
            bytes
        });
        let c = read_shard(&backend, &name).expect("read");
        assert_eq!(c.payloads, vec![b"alpha".to_vec(), b"gamma".to_vec()]);
        assert_eq!(c.records_corrupt, 1);
        assert!(!c.truncated, "framing stayed intact");
        assert!(c.seal_valid, "record checksums (stored fields) still chain");
        assert!(!c.pristine(), "a record was dropped");
    }

    #[test]
    fn truncation_keeps_intact_prefix() {
        let (backend, dir) = temp_backend("truncate");
        let (name, _) = write_shard(&backend, &[b"alpha", b"beta", b"gamma"]);
        // Cut mid-way through the second record's payload.
        mangle(&dir, &name, |bytes| bytes[..16 + 17 + 6].to_vec());
        let c = read_shard(&backend, &name).expect("read");
        assert_eq!(c.payloads, vec![b"alpha".to_vec()]);
        assert!(c.truncated);
        assert!(c.seal.is_none());
    }

    #[test]
    fn unsealed_shard_recovers_all_records() {
        let (backend, _dir) = temp_backend("unsealed");
        let mut w = ShardWriter::create(&backend, 0).expect("create");
        w.append(b"one").expect("append");
        w.append(b"two").expect("append");
        let name = w.name().to_owned();
        drop(w); // simulated kill: no footer ever written
        let c = read_shard(&backend, &name).expect("read");
        assert_eq!(c.payloads.len(), 2);
        assert!(c.truncated, "unsealed shard is a crash artifact");
        assert!(c.seal.is_none());
    }

    #[test]
    fn corrupt_length_prefix_abandons_tail() {
        let (backend, dir) = temp_backend("badlen");
        let (name, _) = write_shard(&backend, &[b"alpha", b"beta"]);
        // Smash the second record's length prefix (offset 16 + 17 = 33).
        mangle(&dir, &name, |mut bytes| {
            bytes[33] = 0xEE;
            bytes[36] = 0x7F; // huge length, > MAX_RECORD_LEN
            bytes
        });
        let c = read_shard(&backend, &name).expect("read");
        assert_eq!(c.payloads, vec![b"alpha".to_vec()]);
        assert!(c.truncated);
    }

    #[test]
    fn partial_trailing_write_is_dropped() {
        let (backend, dir) = temp_backend("tail");
        let (name, _) = write_shard(&backend, &[b"alpha"]);
        // Simulate a kill mid-append *after* sealing was skipped: strip the
        // footer, then add a half-written frame.
        mangle(&dir, &name, |bytes| {
            let mut mangled = bytes[..bytes.len() - 16].to_vec();
            mangled.extend_from_slice(&20u32.to_le_bytes());
            mangled.extend_from_slice(b"only-six");
            mangled
        });
        let c = read_shard(&backend, &name).expect("read");
        assert_eq!(c.payloads, vec![b"alpha".to_vec()]);
        assert!(c.truncated);
    }

    #[test]
    fn shard_names_roundtrip() {
        assert_eq!(shard_file_name(7), "shard-00007.bfu");
        assert_eq!(parse_shard_name("shard-00007.bfu"), Some(7));
        assert_eq!(parse_shard_name("shard-junk.bfu"), None);
        assert_eq!(parse_shard_name("MANIFEST"), None);
        assert_eq!(
            parse_shard_name("shard-00007.bfu.quarantined"),
            None,
            "quarantined shards must not rejoin the scan"
        );
    }

    #[test]
    fn non_shard_file_is_hard_error() {
        let (backend, dir) = temp_backend("magic");
        std::fs::File::create(dir.join("shard-00000.bfu"))
            .and_then(|mut f| f.write_all(b"definitely not a shard"))
            .expect("write");
        assert!(read_shard(&backend, "shard-00000.bfu").is_err());
    }
}
