//! The dataset store: a backend of shards plus a manifest, and the two
//! consumers the store exists for — crawl resumption and memoized analysis.
//!
//! A [`DatasetStore`] is opened against a [`StoreMeta`] describing the survey
//! that produces (or produced) the data. The survey fingerprint is the
//! identity check: opening a store written under a different configuration is
//! refused with [`StoreError::FingerprintMismatch`] rather than silently
//! mixing incompatible measurements.
//!
//! All I/O goes through a [`StorageBackend`]: [`DatasetStore::open`] wires up
//! the production [`LocalFs`]; [`DatasetStore::open_on`] accepts any backend,
//! which is how the torture suite runs the *entire* store — writer, scrubber,
//! resumption — against a deterministic fault injector.
//!
//! Writers are crash-safe by construction: every appended record is flushed,
//! shards seal (footer checksum + file sync) at `shard_capacity` records, the
//! namespace is synced so a sealed shard's *name* is durable, and only then
//! is the manifest naming it atomically rewritten. A new writer session
//! always opens a *new* shard — it never appends to an unsealed shard left
//! by a crash — so recovery never has to reason about a half-trusted tail it
//! is also writing into.

use crate::backend::{LocalFs, StorageBackend};
use crate::encode::{decode_site, encode_site};
use crate::manifest::{write_atomic, Manifest};
use crate::scrub::ScrubReport;
use crate::shard::{parse_shard_name, read_shard, ShardWriter};
use bfu_crawler::{retry_interrupted, Dataset, Provenance, SiteMeasurement, Survey};
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Default sites per shard before the writer seals and rolls over.
pub const DEFAULT_SHARD_CAPACITY: u32 = 256;

/// File name of the provenance sidecar written by [`DatasetStore::finish`].
pub const PROVENANCE_NAME: &str = "provenance.json";

/// Errors surfaced by store operations.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying storage failure.
    Io(io::Error),
    /// The store holds a dataset measured under a different survey
    /// configuration; refusing to mix them.
    FingerprintMismatch {
        /// Fingerprint of the survey asking to open the store.
        expected: u64,
        /// Fingerprint recorded in the store's manifest.
        found: u64,
    },
    /// The manifest file exists but cannot be understood.
    BadManifest(String),
    /// No store exists at the given directory.
    NoStore(PathBuf),
    /// The store holds only part of the dataset (interrupted survey or
    /// damaged shards) and the caller required all of it.
    Incomplete {
        /// Sites recovered.
        present: usize,
        /// Sites missing.
        missing: usize,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store i/o error: {e}"),
            StoreError::FingerprintMismatch { expected, found } => write!(
                f,
                "store fingerprint mismatch: survey is {expected:016x}, store holds {found:016x}"
            ),
            StoreError::BadManifest(msg) => write!(f, "bad store manifest: {msg}"),
            StoreError::NoStore(dir) => write!(f, "no dataset store at {}", dir.display()),
            StoreError::Incomplete { present, missing } => write!(
                f,
                "store is incomplete: {present} sites present, {missing} missing"
            ),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> StoreError {
        StoreError::Io(e)
    }
}

/// Identity and shape of the dataset a store holds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreMeta {
    /// Survey fingerprint — the resume key.
    pub fingerprint: u64,
    /// Crawl seed (informational).
    pub crawl_seed: u64,
    /// Web generation seed (informational).
    pub web_seed: u64,
    /// Ranked sites in the study — the record-count target.
    pub sites: usize,
    /// Measurement rounds per profile.
    pub rounds_per_profile: u32,
    /// Profiles crawled, in order.
    pub profiles: Vec<bfu_crawler::BrowserProfile>,
    /// Sites per shard before the writer rolls over.
    pub shard_capacity: u32,
}

impl StoreMeta {
    /// The metadata a store for `survey` should carry.
    pub fn for_survey(survey: &Survey) -> StoreMeta {
        StoreMeta {
            fingerprint: survey.fingerprint(),
            crawl_seed: survey.config().seed,
            web_seed: survey.web().core().config.seed,
            sites: survey.web().site_count(),
            rounds_per_profile: survey.config().rounds_per_profile,
            profiles: survey.config().profiles.clone(),
            shard_capacity: DEFAULT_SHARD_CAPACITY,
        }
    }
}

/// Counters from reading a store back: what was recovered, what was lost,
/// and why. All damage is *reported*, never fatal — the reader's contract is
/// "every intact record, plus an honest account of the rest".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReadReport {
    /// Shard files read.
    pub shards_read: usize,
    /// Shards with a valid footer.
    pub shards_sealed: usize,
    /// Shards whose tail was cut short or whose framing broke.
    pub shards_truncated: usize,
    /// Sealed shards whose footer checksum did not match the records.
    pub shards_checksum_mismatch: usize,
    /// Records recovered and decoded.
    pub records_ok: usize,
    /// Records dropped to checksum or decode failures.
    pub records_corrupt: usize,
    /// Records for a site already recovered from an earlier record
    /// (first record wins; duplicates arise from resumed writer sessions).
    pub records_duplicate: usize,
    /// Records naming a site outside the study's range.
    pub records_out_of_range: usize,
}

impl ReadReport {
    /// Whether anything at all was damaged or discarded.
    pub fn any_loss(&self) -> bool {
        self.shards_truncated > 0
            || self.shards_checksum_mismatch > 0
            || self.records_corrupt > 0
            || self.records_out_of_range > 0
    }
}

/// Result of scanning a store: per-site slots (in site order) plus the
/// recovery report.
#[derive(Debug)]
pub struct StoreScan {
    /// One slot per ranked site; `Some` where a record was recovered.
    pub sites: Vec<Option<SiteMeasurement>>,
    /// Number of filled slots.
    pub recovered: usize,
    /// What reading the shards observed.
    pub report: ReadReport,
}

#[derive(Debug)]
pub(crate) struct Inner {
    pub(crate) manifest: Manifest,
    pub(crate) writer: Option<ShardWriter>,
    pub(crate) next_shard_ix: u32,
}

/// An open dataset store: one backend, one survey fingerprint.
#[derive(Debug)]
pub struct DatasetStore {
    backend: Arc<dyn StorageBackend>,
    inner: Mutex<Inner>,
}

impl DatasetStore {
    /// Open (creating if absent) the store at `dir` on the local filesystem
    /// for the survey described by `meta`.
    pub fn open(dir: &Path, meta: StoreMeta) -> Result<DatasetStore, StoreError> {
        let backend: Arc<dyn StorageBackend> = Arc::new(LocalFs::open(dir)?);
        DatasetStore::open_on(backend, meta)
    }

    /// Open the store living on `backend`. Refuses backends written under a
    /// different fingerprint.
    pub fn open_on(
        backend: Arc<dyn StorageBackend>,
        meta: StoreMeta,
    ) -> Result<DatasetStore, StoreError> {
        let manifest = match Manifest::read(backend.as_ref())? {
            Some(existing) => {
                if existing.fingerprint != meta.fingerprint {
                    return Err(StoreError::FingerprintMismatch {
                        expected: meta.fingerprint,
                        found: existing.fingerprint,
                    });
                }
                existing
            }
            None => {
                let fresh = Manifest {
                    fingerprint: meta.fingerprint,
                    crawl_seed: meta.crawl_seed,
                    web_seed: meta.web_seed,
                    sites: meta.sites,
                    rounds_per_profile: meta.rounds_per_profile,
                    profiles: meta.profiles.clone(),
                    shard_capacity: meta.shard_capacity,
                    complete: false,
                    shards: Vec::new(),
                };
                fresh.write_atomic(backend.as_ref())?;
                fresh
            }
        };
        // A new session never appends to an existing (possibly unsealed)
        // shard: it starts a fresh one past every index on the backend.
        let next_shard_ix = shard_names(backend.as_ref())?
            .into_iter()
            .map(|(ix, _)| ix)
            .max()
            .map_or(0, |ix| ix + 1);
        Ok(DatasetStore {
            backend,
            inner: Mutex::new(Inner {
                manifest,
                writer: None,
                next_shard_ix,
            }),
        })
    }

    /// The storage backend this store reads and writes.
    pub fn backend(&self) -> &Arc<dyn StorageBackend> {
        &self.backend
    }

    /// The fingerprint this store is keyed by.
    pub fn fingerprint(&self) -> u64 {
        self.lock().manifest.fingerprint
    }

    pub(crate) fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Append one site measurement. Safe to call from multiple crawl worker
    /// threads; records land in arrival order. The record is flushed before
    /// this returns, so a process kill afterwards cannot lose it (a power
    /// cut can: only sealing syncs, and resumption re-crawls the tail).
    pub fn append(&self, m: &SiteMeasurement) -> io::Result<()> {
        let payload = encode_site(m);
        let inner = &mut *self.lock();
        let writer = match inner.writer {
            Some(ref mut writer) => writer,
            None => {
                let ix = inner.next_shard_ix;
                inner.next_shard_ix = ix + 1;
                inner
                    .writer
                    .insert(ShardWriter::create(self.backend.as_ref(), ix)?)
            }
        };
        writer.append(&payload)?;
        if writer.records() >= inner.manifest.shard_capacity {
            self.seal_current(inner)?;
        }
        Ok(())
    }

    /// Seal the open shard (if any), mark the store complete, and write the
    /// provenance sidecar. Call once the survey's dataset is fully recorded.
    pub fn finish(&self, provenance: &Provenance) -> io::Result<()> {
        self.finish_with_scrub(provenance, None)
    }

    /// [`DatasetStore::finish`], folding a scrub report into the provenance
    /// sidecar when a scrub ran this session.
    pub fn finish_with_scrub(
        &self,
        provenance: &Provenance,
        scrub: Option<&ScrubReport>,
    ) -> io::Result<()> {
        let inner = &mut *self.lock();
        self.seal_current(inner)?;
        inner.manifest.complete = true;
        inner.manifest.write_atomic(self.backend.as_ref())?;
        let json = match scrub {
            Some(report) => bfu_analysis::export::provenance_json_with_extra(
                provenance,
                &[("store_scrub", report.render_json(2))],
            ),
            None => bfu_analysis::export::provenance_json(provenance),
        };
        write_atomic(self.backend.as_ref(), PROVENANCE_NAME, &json)
    }

    pub(crate) fn seal_current(&self, inner: &mut Inner) -> io::Result<()> {
        if let Some(writer) = inner.writer.take() {
            let sealed = writer.seal()?;
            // The shard's bytes are synced by `seal`; sync the namespace so
            // its *name* is durable before any manifest mentions it.
            retry_interrupted(|| self.backend.sync_dir())?;
            inner.manifest.shards.push(sealed);
            inner.manifest.write_atomic(self.backend.as_ref())?;
        }
        Ok(())
    }

    /// Read every shard back, recovering one slot per site. Damage is
    /// reported in the scan's [`ReadReport`], never fatal.
    pub fn scan(&self) -> Result<StoreScan, StoreError> {
        let (n_sites, manifest_seals) = {
            let inner = self.lock();
            (inner.manifest.sites, inner.manifest.shards.clone())
        };
        let mut sites: Vec<Option<SiteMeasurement>> = Vec::new();
        sites.resize_with(n_sites, || None);
        let mut report = ReadReport::default();
        for (_, name) in shard_names(self.backend.as_ref())? {
            let contents = read_shard(self.backend.as_ref(), &name)?;
            report.shards_read += 1;
            report.records_corrupt += contents.records_corrupt;
            if contents.truncated {
                report.shards_truncated += 1;
            }
            if let Some(seal) = contents.seal {
                report.shards_sealed += 1;
                // Invalid either internally (re-chained checksum disagrees
                // with the footer) or against the manifest's record of it.
                let manifest_disagrees =
                    manifest_seals.iter().any(|s| s.ix == seal.ix && *s != seal);
                if !contents.seal_valid || manifest_disagrees {
                    report.shards_checksum_mismatch += 1;
                }
            }
            for payload in &contents.payloads {
                let m = match decode_site(payload) {
                    Ok(m) => m,
                    Err(_) => {
                        report.records_corrupt += 1;
                        continue;
                    }
                };
                let slot_ix = m.site.index();
                let Some(slot) = sites.get_mut(slot_ix) else {
                    report.records_out_of_range += 1;
                    continue;
                };
                if slot.is_some() {
                    report.records_duplicate += 1;
                } else {
                    *slot = Some(m);
                    report.records_ok += 1;
                }
            }
        }
        let recovered = sites.iter().filter(|s| s.is_some()).count();
        Ok(StoreScan {
            sites,
            recovered,
            report,
        })
    }
}

/// Sorted `(index, name)` of every shard object on `backend`. Quarantined
/// shards do not parse as shard names and are invisible here.
pub(crate) fn shard_names(backend: &dyn StorageBackend) -> io::Result<Vec<(u32, String)>> {
    let mut out: Vec<(u32, String)> = retry_interrupted(|| backend.list())?
        .into_iter()
        .filter_map(|name| parse_shard_name(&name).map(|ix| (ix, name)))
        .collect();
    out.sort_unstable();
    Ok(out)
}

/// Outcome of [`resume_survey`].
#[derive(Debug)]
pub struct ResumeOutcome {
    /// The complete dataset, identical to an uninterrupted run's.
    pub dataset: Dataset,
    /// Sites recovered from the store instead of being crawled.
    pub resumed_sites: usize,
    /// Sites crawled fresh this session.
    pub crawled_sites: usize,
    /// What reading the existing shards observed (after scrubbing).
    pub report: ReadReport,
    /// What the pre-resume scrub found and repaired.
    pub scrub: ScrubReport,
}

/// Run `survey`, resuming from whatever the store at `dir` already holds.
/// See [`resume_survey_on`].
pub fn resume_survey(survey: &Survey, dir: &Path) -> Result<ResumeOutcome, StoreError> {
    let backend: Arc<dyn StorageBackend> = Arc::new(LocalFs::open(dir)?);
    resume_survey_on(survey, backend)
}

/// Run `survey`, resuming from whatever the store on `backend` already
/// holds.
///
/// The store is scrubbed first — corrupt shards quarantined, fragmented
/// small shards compacted — then scanned; recovered sites are not
/// re-crawled, and any site the scrub had to discard is simply missing from
/// the scan, so it is re-crawled along with the never-crawled ones: the
/// store *self-heals*. Freshly crawled sites stream into new shards as they
/// complete, so killing *this* run part-way leaves a store the next call
/// resumes from. Because per-site measurements depend only on the survey
/// fingerprint and the site (thread-count invariance is a tested property of
/// the crawler), the resumed dataset fingerprints identically to an
/// uninterrupted run.
pub fn resume_survey_on(
    survey: &Survey,
    backend: Arc<dyn StorageBackend>,
) -> Result<ResumeOutcome, StoreError> {
    let store = DatasetStore::open_on(backend, StoreMeta::for_survey(survey))?;
    let scrub = store.scrub()?;
    let scan = store.scan()?;
    let resumed_sites = scan.recovered;
    let crawled_sites = scan.sites.len().saturating_sub(resumed_sites);
    let write_error: Mutex<Option<io::Error>> = Mutex::new(None);
    let dataset = survey.run_partial(scan.sites, &|m| {
        if let Err(e) = store.append(m) {
            if let Ok(mut slot) = write_error.lock() {
                slot.get_or_insert(e);
            }
        }
    });
    if let Some(e) = write_error.into_inner().unwrap_or_else(|p| p.into_inner()) {
        return Err(StoreError::Io(e));
    }
    let mut provenance = Provenance::of(survey, &dataset);
    provenance.health.backend = store.backend().op_totals().unwrap_or_default();
    store.finish_with_scrub(&provenance, Some(&scrub))?;
    Ok(ResumeOutcome {
        dataset,
        resumed_sites,
        crawled_sites,
        report: scan.report,
        scrub,
    })
}

/// Outcome of [`load_survey_dataset`]: either the full dataset or an honest
/// account of how much of one is present.
#[derive(Debug)]
pub enum LoadOutcome {
    /// Every site was recovered; analysis can run with zero crawling.
    Complete {
        /// The stored dataset.
        dataset: Dataset,
        /// What reading the shards observed.
        report: ReadReport,
    },
    /// The store is missing sites (interrupted survey or damaged shards).
    Incomplete {
        /// Sites recovered.
        present: usize,
        /// Sites missing.
        missing: usize,
        /// What reading the shards observed.
        report: ReadReport,
    },
}

/// Load the dataset for `survey` from the store at `dir` without crawling.
/// See [`load_survey_dataset_on`].
pub fn load_survey_dataset(survey: &Survey, dir: &Path) -> Result<LoadOutcome, StoreError> {
    let backend: Arc<dyn StorageBackend> = Arc::new(LocalFs::open(dir)?);
    match load_survey_dataset_on(survey, backend) {
        Err(StoreError::NoStore(_)) => Err(StoreError::NoStore(dir.to_owned())),
        other => other,
    }
}

/// Load the dataset for `survey` from the store on `backend` without
/// crawling.
///
/// Fails with [`StoreError::NoStore`] when the backend holds no manifest,
/// and [`StoreError::FingerprintMismatch`] when it holds someone else's
/// dataset. An interrupted or damaged store loads as
/// [`LoadOutcome::Incomplete`] rather than erroring, so callers can decide
/// between resuming and reporting. Loading never mutates the store — damage
/// is reported, and repair is [`resume_survey_on`]'s job.
pub fn load_survey_dataset_on(
    survey: &Survey,
    backend: Arc<dyn StorageBackend>,
) -> Result<LoadOutcome, StoreError> {
    if Manifest::read(backend.as_ref())?.is_none() {
        return Err(StoreError::NoStore(PathBuf::from(backend.describe())));
    }
    let store = DatasetStore::open_on(backend, StoreMeta::for_survey(survey))?;
    let scan = store.scan()?;
    if scan.recovered == scan.sites.len() {
        let sites = scan.sites.into_iter().flatten().collect();
        // A store-recovered dataset did no parsing, so its cache totals are
        // zero — effort stats, not measurements, and never fingerprinted.
        let dataset = Dataset {
            profiles: survey.config().profiles.clone(),
            rounds_per_profile: survey.config().rounds_per_profile,
            sites,
            cache: bfu_crawler::CacheTotals::default(),
        };
        Ok(LoadOutcome::Complete {
            dataset,
            report: scan.report,
        })
    } else {
        Ok(LoadOutcome::Incomplete {
            present: scan.recovered,
            missing: scan.sites.len() - scan.recovered,
            report: scan.report,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfu_crawler::CrawlConfig;
    use bfu_webgen::{SyntheticWeb, WebConfig};
    use std::fs;

    fn temp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("bfu-store-test-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_survey() -> Survey {
        let web = SyntheticWeb::generate(WebConfig {
            sites: 5,
            seed: 21,
            script_weight: 0,
        });
        Survey::new(web, CrawlConfig::quick(4))
    }

    #[test]
    fn fresh_store_writes_manifest_and_refuses_other_fingerprints() {
        let dir = temp_dir("fingerprint");
        let survey = tiny_survey();
        let meta = StoreMeta::for_survey(&survey);
        let store = DatasetStore::open(&dir, meta.clone()).expect("open");
        assert_eq!(store.fingerprint(), survey.fingerprint());
        drop(store);
        let mut other = meta;
        other.fingerprint ^= 1;
        match DatasetStore::open(&dir, other) {
            Err(StoreError::FingerprintMismatch { expected, found }) => {
                assert_eq!(found, survey.fingerprint());
                assert_eq!(expected, survey.fingerprint() ^ 1);
            }
            other => panic!("expected fingerprint mismatch, got {other:?}"),
        }
    }

    #[test]
    fn append_scan_roundtrip_first_record_wins() {
        let dir = temp_dir("roundtrip");
        let survey = tiny_survey();
        let dataset = survey.run();
        let store = DatasetStore::open(&dir, StoreMeta::for_survey(&survey)).expect("open");
        for m in &dataset.sites {
            store.append(m).expect("append");
        }
        // Duplicate one record: the first copy must win.
        store.append(&dataset.sites[0]).expect("dup append");
        store
            .finish(&Provenance::of(&survey, &dataset))
            .expect("finish");
        let scan = store.scan().expect("scan");
        assert_eq!(scan.recovered, dataset.sites.len());
        assert_eq!(scan.report.records_duplicate, 1);
        assert!(!scan.report.any_loss());
        // finish() (no scrub this session) must not invent a scrub entry…
        let provenance = std::fs::read_to_string(dir.join(PROVENANCE_NAME)).expect("provenance");
        assert!(!provenance.contains("\"store_scrub\""));
        // …while finish_with_scrub folds the report in as a JSON member.
        let report = ScrubReport::default();
        store
            .finish_with_scrub(&Provenance::of(&survey, &dataset), Some(&report))
            .expect("finish with scrub");
        let provenance = std::fs::read_to_string(dir.join(PROVENANCE_NAME)).expect("provenance");
        assert!(provenance.contains("\"store_scrub\": {"));
        assert!(provenance.contains("\"clean\": true"));
        assert!(provenance.trim_end().ends_with('}'));
    }

    #[test]
    fn shards_roll_over_at_capacity() {
        let dir = temp_dir("rollover");
        let survey = tiny_survey();
        let dataset = survey.run();
        let mut meta = StoreMeta::for_survey(&survey);
        meta.shard_capacity = 2;
        let store = DatasetStore::open(&dir, meta).expect("open");
        for m in &dataset.sites {
            store.append(m).expect("append");
        }
        store
            .finish(&Provenance::of(&survey, &dataset))
            .expect("finish");
        // 5 sites at capacity 2 → shards of 2, 2, 1.
        let backend = LocalFs::open(&dir).expect("backend");
        let manifest = Manifest::read(&backend).expect("read").expect("present");
        assert_eq!(manifest.shards.len(), 3);
        assert!(manifest.complete);
        let scan = store.scan().expect("scan");
        assert_eq!(scan.recovered, dataset.sites.len());
        assert_eq!(scan.report.shards_sealed, 3);
    }

    #[test]
    fn new_session_starts_a_new_shard() {
        let dir = temp_dir("new-session");
        let survey = tiny_survey();
        let dataset = survey.run();
        let meta = StoreMeta::for_survey(&survey);
        let store = DatasetStore::open(&dir, meta.clone()).expect("open");
        store.append(&dataset.sites[0]).expect("append");
        drop(store); // killed before sealing: shard-00000 left unsealed
        let store = DatasetStore::open(&dir, meta).expect("reopen");
        store.append(&dataset.sites[1]).expect("append");
        drop(store);
        assert!(dir.join("shard-00000.bfu").exists());
        assert!(dir.join("shard-00001.bfu").exists());
    }

    #[test]
    fn load_reports_incomplete_then_complete() {
        let dir = temp_dir("load");
        let survey = tiny_survey();
        match load_survey_dataset(&survey, &dir) {
            Err(StoreError::NoStore(_)) => {}
            other => panic!("expected NoStore, got {other:?}"),
        }
        let dataset = survey.run();
        let store = DatasetStore::open(&dir, StoreMeta::for_survey(&survey)).expect("open");
        store.append(&dataset.sites[0]).expect("append");
        drop(store);
        match load_survey_dataset(&survey, &dir).expect("load") {
            LoadOutcome::Incomplete {
                present, missing, ..
            } => {
                assert_eq!(present, 1);
                assert_eq!(missing, dataset.sites.len() - 1);
            }
            LoadOutcome::Complete { .. } => panic!("store should be incomplete"),
        }
        let outcome = resume_survey(&survey, &dir).expect("resume");
        assert_eq!(outcome.resumed_sites, 1);
        assert_eq!(outcome.crawled_sites, dataset.sites.len() - 1);
        assert_eq!(outcome.dataset.fingerprint(), dataset.fingerprint());
        match load_survey_dataset(&survey, &dir).expect("load complete") {
            LoadOutcome::Complete {
                dataset: stored, ..
            } => {
                assert_eq!(stored.fingerprint(), dataset.fingerprint());
            }
            LoadOutcome::Incomplete {
                present, missing, ..
            } => {
                panic!("store should be complete, got {present}/{missing}")
            }
        }
    }
}
