//! Simulated time.
//!
//! The entire study runs on virtual time: page interaction budgets (the
//! paper's 30 s per page), network latency, and `setTimeout` timers all
//! advance a [`VirtualClock`], never the wall clock. This keeps crawls
//! deterministic and lets a "480 days of interaction" survey complete in
//! seconds.

use std::fmt;

/// A point in virtual time, in milliseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Instant(pub u64);

impl Instant {
    /// The simulation epoch.
    pub const ZERO: Instant = Instant(0);

    /// Milliseconds since the epoch.
    pub fn millis(self) -> u64 {
        self.0
    }

    /// This instant plus `ms` milliseconds.
    pub fn plus(self, ms: u64) -> Instant {
        Instant(self.0.saturating_add(ms))
    }

    /// Milliseconds elapsed from `earlier` to `self` (saturating at zero).
    pub fn since(self, earlier: Instant) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl fmt::Display for Instant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ms", self.0)
    }
}

/// A monotonically advancing virtual clock.
///
/// # Examples
///
/// ```
/// use bfu_util::VirtualClock;
/// let mut clock = VirtualClock::new();
/// clock.advance(30_000);
/// assert_eq!(clock.now().millis(), 30_000);
/// ```
#[derive(Debug, Clone, Default)]
pub struct VirtualClock {
    now: Instant,
}

impl VirtualClock {
    /// A clock at the epoch.
    pub fn new() -> Self {
        VirtualClock { now: Instant::ZERO }
    }

    /// A clock starting at an arbitrary instant.
    pub fn starting_at(now: Instant) -> Self {
        VirtualClock { now }
    }

    /// The current virtual time.
    pub fn now(&self) -> Instant {
        self.now
    }

    /// Advance the clock by `ms` milliseconds.
    pub fn advance(&mut self, ms: u64) {
        self.now = self.now.plus(ms);
    }

    /// Advance the clock to `t` if `t` is in the future; never goes backward.
    pub fn advance_to(&mut self, t: Instant) {
        if t > self.now {
            self.now = t;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_monotonically() {
        let mut c = VirtualClock::new();
        c.advance(10);
        c.advance(5);
        assert_eq!(c.now(), Instant(15));
        c.advance_to(Instant(12)); // in the past: ignored
        assert_eq!(c.now(), Instant(15));
        c.advance_to(Instant(40));
        assert_eq!(c.now(), Instant(40));
    }

    #[test]
    fn since_saturates() {
        assert_eq!(Instant(5).since(Instant(10)), 0);
        assert_eq!(Instant(10).since(Instant(4)), 6);
    }

    #[test]
    fn plus_saturates() {
        assert_eq!(Instant(u64::MAX).plus(10), Instant(u64::MAX));
    }

    #[test]
    fn display() {
        assert_eq!(Instant(30_000).to_string(), "30000ms");
    }
}
