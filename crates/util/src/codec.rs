//! Binary encoding and checksum helpers for the on-disk dataset store.
//!
//! Everything the persistence layer writes goes through [`ByteWriter`] /
//! [`ByteReader`]: fixed-width little-endian integers and length-prefixed
//! byte strings, with every read bounds-checked so corrupt input surfaces as
//! a [`CodecError`] instead of a panic. [`Fnv64`] is the shared incremental
//! FNV-1a hasher used for record and shard checksums and for the dataset /
//! configuration fingerprints — not cryptographic, but more than strong
//! enough to detect torn writes and flipped bits.

use std::fmt;

/// Incremental 64-bit FNV-1a hasher.
///
/// Deterministic across platforms and runs; used for checksums and
/// fingerprints throughout the workspace.
#[derive(Debug, Clone)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

impl Fnv64 {
    /// FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv64(0xCBF2_9CE4_8422_2325)
    }

    /// Absorb raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01B3);
        }
    }

    /// Absorb a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorb a `&str` with a length prefix, so `("ab","c")` and
    /// `("a","bc")` hash differently.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// One-shot FNV-1a of a byte slice.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut f = Fnv64::new();
    f.write(bytes);
    f.finish()
}

/// Why a decode failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended before the value it promised.
    Truncated {
        /// Bytes needed by the read.
        needed: usize,
        /// Bytes remaining in the input.
        remaining: usize,
    },
    /// A tag or enum discriminant held an unknown value.
    BadTag {
        /// What was being decoded.
        what: &'static str,
        /// The offending value.
        value: u64,
    },
    /// A length prefix exceeded a sanity bound.
    BadLength {
        /// What was being decoded.
        what: &'static str,
        /// The offending length.
        len: u64,
    },
    /// A string field held invalid UTF-8.
    BadUtf8,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { needed, remaining } => {
                write!(
                    f,
                    "input truncated: needed {needed} bytes, {remaining} remain"
                )
            }
            CodecError::BadTag { what, value } => write!(f, "bad {what} tag {value}"),
            CodecError::BadLength { what, len } => write!(f, "implausible {what} length {len}"),
            CodecError::BadUtf8 => f.write_str("invalid utf-8 in string field"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Little-endian binary writer over a growable buffer.
#[derive(Debug, Clone, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Take the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// The encoded bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u16`, little-endian.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f64` as its IEEE-754 bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append a length-prefixed (`u32`) byte string.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_u32(bytes.len() as u32);
        self.buf.extend_from_slice(bytes);
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }
}

/// Bounds-checked reader over a byte slice.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over `data`.
    pub fn new(data: &'a [u8]) -> Self {
        ByteReader { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether the input is exhausted.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Current read offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u16`.
    pub fn get_u16(&mut self) -> Result<u16, CodecError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Read an `f64` from its bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Read a length-prefixed byte string.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let len = self.get_u32()? as usize;
        if len > self.remaining() {
            return Err(CodecError::BadLength {
                what: "byte string",
                len: len as u64,
            });
        }
        self.take(len)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<&'a str, CodecError> {
        std::str::from_utf8(self.get_bytes()?).map_err(|_| CodecError::BadUtf8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u16(0xBEEF);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(0x0123_4567_89AB_CDEF);
        w.put_f64(0.25);
        w.put_str("hello, shard");
        w.put_bytes(&[1, 2, 3]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u16().unwrap(), 0xBEEF);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.get_f64().unwrap(), 0.25);
        assert_eq!(r.get_str().unwrap(), "hello, shard");
        assert_eq!(r.get_bytes().unwrap(), &[1, 2, 3]);
        assert!(r.is_empty());
    }

    #[test]
    fn truncated_reads_error_not_panic() {
        let mut r = ByteReader::new(&[1, 2]);
        assert!(matches!(
            r.get_u64(),
            Err(CodecError::Truncated {
                needed: 8,
                remaining: 2
            })
        ));
        // Position unchanged on failure path? take() only advances on success.
        assert_eq!(r.remaining(), 2);
    }

    #[test]
    fn oversized_length_prefix_rejected() {
        let mut w = ByteWriter::new();
        w.put_u32(1_000_000); // claims a megabyte that isn't there
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(matches!(r.get_bytes(), Err(CodecError::BadLength { .. })));
    }

    #[test]
    fn fnv_matches_incremental_and_oneshot() {
        let mut f = Fnv64::new();
        f.write(b"abc");
        assert_eq!(f.finish(), fnv64(b"abc"));
        assert_ne!(fnv64(b"abc"), fnv64(b"abd"));
    }

    #[test]
    fn str_hash_is_length_prefixed() {
        let mut a = Fnv64::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Fnv64::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }
}
