//! Shared seeded fault sampling.
//!
//! Every fault injector in the workspace — the simulated network's
//! per-exchange faults, the hostile-web overlay, and the dataset store's
//! fault-injecting backend — needs the same primitive: a deterministic
//! "does fault X fire at coordinate Y?" decision that is a *pure function*
//! of its coordinates, never of shared RNG state. Purity is what makes
//! fault schedules thread-invariant (work stealing cannot change which
//! operations fault) and crash sweeps enumerable (the k-th operation faults
//! identically on every run).
//!
//! The sampler hashes `(seed, ctx, label, index, salt)` through SplitMix64
//! finalization:
//!
//! - `seed` — the injector's master seed;
//! - `ctx` — a scoping value (fault context, crash epoch), so schedules
//!   reset cleanly between phases;
//! - `label` — the entity under fault (a host name, an operation site);
//! - `index` — the per-entity event counter (exchange number, op number);
//! - `salt` — distinguishes independent decisions at the same coordinate.

use crate::rng::hash_label;

/// Mix fault coordinates into a single 64-bit value.
#[inline]
fn fault_mix(seed: u64, ctx: u64, label: &str, index: u64, salt: u64) -> u64 {
    let mut z = seed
        .wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add(ctx.rotate_left(23))
        .wrapping_add(hash_label(label))
        .wrapping_add(index.wrapping_mul(0xD1B54A32D192ED03))
        .wrapping_add(salt);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Uniform sample in `[0, 1)` derived purely from the fault coordinates.
pub fn fault_sample(seed: u64, ctx: u64, label: &str, index: u64, salt: u64) -> f64 {
    (fault_mix(seed, ctx, label, index, salt) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Whether a fault with probability `chance` fires at these coordinates.
pub fn fault_fires(seed: u64, ctx: u64, label: &str, index: u64, salt: u64, chance: f64) -> bool {
    chance > 0.0 && fault_sample(seed, ctx, label, index, salt) < chance
}

/// Deterministic choice in `0..=bound`, uniform over the range.
///
/// Used where an injected fault needs a *magnitude*, not just a yes/no:
/// how many bytes of a torn write survive a simulated power cut, how many
/// pending directory operations a crashed filesystem managed to journal.
pub fn fault_choice(
    seed: u64,
    ctx: u64,
    label: &str,
    index: u64,
    salt: u64,
    bound: usize,
) -> usize {
    if bound == 0 {
        return 0;
    }
    // Multiply-shift reduction avoids modulo bias well past any bound a
    // torn write can reach.
    let z = fault_mix(seed, ctx, label, index, salt);
    (((z as u128) * (bound as u128 + 1)) >> 64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_is_pure_and_in_range() {
        for i in 0..1000 {
            let a = fault_sample(7, 3, "host-a", i, 0x5A17);
            let b = fault_sample(7, 3, "host-a", i, 0x5A17);
            assert_eq!(a, b, "same coordinates, same sample");
            assert!((0.0..1.0).contains(&a));
        }
    }

    #[test]
    fn coordinates_are_independent() {
        let base = fault_sample(7, 3, "host-a", 5, 1);
        assert_ne!(base, fault_sample(8, 3, "host-a", 5, 1), "seed");
        assert_ne!(base, fault_sample(7, 4, "host-a", 5, 1), "ctx");
        assert_ne!(base, fault_sample(7, 3, "host-b", 5, 1), "label");
        assert_ne!(base, fault_sample(7, 3, "host-a", 6, 1), "index");
        assert_ne!(base, fault_sample(7, 3, "host-a", 5, 2), "salt");
    }

    #[test]
    fn fires_matches_probability() {
        let n = 100_000;
        let hits = (0..n)
            .filter(|&i| fault_fires(42, 0, "op", i, 9, 0.25))
            .count();
        let p = hits as f64 / n as f64;
        assert!((p - 0.25).abs() < 0.01, "p = {p}");
        assert!(
            !fault_fires(42, 0, "op", 0, 9, 0.0),
            "zero chance never fires"
        );
    }

    #[test]
    fn choice_covers_inclusive_range() {
        let mut seen = [false; 5];
        for i in 0..500 {
            let c = fault_choice(1, 2, "tear", i, 3, 4);
            assert!(c <= 4);
            seen[c] = true;
        }
        assert!(seen.iter().all(|&s| s), "all of 0..=4 reachable");
        assert_eq!(fault_choice(1, 2, "tear", 0, 3, 0), 0, "bound 0 is 0");
    }
}
