//! Strongly typed index newtypes.
//!
//! Arena-style data structures throughout the workspace (DOM nodes, features,
//! standards, sites, hosts, connections) index into vectors. [`define_id!`]
//! generates a `u32` newtype per entity so indices can't be mixed up.

/// Define a `u32`-backed index newtype with `new`, `index`, `Display`, and
/// ordering.
///
/// # Examples
///
/// ```
/// bfu_util::define_id!(WidgetId, "widget");
/// let w = WidgetId::new(3);
/// assert_eq!(w.index(), 3);
/// assert_eq!(w.to_string(), "widget#3");
/// ```
#[macro_export]
macro_rules! define_id {
    ($(#[$meta:meta])* $name:ident, $tag:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(u32);

        impl $name {
            /// Wrap a raw index.
            pub const fn new(ix: u32) -> Self {
                $name(ix)
            }

            /// Wrap a `usize` index (panics if it exceeds `u32::MAX`).
            pub fn from_usize(ix: usize) -> Self {
                $name(u32::try_from(ix).expect("index overflow"))
            }

            /// The raw index as `usize`, for slice access.
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// The raw index as `u32`.
            pub const fn raw(self) -> u32 {
                self.0
            }
        }

        impl ::std::fmt::Display for $name {
            fn fmt(&self, f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {
                write!(f, concat!($tag, "#{}"), self.0)
            }
        }
    };
}

#[cfg(test)]
mod tests {
    define_id!(TestId, "test");

    #[test]
    fn roundtrip() {
        let id = TestId::from_usize(41);
        assert_eq!(id.index(), 41);
        assert_eq!(id.raw(), 41);
        assert_eq!(id, TestId::new(41));
        assert_eq!(id.to_string(), "test#41");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(TestId::new(1) < TestId::new(2));
    }
}
