//! String interning.
//!
//! Feature names, standard abbreviations, URL components, and DOM tag/attr
//! names are repeated millions of times across a crawl; interning them turns
//! comparisons into integer equality and slashes memory.

use std::collections::HashMap;

/// Handle to an interned string.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(u32);

impl Symbol {
    /// The raw table index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A deduplicating string table.
///
/// # Examples
///
/// ```
/// use bfu_util::Interner;
/// let mut i = Interner::new();
/// let a = i.intern("createElement");
/// let b = i.intern("createElement");
/// assert_eq!(a, b);
/// assert_eq!(i.resolve(a), "createElement");
/// ```
#[derive(Debug, Default, Clone)]
pub struct Interner {
    map: HashMap<String, Symbol>,
    strings: Vec<String>,
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a string, returning its (possibly pre-existing) symbol.
    pub fn intern(&mut self, s: &str) -> Symbol {
        if let Some(&sym) = self.map.get(s) {
            return sym;
        }
        let sym = Symbol(u32::try_from(self.strings.len()).expect("interner overflow"));
        self.strings.push(s.to_owned());
        self.map.insert(s.to_owned(), sym);
        sym
    }

    /// Look up a symbol without interning. `None` if never interned.
    pub fn get(&self, s: &str) -> Option<Symbol> {
        self.map.get(s).copied()
    }

    /// The string for a symbol. Panics on a symbol from another interner.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.strings[sym.index()]
    }

    /// Number of distinct strings interned.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether the interner is empty.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup() {
        let mut i = Interner::new();
        let a = i.intern("x");
        let b = i.intern("y");
        let c = i.intern("x");
        assert_eq!(a, c);
        assert_ne!(a, b);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn resolve_roundtrip() {
        let mut i = Interner::new();
        let syms: Vec<_> = ["foo", "bar", "baz"].iter().map(|s| i.intern(s)).collect();
        assert_eq!(i.resolve(syms[0]), "foo");
        assert_eq!(i.resolve(syms[1]), "bar");
        assert_eq!(i.resolve(syms[2]), "baz");
    }

    #[test]
    fn get_does_not_intern() {
        let mut i = Interner::new();
        assert!(i.get("nope").is_none());
        i.intern("yes");
        assert!(i.get("yes").is_some());
        assert_eq!(i.len(), 1);
    }
}
