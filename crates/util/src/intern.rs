//! String interning.
//!
//! Feature names, standard abbreviations, URL components, and DOM tag/attr
//! names are repeated millions of times across a crawl; interning them turns
//! comparisons into integer equality and slashes memory.

use std::collections::HashMap;
use std::sync::{OnceLock, RwLock};

/// Handle to a string in the process-wide atom table.
///
/// Unlike [`Symbol`], which belongs to one [`Interner`] instance, an `Atom`
/// is valid everywhere in the process: two `Atom`s compare equal iff their
/// strings are equal, regardless of which thread interned them. This is what
/// lets the script engine compile identifiers and property names down to
/// `u32` comparisons while sharing parsed programs across worker threads.
///
/// Atom *ids* depend on interning order, which depends on thread scheduling.
/// They are therefore only ever used for equality and hashing — never for
/// ordering or output. Anything user-visible resolves back to the string
/// (see [`Atom::as_str`]) and sorts by that.
///
/// # Examples
///
/// ```
/// use bfu_util::Atom;
/// let a = Atom::intern("querySelector");
/// let b = Atom::intern("querySelector");
/// assert_eq!(a, b);
/// assert_eq!(a.as_str(), "querySelector");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Atom(u32);

/// The process-wide atom table. Strings are leaked on first intern so
/// resolution is a plain slice index returning `&'static str`; the table is
/// bounded by the set of distinct identifiers/property names the workload
/// produces (script sources are generated from a finite template pool, so
/// this is small and stable in practice).
struct AtomTable {
    map: HashMap<&'static str, Atom>,
    strings: Vec<&'static str>,
}

fn atom_table() -> &'static RwLock<AtomTable> {
    static TABLE: OnceLock<RwLock<AtomTable>> = OnceLock::new();
    TABLE.get_or_init(|| {
        RwLock::new(AtomTable {
            map: HashMap::new(),
            strings: Vec::new(),
        })
    })
}

impl Atom {
    /// Intern a string in the global table. Read-lock fast path for strings
    /// already present; write lock (with a re-check, since another thread may
    /// have won the race) only for first sightings.
    pub fn intern(s: &str) -> Atom {
        let table = atom_table();
        if let Ok(t) = table.read() {
            if let Some(&atom) = t.map.get(s) {
                return atom;
            }
        }
        let mut t = match table.write() {
            Ok(t) => t,
            Err(poisoned) => poisoned.into_inner(),
        };
        if let Some(&atom) = t.map.get(s) {
            return atom;
        }
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let atom = Atom(u32::try_from(t.strings.len()).unwrap_or(u32::MAX));
        t.strings.push(leaked);
        t.map.insert(leaked, atom);
        atom
    }

    /// Look up a string without interning it. `None` means no atom for this
    /// string exists anywhere in the process — useful for read paths (e.g.
    /// property lookups of absent keys) that must not grow the table.
    pub fn get(s: &str) -> Option<Atom> {
        let t = match atom_table().read() {
            Ok(t) => t,
            Err(poisoned) => poisoned.into_inner(),
        };
        t.map.get(s).copied()
    }

    /// The interned string. O(1); valid for the life of the process.
    pub fn as_str(self) -> &'static str {
        let t = match atom_table().read() {
            Ok(t) => t,
            Err(poisoned) => poisoned.into_inner(),
        };
        t.strings.get(self.0 as usize).copied().unwrap_or("")
    }

    /// The raw table index. For diagnostics only — ids are scheduling-
    /// dependent and must never influence measured output.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for Atom {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Handle to an interned string.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(u32);

impl Symbol {
    /// The raw table index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A deduplicating string table.
///
/// # Examples
///
/// ```
/// use bfu_util::Interner;
/// let mut i = Interner::new();
/// let a = i.intern("createElement");
/// let b = i.intern("createElement");
/// assert_eq!(a, b);
/// assert_eq!(i.resolve(a), "createElement");
/// ```
#[derive(Debug, Default, Clone)]
pub struct Interner {
    map: HashMap<String, Symbol>,
    strings: Vec<String>,
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a string, returning its (possibly pre-existing) symbol.
    pub fn intern(&mut self, s: &str) -> Symbol {
        if let Some(&sym) = self.map.get(s) {
            return sym;
        }
        let sym = Symbol(u32::try_from(self.strings.len()).expect("interner overflow"));
        self.strings.push(s.to_owned());
        self.map.insert(s.to_owned(), sym);
        sym
    }

    /// Look up a symbol without interning. `None` if never interned.
    pub fn get(&self, s: &str) -> Option<Symbol> {
        self.map.get(s).copied()
    }

    /// The string for a symbol. Panics on a symbol from another interner.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.strings[sym.index()]
    }

    /// Number of distinct strings interned.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether the interner is empty.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup() {
        let mut i = Interner::new();
        let a = i.intern("x");
        let b = i.intern("y");
        let c = i.intern("x");
        assert_eq!(a, c);
        assert_ne!(a, b);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn resolve_roundtrip() {
        let mut i = Interner::new();
        let syms: Vec<_> = ["foo", "bar", "baz"].iter().map(|s| i.intern(s)).collect();
        assert_eq!(i.resolve(syms[0]), "foo");
        assert_eq!(i.resolve(syms[1]), "bar");
        assert_eq!(i.resolve(syms[2]), "baz");
    }

    #[test]
    fn atoms_are_global_and_stable() {
        let a = Atom::intern("globalAtomTest");
        let b = Atom::intern("globalAtomTest");
        let c = Atom::intern("globalAtomTestOther");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.as_str(), "globalAtomTest");
        assert_eq!(c.as_str(), "globalAtomTestOther");
    }

    #[test]
    fn atoms_agree_across_threads() {
        let here = Atom::intern("crossThreadAtom");
        let there = std::thread::spawn(|| Atom::intern("crossThreadAtom"))
            .join()
            .unwrap();
        assert_eq!(here, there);
    }

    #[test]
    fn get_does_not_intern() {
        let mut i = Interner::new();
        assert!(i.get("nope").is_none());
        i.intern("yes");
        assert!(i.get("yes").is_some());
        assert_eq!(i.len(), 1);
    }
}
