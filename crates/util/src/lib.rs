//! # bfu-util
//!
//! Foundation utilities shared by every crate in the Browser Feature Usage
//! reproduction: a deterministic, forkable random number generator, discrete
//! samplers (Zipf, geometric, weighted), a virtual clock for simulated time,
//! descriptive statistics (histograms, CDFs, percentiles), a string
//! interner, the binary codec + FNV-64 checksums backing the on-disk
//! dataset store, and the shared seeded fault sampler every fault injector
//! (network, hostile web, storage) derives its schedule from.
//!
//! Everything in this crate is deterministic: the same seed always produces
//! the same sequence, on every platform. No wall-clock time, no OS entropy.

pub mod clock;
pub mod codec;
pub mod fault;
pub mod ids;
pub mod intern;
pub mod rng;
pub mod sample;
pub mod stats;

pub use clock::{Instant, VirtualClock};
pub use codec::{fnv64, ByteReader, ByteWriter, CodecError, Fnv64};
pub use fault::{fault_choice, fault_fires, fault_sample};
pub use intern::{Atom, Interner, Symbol};
pub use rng::{hash_label, SimRng};
pub use sample::{GeometricWeights, WeightedIndex, Zipf};
pub use stats::{cdf_points, mean, percentile, Histogram};
