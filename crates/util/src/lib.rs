//! # bfu-util
//!
//! Foundation utilities shared by every crate in the Browser Feature Usage
//! reproduction: a deterministic, forkable random number generator, discrete
//! samplers (Zipf, geometric, weighted), a virtual clock for simulated time,
//! descriptive statistics (histograms, CDFs, percentiles), and a string
//! interner.
//!
//! Everything in this crate is deterministic: the same seed always produces
//! the same sequence, on every platform. No wall-clock time, no OS entropy.

pub mod clock;
pub mod ids;
pub mod intern;
pub mod rng;
pub mod sample;
pub mod stats;

pub use clock::{Instant, VirtualClock};
pub use intern::{Interner, Symbol};
pub use rng::{hash_label, SimRng};
pub use sample::{GeometricWeights, WeightedIndex, Zipf};
pub use stats::{cdf_points, mean, percentile, Histogram};
