//! Deterministic, forkable pseudo-random number generation.
//!
//! The whole study must be reproducible from a single seed, across runs and
//! platforms, and independent of any external crate's stream layout. We use a
//! self-contained PCG-XSH-RR 64/32 generator seeded through SplitMix64, with
//! hierarchical *forking*: any component can derive an independent stream from
//! a parent RNG plus a label, so adding randomness to one subsystem never
//! perturbs another.

/// A deterministic pseudo-random number generator (PCG-XSH-RR 64/32).
///
/// `SimRng` is intentionally not cryptographic. It is small, fast, and has
/// well-understood statistical quality, which is all a simulation needs.
///
/// # Examples
///
/// ```
/// use bfu_util::SimRng;
/// let mut a = SimRng::new(42);
/// let mut b = SimRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    state: u64,
    inc: u64,
}

const PCG_MULT: u64 = 6364136223846793005;

/// SplitMix64 step, used for seeding and label hashing.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Hash an arbitrary byte string to a 64-bit value (FNV-1a, then mixed).
///
/// Used to derive fork labels from strings; stable across platforms.
pub fn hash_label(label: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100000001b3);
    }
    let mut s = h;
    splitmix64(&mut s)
}

impl SimRng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let state = splitmix64(&mut sm);
        let inc = splitmix64(&mut sm) | 1;
        let mut rng = SimRng { state: 0, inc };
        rng.state = state.wrapping_add(inc);
        rng.next_u32();
        rng
    }

    /// Derive an independent child generator from this one and a label.
    ///
    /// Forking does **not** advance the parent's stream, so the set of forks
    /// taken by one subsystem cannot perturb another subsystem's randomness.
    pub fn fork(&self, label: &str) -> SimRng {
        SimRng::new(
            self.state
                .wrapping_mul(PCG_MULT)
                .wrapping_add(hash_label(label)),
        )
    }

    /// Derive an independent child generator from this one and an index.
    pub fn fork_idx(&self, idx: u64) -> SimRng {
        SimRng::new(
            self.state.wrapping_mul(PCG_MULT)
                ^ idx.wrapping_mul(0x9E3779B97F4A7C15).rotate_left(17),
        )
    }

    /// Next 32 random bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        (u64::from(self.next_u32()) << 32) | u64::from(self.next_u32())
    }

    /// Uniform integer in `[0, bound)`. `bound` must be nonzero.
    ///
    /// Uses Lemire's multiply-shift rejection method: unbiased.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        loop {
            let x = self.next_u64();
            let (hi, lo) = {
                let m = u128::from(x) * u128::from(bound);
                ((m >> 64) as u64, m as u64)
            };
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return hi;
            }
        }
    }

    /// Uniform integer in `[lo, hi)` (half-open). Panics if `lo >= hi`.
    #[inline]
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below(hi - lo)
    }

    /// Uniform `usize` in `[0, bound)`.
    #[inline]
    pub fn below_usize(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial: `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.f64() < p
        }
    }

    /// Pick a uniformly random element of a slice, or `None` if empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.below_usize(items.len())])
        }
    }

    /// Fisher-Yates shuffle in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below_usize(i + 1);
            items.swap(i, j);
        }
    }

    /// Sample `k` distinct indices from `[0, n)` (reservoir when k < n).
    ///
    /// Result order is deterministic but unspecified. If `k >= n`, returns
    /// `0..n` shuffled.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        if k >= n {
            let mut all: Vec<usize> = (0..n).collect();
            self.shuffle(&mut all);
            return all;
        }
        // Floyd's algorithm for distinct samples.
        let mut chosen: Vec<usize> = Vec::with_capacity(k);
        for j in (n - k)..n {
            let t = self.below_usize(j + 1);
            if chosen.contains(&t) {
                chosen.push(j);
            } else {
                chosen.push(t);
            }
        }
        self.shuffle(&mut chosen);
        chosen
    }

    /// Exponentially distributed sample with the given mean (for latency).
    pub fn exp(&mut self, mean: f64) -> f64 {
        let u = 1.0 - self.f64(); // avoid ln(0)
        -mean * u.ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn fork_is_independent_of_parent_consumption() {
        let parent = SimRng::new(99);
        let mut f1 = parent.fork("sites");
        let mut parent2 = parent.clone();
        parent2.next_u64();
        // fork taken before vs after parent consumption is the same, because
        // forking reads state without advancing.
        let mut f2 = parent.fork("sites");
        assert_eq!(f1.next_u64(), f2.next_u64());
        let _ = parent2;
    }

    #[test]
    fn forks_with_different_labels_differ() {
        let parent = SimRng::new(5);
        let mut a = parent.fork("a");
        let mut b = parent.fork("b");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = SimRng::new(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let x = rng.below(10) as usize;
            assert!(x < 10);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SimRng::new(11);
        for _ in 0..1000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::new(1);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-1.0));
        assert!(rng.chance(2.0));
    }

    #[test]
    fn chance_mean_approximates_p() {
        let mut rng = SimRng::new(21);
        let hits = (0..10_000).filter(|_| rng.chance(0.3)).count();
        let p = hits as f64 / 10_000.0;
        assert!((p - 0.3).abs() < 0.02, "p = {p}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::new(8);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "50! odds say no");
    }

    #[test]
    fn sample_indices_distinct() {
        let mut rng = SimRng::new(13);
        for _ in 0..50 {
            let s = rng.sample_indices(20, 5);
            assert_eq!(s.len(), 5);
            let mut d = s.clone();
            d.sort_unstable();
            d.dedup();
            assert_eq!(d.len(), 5);
            assert!(s.iter().all(|&i| i < 20));
        }
    }

    #[test]
    fn sample_indices_k_ge_n() {
        let mut rng = SimRng::new(13);
        let mut s = rng.sample_indices(4, 10);
        s.sort_unstable();
        assert_eq!(s, vec![0, 1, 2, 3]);
    }

    #[test]
    fn exp_mean() {
        let mut rng = SimRng::new(17);
        let n = 20_000;
        let total: f64 = (0..n).map(|_| rng.exp(5.0)).sum();
        let mean = total / n as f64;
        assert!((mean - 5.0).abs() < 0.2, "mean = {mean}");
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = SimRng::new(1);
        let empty: [u8; 0] = [];
        assert!(rng.choose(&empty).is_none());
    }
}
