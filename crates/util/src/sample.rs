//! Discrete probability samplers used by the synthetic-web generator.
//!
//! - [`Zipf`]: rank-frequency sampling for Alexa-style traffic (the paper
//!   weighs standards by site *visits* in Fig. 5, which follow a power law).
//! - [`GeometricWeights`]: decaying per-feature popularity within a standard
//!   (the paper observes a standard's popularity equals its most popular
//!   feature's popularity, with a long in-standard tail).
//! - [`WeightedIndex`]: general categorical sampling via cumulative sums.

use crate::rng::SimRng;

/// Zipf distribution over ranks `1..=n` with exponent `s`.
///
/// `weight(rank) ∝ 1 / rank^s`. Provides both exact weights (for analysis)
/// and sampling (for traffic generation).
#[derive(Debug, Clone)]
pub struct Zipf {
    n: usize,
    s: f64,
    /// Cumulative normalized weights, cum[i] = P(rank <= i+1).
    cum: Vec<f64>,
}

impl Zipf {
    /// Construct a Zipf distribution with `n` ranks and exponent `s > 0`.
    ///
    /// Panics if `n == 0` or `s` is not finite and positive.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s.is_finite() && s > 0.0, "Zipf exponent must be positive");
        let mut cum = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 1..=n {
            total += (rank as f64).powf(-s);
            cum.push(total);
        }
        for c in &mut cum {
            *c /= total;
        }
        Zipf { n, s, cum }
    }

    /// Number of ranks.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The exponent.
    pub fn exponent(&self) -> f64 {
        self.s
    }

    /// Normalized weight of `rank` (1-based).
    pub fn weight(&self, rank: usize) -> f64 {
        assert!((1..=self.n).contains(&rank));
        if rank == 1 {
            self.cum[0]
        } else {
            self.cum[rank - 1] - self.cum[rank - 2]
        }
    }

    /// Sample a rank (1-based) via binary search on the CDF.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let u = rng.f64();
        match self
            .cum
            .binary_search_by(|c| c.partial_cmp(&u).expect("NaN in CDF"))
        {
            Ok(i) => i + 2.min(self.n), // exact hit: next rank (clamped)
            Err(i) => i + 1,
        }
        .min(self.n)
    }
}

/// Geometrically decaying weights: `w_i = r^i` for `i` in `0..n`.
///
/// Used for feature popularity *within* a standard: the first feature is the
/// standard's flagship (e.g. `Document.prototype.createElement` within DOM),
/// later features decay by ratio `r`.
#[derive(Debug, Clone)]
pub struct GeometricWeights {
    weights: Vec<f64>,
}

impl GeometricWeights {
    /// `n` weights with decay ratio `r` in `(0, 1]`.
    pub fn new(n: usize, r: f64) -> Self {
        assert!(r > 0.0 && r <= 1.0, "decay ratio must be in (0,1]");
        let mut weights = Vec::with_capacity(n);
        let mut w = 1.0;
        for _ in 0..n {
            weights.push(w);
            w *= r;
        }
        GeometricWeights { weights }
    }

    /// The raw (unnormalized) weight of index `i`.
    pub fn weight(&self, i: usize) -> f64 {
        self.weights[i]
    }

    /// All raw weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Number of weights.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Whether there are no weights.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }
}

/// Categorical sampler over arbitrary non-negative weights.
///
/// # Examples
///
/// ```
/// use bfu_util::{SimRng, WeightedIndex};
/// let w = WeightedIndex::new(&[0.0, 1.0, 3.0]).unwrap();
/// let mut rng = SimRng::new(1);
/// let i = w.sample(&mut rng);
/// assert!(i == 1 || i == 2); // index 0 has zero weight
/// ```
#[derive(Debug, Clone)]
pub struct WeightedIndex {
    cum: Vec<f64>,
    total: f64,
}

impl WeightedIndex {
    /// Build from a slice of non-negative weights. Returns `None` if the
    /// slice is empty, contains a negative/NaN weight, or sums to zero.
    pub fn new(weights: &[f64]) -> Option<Self> {
        if weights.is_empty() {
            return None;
        }
        let mut cum = Vec::with_capacity(weights.len());
        let mut total = 0.0;
        for &w in weights {
            if !w.is_finite() || w < 0.0 {
                return None;
            }
            total += w;
            cum.push(total);
        }
        if total <= 0.0 {
            return None;
        }
        Some(WeightedIndex { cum, total })
    }

    /// Sample an index proportionally to its weight.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let u = rng.f64() * self.total;
        match self
            .cum
            .binary_search_by(|c| c.partial_cmp(&u).expect("NaN in CDF"))
        {
            Ok(i) | Err(i) => i.min(self.cum.len() - 1),
        }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.cum.len()
    }

    /// Whether there are no categories.
    pub fn is_empty(&self) -> bool {
        self.cum.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_weights_normalize_and_decay() {
        let z = Zipf::new(100, 1.0);
        let total: f64 = (1..=100).map(|r| z.weight(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(z.weight(1) > z.weight(2));
        assert!(z.weight(2) > z.weight(50));
    }

    #[test]
    fn zipf_sampling_matches_weights() {
        let z = Zipf::new(10, 1.2);
        let mut rng = SimRng::new(42);
        let mut counts = [0usize; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[z.sample(&mut rng) - 1] += 1;
        }
        for rank in 1..=10 {
            let expected = z.weight(rank);
            let got = counts[rank - 1] as f64 / n as f64;
            assert!(
                (expected - got).abs() < 0.01,
                "rank {rank}: expected {expected:.4}, got {got:.4}"
            );
        }
    }

    #[test]
    fn zipf_single_rank() {
        let z = Zipf::new(1, 1.0);
        let mut rng = SimRng::new(1);
        assert_eq!(z.sample(&mut rng), 1);
        assert!((z.weight(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn geometric_decays() {
        let g = GeometricWeights::new(5, 0.5);
        assert_eq!(g.len(), 5);
        assert!((g.weight(0) - 1.0).abs() < 1e-12);
        assert!((g.weight(1) - 0.5).abs() < 1e-12);
        assert!((g.weight(4) - 0.0625).abs() < 1e-12);
    }

    #[test]
    fn geometric_flat_at_one() {
        let g = GeometricWeights::new(3, 1.0);
        assert!(g.weights().iter().all(|&w| (w - 1.0).abs() < 1e-12));
    }

    #[test]
    fn weighted_index_rejects_bad_input() {
        assert!(WeightedIndex::new(&[]).is_none());
        assert!(WeightedIndex::new(&[0.0, 0.0]).is_none());
        assert!(WeightedIndex::new(&[1.0, -1.0]).is_none());
        assert!(WeightedIndex::new(&[f64::NAN]).is_none());
    }

    #[test]
    fn weighted_index_never_picks_zero_weight() {
        let w = WeightedIndex::new(&[0.0, 1.0, 0.0, 2.0]).unwrap();
        let mut rng = SimRng::new(9);
        for _ in 0..5000 {
            let i = w.sample(&mut rng);
            assert!(i == 1 || i == 3, "picked zero-weight index {i}");
        }
    }

    #[test]
    fn weighted_index_proportions() {
        let w = WeightedIndex::new(&[1.0, 3.0]).unwrap();
        let mut rng = SimRng::new(4);
        let n = 40_000;
        let ones = (0..n).filter(|_| w.sample(&mut rng) == 1).count();
        let p = ones as f64 / n as f64;
        assert!((p - 0.75).abs() < 0.02, "p = {p}");
    }
}
