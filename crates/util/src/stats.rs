//! Descriptive statistics for the analysis pipeline.
//!
//! The paper's figures are CDFs (Fig. 3), PDFs/histograms (Figs. 8, 9), and
//! scatter summaries; this module provides the numeric building blocks.

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// The `p`-th percentile (0-100) using nearest-rank on a sorted copy.
///
/// Returns `None` for an empty slice; panics if `p` is outside `[0, 100]`.
pub fn percentile(xs: &[f64], p: f64) -> Option<f64> {
    assert!((0.0..=100.0).contains(&p), "percentile out of range");
    if xs.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in data"));
    if p == 0.0 {
        return Some(sorted[0]);
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    Some(sorted[rank.clamp(1, sorted.len()) - 1])
}

/// Empirical CDF: returns `(value, fraction ≤ value)` at each distinct value.
pub fn cdf_points(xs: &[f64]) -> Vec<(f64, f64)> {
    if xs.is_empty() {
        return Vec::new();
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in data"));
    let n = sorted.len() as f64;
    let mut out: Vec<(f64, f64)> = Vec::new();
    for (i, &v) in sorted.iter().enumerate() {
        let frac = (i + 1) as f64 / n;
        match out.last_mut() {
            Some(last) if last.0 == v => last.1 = frac,
            _ => out.push((v, frac)),
        }
    }
    out
}

/// A fixed-width-bin histogram over `[lo, hi)`.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
    /// Samples below `lo` or at/above `hi`.
    outliers: u64,
}

impl Histogram {
    /// `bins` equal-width bins spanning `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0 && hi > lo);
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
            outliers: 0,
        }
    }

    /// Record one sample.
    pub fn add(&mut self, x: f64) {
        if x < self.lo || x >= self.hi || !x.is_finite() {
            self.outliers += 1;
            return;
        }
        let nbins = self.counts.len();
        let i = (((x - self.lo) / (self.hi - self.lo)) * nbins as f64) as usize;
        self.counts[i.min(nbins - 1)] += 1;
        self.total += 1;
    }

    /// Record many samples.
    pub fn extend(&mut self, xs: impl IntoIterator<Item = f64>) {
        for x in xs {
            self.add(x);
        }
    }

    /// Raw bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total in-range samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Samples that fell outside `[lo, hi)`.
    pub fn outliers(&self) -> u64 {
        self.outliers
    }

    /// `(bin_center, fraction_of_total)` per bin; fractions are 0 when empty.
    pub fn density(&self) -> Vec<(f64, f64)> {
        let bins = self.counts.len();
        let width = (self.hi - self.lo) / bins as f64;
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let center = self.lo + (i as f64 + 0.5) * width;
                let frac = if self.total == 0 {
                    0.0
                } else {
                    c as f64 / self.total as f64
                };
                (center, frac)
            })
            .collect()
    }

    /// Index of the fullest bin (first on ties), or `None` if empty.
    pub fn mode_bin(&self) -> Option<usize> {
        if self.total == 0 {
            return None;
        }
        let mut best = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            if c > self.counts[best] {
                best = i;
            }
        }
        Some(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }

    #[test]
    fn percentile_nearest_rank() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&xs, 0.0), Some(1.0));
        assert_eq!(percentile(&xs, 50.0), Some(3.0));
        assert_eq!(percentile(&xs, 100.0), Some(5.0));
        assert_eq!(percentile(&[], 50.0), None);
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let xs = [3.0, 1.0, 2.0, 2.0];
        let cdf = cdf_points(&xs);
        assert_eq!(cdf.len(), 3); // distinct values
        for w in cdf.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
        // duplicate value 2.0 gets cumulative fraction 3/4
        assert!((cdf[1].1 - 0.75).abs() < 1e-12);
    }

    #[test]
    fn histogram_bins_and_outliers() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.extend([0.5, 1.5, 2.5, 2.6, 11.0, -1.0]);
        assert_eq!(h.total(), 4);
        assert_eq!(h.outliers(), 2);
        assert_eq!(h.counts(), &[2, 2, 0, 0, 0]);
        assert_eq!(h.mode_bin(), Some(0));
    }

    #[test]
    fn histogram_density_sums_to_one() {
        let mut h = Histogram::new(0.0, 1.0, 10);
        for i in 0..100 {
            h.add(i as f64 / 100.0);
        }
        let sum: f64 = h.density().iter().map(|(_, f)| f).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_empty_mode() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert_eq!(h.mode_bin(), None);
    }
}
