//! Alexa-style site ranking: domains, categories, and traffic weights.
//!
//! The paper uses the Alexa top 10k (≈⅓ of all web visits) and, for Fig. 5,
//! weighs standards by *visits* rather than sites. We reproduce the ranking
//! as a Zipf traffic distribution over generated domains with a category mix
//! that shapes each site's template and feature appetite.

use bfu_util::{define_id, SimRng, Zipf};

define_id!(
    /// A site's index in the ranking (0 = most popular).
    SiteId,
    "site"
);

/// Editorial category of a site; shapes templates and feature usage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SiteCategory {
    /// News / publishing — ad heavy.
    News,
    /// E-commerce — analytics heavy, forms.
    Shopping,
    /// Video / media — media APIs, heavy pages.
    Video,
    /// Social / community.
    Social,
    /// Personal blogs — light.
    Blog,
    /// Technology / SaaS.
    Tech,
    /// Reference / documentation — often script-light.
    Reference,
    /// Portal / search.
    Portal,
}

impl SiteCategory {
    /// All categories with their share of the ranking.
    pub fn mix() -> &'static [(SiteCategory, f64)] {
        &[
            (SiteCategory::News, 0.22),
            (SiteCategory::Shopping, 0.18),
            (SiteCategory::Video, 0.10),
            (SiteCategory::Social, 0.08),
            (SiteCategory::Blog, 0.12),
            (SiteCategory::Tech, 0.12),
            (SiteCategory::Reference, 0.10),
            (SiteCategory::Portal, 0.08),
        ]
    }

    /// Multiplier on a site's appetite for advertising parties.
    pub fn ad_appetite(self) -> f64 {
        match self {
            SiteCategory::News => 1.5,
            SiteCategory::Video => 1.3,
            SiteCategory::Portal => 1.1,
            SiteCategory::Shopping => 1.0,
            SiteCategory::Social => 0.9,
            SiteCategory::Blog => 0.8,
            SiteCategory::Tech => 0.6,
            SiteCategory::Reference => 0.4,
        }
    }

    /// URL path sections characteristic of the category (the paper's crawl
    /// prefers unseen path segments; sections give sites real structure).
    pub fn sections(self) -> &'static [&'static str] {
        match self {
            SiteCategory::News => &["world", "politics", "sports", "business", "opinion", "tech"],
            SiteCategory::Shopping => &["products", "deals", "cart", "categories", "reviews"],
            SiteCategory::Video => &["watch", "channels", "trending", "live"],
            SiteCategory::Social => &["feed", "groups", "events", "profiles"],
            SiteCategory::Blog => &["posts", "archive", "about", "tags"],
            SiteCategory::Tech => &["docs", "blog", "pricing", "features"],
            SiteCategory::Reference => &["wiki", "articles", "topics", "search"],
            SiteCategory::Portal => &["mail", "news", "weather", "finance"],
        }
    }
}

/// One ranked site.
#[derive(Debug, Clone)]
pub struct RankedSite {
    /// Rank index (0 = most popular).
    pub id: SiteId,
    /// Registrable domain, e.g. `worldnews3.test`.
    pub domain: String,
    /// Category.
    pub category: SiteCategory,
    /// Normalized traffic share (Zipf over ranks).
    pub traffic_weight: f64,
}

/// The ranking.
#[derive(Debug, Clone)]
pub struct AlexaRanking {
    sites: Vec<RankedSite>,
}

const DOMAIN_STEMS: &[&str] = &[
    "worldnews",
    "dailybeat",
    "shopsphere",
    "megamart",
    "streamly",
    "vidhub",
    "friendbase",
    "chatterbox",
    "inkwell",
    "quillpost",
    "devforge",
    "stacklab",
    "wikidepth",
    "factbook",
    "portalone",
    "homebase",
    "brightfeed",
    "cartquick",
    "playreel",
    "newsroom",
];

impl AlexaRanking {
    /// Generate a ranking of `n` sites.
    pub fn generate(n: usize, rng: &SimRng) -> AlexaRanking {
        let mut rng = rng.fork("alexa");
        let zipf = Zipf::new(n.max(1), 0.9);
        let mix = SiteCategory::mix();
        let sites = (0..n)
            .map(|rank| {
                let stem = DOMAIN_STEMS[rng.below_usize(DOMAIN_STEMS.len())];
                let domain = format!("{stem}{rank}.test");
                // Category by mix shares.
                let mut u = rng.f64();
                let mut category = mix[0].0;
                for &(c, share) in mix {
                    if u < share {
                        category = c;
                        break;
                    }
                    u -= share;
                }
                RankedSite {
                    id: SiteId::from_usize(rank),
                    domain,
                    category,
                    traffic_weight: zipf.weight(rank + 1),
                }
            })
            .collect();
        AlexaRanking { sites }
    }

    /// Number of ranked sites.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// Whether the ranking is empty.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// All sites in rank order.
    pub fn sites(&self) -> &[RankedSite] {
        &self.sites
    }

    /// One site.
    pub fn site(&self, id: SiteId) -> &RankedSite {
        &self.sites[id.index()]
    }

    /// Rank-based usage boost: top sites use slightly more standards
    /// (the Fig. 5 effect). ~1.15 at rank 0 decaying to ~0.95 at the tail.
    pub fn usage_boost(&self, id: SiteId) -> f64 {
        let n = self.sites.len().max(2) as f64;
        let frac = id.index() as f64 / (n - 1.0);
        1.15 - 0.20 * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_n_sites_with_unique_domains() {
        let r = AlexaRanking::generate(500, &SimRng::new(2));
        assert_eq!(r.len(), 500);
        let mut d: Vec<&str> = r.sites().iter().map(|s| s.domain.as_str()).collect();
        d.sort_unstable();
        d.dedup();
        assert_eq!(d.len(), 500);
    }

    #[test]
    fn traffic_weights_zipf_normalized() {
        let r = AlexaRanking::generate(100, &SimRng::new(2));
        let total: f64 = r.sites().iter().map(|s| s.traffic_weight).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(r.sites()[0].traffic_weight > r.sites()[50].traffic_weight);
    }

    #[test]
    fn category_mix_roughly_respected() {
        let r = AlexaRanking::generate(5000, &SimRng::new(9));
        let news = r
            .sites()
            .iter()
            .filter(|s| s.category == SiteCategory::News)
            .count() as f64
            / 5000.0;
        assert!((news - 0.22).abs() < 0.05, "news share {news}");
    }

    #[test]
    fn usage_boost_decays_with_rank() {
        let r = AlexaRanking::generate(100, &SimRng::new(2));
        assert!(r.usage_boost(SiteId::new(0)) > r.usage_boost(SiteId::new(99)));
        assert!((r.usage_boost(SiteId::new(0)) - 1.15).abs() < 1e-9);
    }

    #[test]
    fn deterministic() {
        let a = AlexaRanking::generate(50, &SimRng::new(4));
        let b = AlexaRanking::generate(50, &SimRng::new(4));
        for (x, y) in a.sites().iter().zip(b.sites()) {
            assert_eq!(x.domain, y.domain);
            assert_eq!(x.category, y.category);
        }
    }

    #[test]
    fn category_shares_sum_to_one() {
        let total: f64 = SiteCategory::mix().iter().map(|(_, s)| s).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }
}
