//! Per-standard calibration priors, derived from the paper's Table 2.
//!
//! The generator's contract (DESIGN.md): per-standard usage *marginals*
//! (fraction of sites using ≥1 feature, block rate, ad-vs-tracker affinity)
//! come from the paper's published aggregates; everything downstream is
//! measured, not asserted. Feature popularity inside a standard decays
//! geometrically from the flagship — the paper observes a standard's
//! popularity equals its most popular feature's popularity — and a per-
//! standard `used_features` cutoff reproduces the long never-used tail
//! (§5.3: 689 of 1,392 features never execute).

use bfu_webidl::{StandardId, CATALOG};

/// Domains the paper actually measured (Table 1: 9,733 of the Alexa 10k).
pub const MEASURED_DOMAINS: f64 = 9733.0;

/// Calibration inputs for one standard.
#[derive(Debug, Clone)]
pub struct StandardPrior {
    /// Which standard.
    pub std: StandardId,
    /// Probability a site uses ≥ 1 feature of the standard.
    pub p_site: f64,
    /// Target fraction of using sites where *all* usage comes from blockable
    /// third parties (the paper's block rate).
    pub block_rate: f64,
    /// Of blocked usage, the share attributable to advertising parties (the
    /// rest goes to tracking parties). Drives Fig. 7.
    pub ad_affinity: f64,
    /// Number of the standard's features that appear anywhere on the web.
    pub used_features: u32,
    /// Geometric decay of in-standard feature popularity.
    pub feature_decay: f64,
}

/// Derive priors for all 75 standards.
pub fn priors() -> Vec<StandardPrior> {
    CATALOG
        .iter()
        .enumerate()
        .map(|(ix, info)| {
            let p_site = (f64::from(info.paper_sites) / MEASURED_DOMAINS).min(1.0);
            let n = info.features as usize;
            let used_features = if info.paper_sites == 0 {
                0
            } else {
                // ~20% of a standard's surface plus a popularity-driven
                // share; calibrated so the global never-used count lands
                // near the paper's 689/1392 (validated in tests).
                let frac = 0.2 + 0.5 * p_site.sqrt();
                ((n as f64 * frac).round() as u32).clamp(1, info.features)
            };
            // Decay chosen so the least popular *used* feature appears on
            // only a couple of sites.
            let feature_decay = if used_features <= 1 {
                0.5
            } else {
                let target_tail = 2.0 / (MEASURED_DOMAINS * p_site.max(1e-4));
                target_tail
                    .powf(1.0 / f64::from(used_features - 1))
                    .clamp(0.30, 0.97)
            };
            StandardPrior {
                std: StandardId::from_usize(ix),
                p_site,
                block_rate: info.paper_block_rate,
                ad_affinity: info.ad_affinity,
                used_features,
                feature_decay,
            }
        })
        .collect()
}

/// Expected number of standards per site (`Σ p_site`), used by tests to
/// check the Fig. 8 complexity window.
pub fn expected_standards_per_site(priors: &[StandardPrior]) -> f64 {
    priors.iter().map(|p| p.p_site).sum()
}

/// Expected number of never-used features across the whole registry.
pub fn expected_unused_features(priors: &[StandardPrior]) -> u32 {
    priors
        .iter()
        .map(|p| CATALOG[p.std.index()].features - p.used_features)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfu_webidl::catalog;

    #[test]
    fn priors_cover_all_standards() {
        let p = priors();
        assert_eq!(p.len(), 75);
        for pr in &p {
            assert!((0.0..=1.0).contains(&pr.p_site));
            assert!((0.0..=1.0).contains(&pr.block_rate));
            assert!((0.30..=0.97).contains(&pr.feature_decay));
            assert!(pr.used_features <= CATALOG[pr.std.index()].features);
        }
    }

    #[test]
    fn unused_standards_have_zero_used_features() {
        let p = priors();
        let zeroes = p.iter().filter(|pr| pr.used_features == 0).count();
        assert_eq!(zeroes, 11, "the eleven never-observed standards");
    }

    #[test]
    fn never_used_features_near_paper_headline() {
        // Paper §5.3: 689 of 1,392 features (≈49.5%) never execute. The
        // calibration should land within ±12% of that.
        let unused = expected_unused_features(&priors());
        assert!(
            (600..=800).contains(&unused),
            "expected ≈689 never-used features, prior gives {unused}"
        );
    }

    #[test]
    fn complexity_mean_in_fig8_window() {
        // Fig. 8: most sites use 14-32 standards.
        let mean = expected_standards_per_site(&priors());
        assert!(
            (14.0..=32.0).contains(&mean),
            "expected standards/site in the Fig. 8 mode window, got {mean:.1}"
        );
    }

    #[test]
    fn popular_standards_used_heavily() {
        let p = priors();
        let (dom1, _) = catalog::by_abbrev("DOM1").unwrap();
        let pr = p.iter().find(|x| x.std == dom1).unwrap();
        assert!(pr.p_site > 0.9);
        assert!(pr.used_features > 20);
    }

    #[test]
    fn vibration_is_a_one_site_standard() {
        let p = priors();
        let (v, _) = catalog::by_abbrev("V").unwrap();
        let pr = p.iter().find(|x| x.std == v).unwrap();
        assert!(pr.p_site > 0.0 && pr.p_site < 0.001);
        assert_eq!(pr.used_features, 1);
    }
}
