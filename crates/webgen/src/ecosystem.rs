//! The third-party ecosystem: ad networks, trackers, analytics, CDNs.
//!
//! Sites embed third-party resources from these parties; blockers' filter
//! lists and tracker databases are generated *against* this ecosystem (with
//! imperfect coverage, like real crowd-sourced lists — see
//! [`crate::filters`]). Party popularity is Zipf-distributed: a few giant ad
//! networks serve most sites, mirroring the concentration Krishnamurthy &
//! Wills observed and the paper cites.

use bfu_util::{SimRng, WeightedIndex};

/// What a third party does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PartyKind {
    /// Serves ads (scripts, frames, banners).
    AdNetwork,
    /// Cross-site tracking (pixels, fingerprinting scripts).
    Tracker,
    /// First-party-friendly analytics beacons.
    Analytics,
    /// Content delivery (never ad/tracking related; rarely blocked).
    Cdn,
}

impl PartyKind {
    /// Short label used in generated domains.
    pub fn label(self) -> &'static str {
        match self {
            PartyKind::AdNetwork => "ads",
            PartyKind::Tracker => "trk",
            PartyKind::Analytics => "stats",
            PartyKind::Cdn => "cdn",
        }
    }
}

/// One third party.
#[derive(Debug, Clone)]
pub struct ThirdParty {
    /// What it does.
    pub kind: PartyKind,
    /// Registrable domain, e.g. `adserve3.test`.
    pub domain: String,
    /// Host serving its resources, e.g. `static.adserve3.test`.
    pub host: String,
    /// Relative popularity (sites pick parties ∝ this weight).
    pub weight: f64,
}

/// The full third-party world.
#[derive(Debug, Clone)]
pub struct Ecosystem {
    /// All parties; indices into this vec identify parties in site plans.
    pub parties: Vec<ThirdParty>,
}

const AD_NAME_STEMS: &[&str] = &[
    "adserve",
    "clickbid",
    "bannerx",
    "adreach",
    "pubmax",
    "dsplink",
    "admesh",
    "yieldly",
    "spotad",
    "promogrid",
];
const TRACKER_STEMS: &[&str] = &[
    "trackmax",
    "pixelsense",
    "audiencelab",
    "idgraph",
    "spyglass",
    "fingerling",
    "cohortic",
    "tagbridge",
];
const ANALYTICS_STEMS: &[&str] = &[
    "metricsly",
    "pageviewer",
    "statshub",
    "countwise",
    "webgauge",
];
const CDN_STEMS: &[&str] = &["fastedge", "cachewave", "bigcdn", "staticnet", "mirrorly"];

impl Ecosystem {
    /// Generate the ecosystem: 40 ad networks, 30 trackers, 15 analytics
    /// providers, and 20 CDNs, with Zipf popularity inside each kind.
    pub fn generate(rng: &SimRng) -> Ecosystem {
        let mut rng = rng.fork("ecosystem");
        let mut parties = Vec::new();
        let mut spawn = |kind: PartyKind, stems: &[&str], count: usize, rng: &mut SimRng| {
            for i in 0..count {
                let stem = stems[i % stems.len()];
                let n = i / stems.len();
                let domain = if n == 0 {
                    format!("{stem}.test")
                } else {
                    format!("{stem}{n}.test")
                };
                let host = format!("{}.{domain}", kind.label());
                // Zipf-ish weight by intra-kind rank with some jitter.
                let weight = 1.0 / ((i + 1) as f64).powf(0.9) * (0.8 + 0.4 * rng.f64());
                parties.push(ThirdParty {
                    kind,
                    domain,
                    host,
                    weight,
                });
            }
        };
        spawn(PartyKind::AdNetwork, AD_NAME_STEMS, 40, &mut rng);
        spawn(PartyKind::Tracker, TRACKER_STEMS, 30, &mut rng);
        spawn(PartyKind::Analytics, ANALYTICS_STEMS, 15, &mut rng);
        spawn(PartyKind::Cdn, CDN_STEMS, 20, &mut rng);
        Ecosystem { parties }
    }

    /// Indices of parties of a kind.
    pub fn of_kind(&self, kind: PartyKind) -> Vec<usize> {
        self.parties
            .iter()
            .enumerate()
            .filter(|(_, p)| p.kind == kind)
            .map(|(i, _)| i)
            .collect()
    }

    /// Pick `count` distinct parties of `kind`, popularity-weighted.
    pub fn pick(&self, kind: PartyKind, count: usize, rng: &mut SimRng) -> Vec<usize> {
        let candidates = self.of_kind(kind);
        let weights: Vec<f64> = candidates.iter().map(|&i| self.parties[i].weight).collect();
        let Some(dist) = WeightedIndex::new(&weights) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        let mut guard = 0;
        while out.len() < count.min(candidates.len()) && guard < 200 {
            let pick = candidates[dist.sample(rng)];
            if !out.contains(&pick) {
                out.push(pick);
            }
            guard += 1;
        }
        out
    }

    /// Party by index.
    pub fn party(&self, ix: usize) -> &ThirdParty {
        &self.parties[ix]
    }

    /// All distinct hosts (for network registration).
    pub fn hosts(&self) -> Vec<&str> {
        self.parties.iter().map(|p| p.host.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eco() -> Ecosystem {
        Ecosystem::generate(&SimRng::new(1))
    }

    #[test]
    fn counts_by_kind() {
        let e = eco();
        assert_eq!(e.of_kind(PartyKind::AdNetwork).len(), 40);
        assert_eq!(e.of_kind(PartyKind::Tracker).len(), 30);
        assert_eq!(e.of_kind(PartyKind::Analytics).len(), 15);
        assert_eq!(e.of_kind(PartyKind::Cdn).len(), 20);
        assert_eq!(e.parties.len(), 105);
    }

    #[test]
    fn domains_unique_and_host_under_domain() {
        let e = eco();
        let mut domains: Vec<&str> = e.parties.iter().map(|p| p.domain.as_str()).collect();
        domains.sort_unstable();
        domains.dedup();
        assert_eq!(domains.len(), e.parties.len());
        for p in &e.parties {
            assert!(p.host.ends_with(&p.domain), "{} / {}", p.host, p.domain);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Ecosystem::generate(&SimRng::new(7));
        let b = Ecosystem::generate(&SimRng::new(7));
        for (x, y) in a.parties.iter().zip(&b.parties) {
            assert_eq!(x.domain, y.domain);
            assert_eq!(x.weight, y.weight);
        }
    }

    #[test]
    fn pick_returns_distinct_weighted_parties() {
        let e = eco();
        let mut rng = SimRng::new(3);
        let picks = e.pick(PartyKind::AdNetwork, 3, &mut rng);
        assert_eq!(picks.len(), 3);
        let mut d = picks.clone();
        d.sort_unstable();
        d.dedup();
        assert_eq!(d.len(), 3);
        for &i in &picks {
            assert_eq!(e.party(i).kind, PartyKind::AdNetwork);
        }
    }

    #[test]
    fn popular_parties_picked_more_often() {
        let e = eco();
        let mut rng = SimRng::new(5);
        let first_ad = e.of_kind(PartyKind::AdNetwork)[0];
        let last_ad = *e.of_kind(PartyKind::AdNetwork).last().unwrap();
        let (mut hits_first, mut hits_last) = (0, 0);
        for _ in 0..2000 {
            let picks = e.pick(PartyKind::AdNetwork, 1, &mut rng);
            if picks[0] == first_ad {
                hits_first += 1;
            }
            if picks[0] == last_ad {
                hits_last += 1;
            }
        }
        assert!(hits_first > hits_last * 3, "{hits_first} vs {hits_last}");
    }
}
