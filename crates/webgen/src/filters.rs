//! Blocklist generation: an EasyList-style ABP filter list and a
//! Ghostery-style tracker listing, built *against* the generated ecosystem.
//!
//! Real lists are crowd-sourced and imperfect; coverage here is deliberately
//! below 100% so block rates emerge from actual matching, not fiat:
//!
//! | Party kind | ABP/EasyList coverage | Ghostery coverage |
//! |---|---|---|
//! | Ad networks | 96% | 60% |
//! | Trackers | 35% | 97% |
//! | Analytics | 10% | 90% |
//! | CDNs | 0% | 0% |
//!
//! The asymmetry (ABP strong on ads, Ghostery strong on trackers) is what
//! produces the off-diagonal spread in the paper's Fig. 7.

use crate::ecosystem::{Ecosystem, PartyKind};
use bfu_util::SimRng;
use std::fmt::Write as _;

/// One Ghostery-style listing: `(registrable domain, party kind)`.
pub type TrackerListing = (String, PartyKind);

/// The generated blocklists.
#[derive(Debug, Clone)]
pub struct BlocklistBundle {
    /// ABP filter list text (network rules + element hiding).
    pub easylist: String,
    /// Ghostery-style tracker database entries.
    pub tracker_entries: Vec<TrackerListing>,
}

/// Coverage probabilities, exposed for ablation benches.
#[derive(Debug, Clone, Copy)]
pub struct Coverage {
    /// ABP coverage of ad networks.
    pub abp_ads: f64,
    /// ABP coverage of trackers.
    pub abp_trackers: f64,
    /// ABP coverage of analytics.
    pub abp_analytics: f64,
    /// Ghostery coverage of trackers.
    pub gh_trackers: f64,
    /// Ghostery coverage of analytics.
    pub gh_analytics: f64,
    /// Ghostery coverage of ad networks.
    pub gh_ads: f64,
}

impl Default for Coverage {
    fn default() -> Self {
        Coverage {
            abp_ads: 0.96,
            abp_trackers: 0.35,
            abp_analytics: 0.10,
            gh_trackers: 0.97,
            gh_analytics: 0.90,
            gh_ads: 0.60,
        }
    }
}

/// Generate the bundle with default coverage.
pub fn generate_lists(eco: &Ecosystem, rng: &SimRng) -> BlocklistBundle {
    generate_lists_with(eco, rng, Coverage::default())
}

/// Generate the bundle with explicit coverage (for ablations).
pub fn generate_lists_with(eco: &Ecosystem, rng: &SimRng, cov: Coverage) -> BlocklistBundle {
    let mut rng = rng.fork("blocklists");
    let mut easylist =
        String::from("[Adblock Plus 2.0]\n! Generated against the synthetic ecosystem\n");
    let mut tracker_entries = Vec::new();

    for party in &eco.parties {
        let abp_p = match party.kind {
            PartyKind::AdNetwork => cov.abp_ads,
            PartyKind::Tracker => cov.abp_trackers,
            PartyKind::Analytics => cov.abp_analytics,
            PartyKind::Cdn => 0.0,
        };
        if rng.chance(abp_p) {
            let _ = writeln!(easylist, "||{}^$third-party", party.domain);
            // Some parties get an additional path-pattern rule, as real
            // lists accumulate redundant entries.
            if rng.chance(0.3) {
                let _ = writeln!(easylist, "/{}/serve.js", party.kind.label());
            }
        }
        let gh_p = match party.kind {
            PartyKind::Tracker => cov.gh_trackers,
            PartyKind::Analytics => cov.gh_analytics,
            PartyKind::AdNetwork => cov.gh_ads,
            PartyKind::Cdn => 0.0,
        };
        if rng.chance(gh_p) {
            tracker_entries.push((party.domain.clone(), party.kind));
        }
    }

    // Element hiding (cosmetic) rules, as EasyList ships thousands of.
    easylist.push_str("##.ad-slot\n##.sponsored\n##[data-ad]\n");

    BlocklistBundle {
        easylist,
        tracker_entries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bundle() -> (Ecosystem, BlocklistBundle) {
        let rng = SimRng::new(3);
        let eco = Ecosystem::generate(&rng);
        let lists = generate_lists(&eco, &rng);
        (eco, lists)
    }

    #[test]
    fn most_ad_networks_covered_by_abp() {
        let (eco, lists) = bundle();
        let covered = eco
            .of_kind(PartyKind::AdNetwork)
            .iter()
            .filter(|&&i| {
                lists
                    .easylist
                    .contains(&format!("||{}^", eco.party(i).domain))
            })
            .count();
        assert!(covered >= 34, "ABP covers {covered}/40 ad networks");
    }

    #[test]
    fn most_trackers_covered_by_ghostery() {
        let (eco, lists) = bundle();
        let tracker_domains: Vec<&str> = lists
            .tracker_entries
            .iter()
            .filter(|(_, k)| *k == PartyKind::Tracker)
            .map(|(d, _)| d.as_str())
            .collect();
        assert!(
            tracker_domains.len() >= 26,
            "Ghostery covers {}/30 trackers",
            tracker_domains.len()
        );
        let _ = eco;
    }

    #[test]
    fn cdns_never_listed() {
        let (eco, lists) = bundle();
        for &i in &eco.of_kind(PartyKind::Cdn) {
            let d = &eco.party(i).domain;
            assert!(!lists.easylist.contains(d.as_str()), "CDN {d} in easylist");
            assert!(
                !lists.tracker_entries.iter().any(|(td, _)| td == d),
                "CDN {d} in tracker db"
            );
        }
    }

    #[test]
    fn element_hiding_rules_present() {
        let (_, lists) = bundle();
        assert!(lists.easylist.contains("##.ad-slot"));
        assert!(lists.easylist.contains("##.sponsored"));
    }

    #[test]
    fn deterministic() {
        let rng = SimRng::new(5);
        let eco = Ecosystem::generate(&rng);
        let a = generate_lists(&eco, &rng);
        let b = generate_lists(&eco, &rng);
        assert_eq!(a.easylist, b.easylist);
        assert_eq!(a.tracker_entries, b.tracker_entries);
    }

    #[test]
    fn zero_coverage_empties_the_lists() {
        let rng = SimRng::new(5);
        let eco = Ecosystem::generate(&rng);
        let cov = Coverage {
            abp_ads: 0.0,
            abp_trackers: 0.0,
            abp_analytics: 0.0,
            gh_trackers: 0.0,
            gh_analytics: 0.0,
            gh_ads: 0.0,
        };
        let lists = generate_lists_with(&eco, &rng, cov);
        assert!(lists.tracker_entries.is_empty());
        assert!(!lists.easylist.contains("$third-party"));
    }
}
