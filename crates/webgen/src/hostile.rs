//! Adversarial web mode: seeded hostile-page generation.
//!
//! The benign synthetic web is calibrated to the paper's Table 2; this
//! module is its stress-test twin. A [`HostilePlan`] deterministically
//! replaces a seeded fraction of live sites with pages drawn from a small
//! taxonomy of real-world pathologies ([`HostileClass`]): infinite loops,
//! unbounded recursion, allocation and string bombs, prototype-chain abuse,
//! parser nesting bombs, malformed source, and timer storms.
//!
//! Every hostile page performs one *benign* instrumented call before it
//! turns hostile, so a correctly governed browser still harvests a partial
//! feature log from the visit — the chaos suite asserts exactly that.
//! Installation re-registers the chosen sites' servers on the simulated
//! network *after* [`SyntheticWeb::install_into`], leaving dead hosts and
//! the fault plan untouched.

use crate::web::SyntheticWeb;
use bfu_net::{HttpRequest, HttpResponse, SimNet};
use bfu_util::Fnv64;
use std::sync::Arc;

/// One family of hostile page behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HostileClass {
    /// `while (true)` — burns the step budget.
    InfiniteLoop,
    /// Self-recursion without a base case — trips the call-depth budget.
    DeepRecursion,
    /// Allocates objects forever — trips the heap-cell budget.
    AllocBomb,
    /// Doubles a string each iteration — trips the string-byte budget.
    StringBomb,
    /// Builds pathological prototype chains and hammers misses on them.
    ProtoCycle,
    /// Thousands of nested parentheses — trips the parser depth guard.
    DeepNesting,
    /// Token soup — a plain parse error.
    MalformedSource,
    /// Schedules hundreds of 1 ms intervals — stresses the timer-drain cap.
    TimerStorm,
}

impl HostileClass {
    /// Every class, in stable order (selection indexes into this).
    pub const ALL: [HostileClass; 8] = [
        HostileClass::InfiniteLoop,
        HostileClass::DeepRecursion,
        HostileClass::AllocBomb,
        HostileClass::StringBomb,
        HostileClass::ProtoCycle,
        HostileClass::DeepNesting,
        HostileClass::MalformedSource,
        HostileClass::TimerStorm,
    ];

    /// Diagnostic label.
    pub fn label(self) -> &'static str {
        match self {
            HostileClass::InfiniteLoop => "infinite-loop",
            HostileClass::DeepRecursion => "deep-recursion",
            HostileClass::AllocBomb => "alloc-bomb",
            HostileClass::StringBomb => "string-bomb",
            HostileClass::ProtoCycle => "proto-cycle",
            HostileClass::DeepNesting => "deep-nesting",
            HostileClass::MalformedSource => "malformed-source",
            HostileClass::TimerStorm => "timer-storm",
        }
    }

    /// The hostile script body (after the benign prefix).
    fn payload(self) -> String {
        match self {
            HostileClass::InfiniteLoop => "var i = 0; while (true) { i = i + 1; }".to_owned(),
            HostileClass::DeepRecursion => "function r(n) { return r(n + 1); } r(0);".to_owned(),
            HostileClass::AllocBomb => {
                "var a = []; var i = 0; while (true) { a[i] = { x: i }; i = i + 1; }".to_owned()
            }
            HostileClass::StringBomb => {
                "var s = 'xxxxxxxxxxxxxxxx'; while (true) { s = s + s; }".to_owned()
            }
            HostileClass::ProtoCycle => {
                // Constructor-built chains plus a miss-lookup loop: every
                // read walks the whole chain, so lookups dominate the step
                // budget (the heap itself bounds cyclic walks).
                "function C() {} var o = new C(); var i = 0; \
                 while (true) { C.prototype = o; o = new C(); var m = o.missing; i = i + 1; }"
                    .to_owned()
            }
            HostileClass::DeepNesting => {
                format!("var x = {}1{};", "(".repeat(3_000), ")".repeat(3_000))
            }
            HostileClass::MalformedSource => ")]} var ;; = = 7 ((( function".to_owned(),
            HostileClass::TimerStorm => {
                "var k = 0; while (k < 400) { setInterval(function () { var w = 1; }, 1); \
                 k = k + 1; }"
                    .to_owned()
            }
        }
    }

    /// The full page script: one instrumented call first, so a governed
    /// browser keeps a partial feature log even when the payload traps.
    pub fn script(self) -> String {
        format!(
            "var benign = document.createElement('div');\n{}",
            self.payload()
        )
    }
}

/// A seeded plan for which sites turn hostile and how.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostilePlan {
    /// Selection/assignment seed (independent of the web's own seed).
    pub seed: u64,
    /// Sites made hostile, per thousand (1000 = the whole web).
    pub fraction_per_mille: u32,
}

impl HostilePlan {
    /// A plan converting `fraction_per_mille`/1000 of sites, seeded.
    pub fn new(seed: u64, fraction_per_mille: u32) -> Self {
        HostilePlan {
            seed,
            fraction_per_mille: fraction_per_mille.min(1000),
        }
    }

    /// A plan that converts every site.
    pub fn total(seed: u64) -> Self {
        HostilePlan::new(seed, 1000)
    }

    fn site_hash(&self, site_ix: usize) -> u64 {
        let mut f = Fnv64::new();
        f.write(b"bfu-hostile-site");
        f.write_u64(self.seed);
        f.write_u64(site_ix as u64);
        f.finish()
    }

    /// The hostile class assigned to `site_ix`, or `None` if the site stays
    /// benign. Depends only on `(seed, site_ix)` — never on thread layout.
    pub fn class_for(&self, site_ix: usize) -> Option<HostileClass> {
        let h = self.site_hash(site_ix);
        if h % 1000 >= u64::from(self.fraction_per_mille) {
            return None;
        }
        let pick = (h >> 32) as usize % HostileClass::ALL.len();
        Some(HostileClass::ALL[pick])
    }

    /// Re-register every selected live site's server with a hostile page.
    /// Dead sites keep their DeadHost fault; the fault plan is untouched
    /// (call after [`SyntheticWeb::install_into`]). Returns the number of
    /// sites converted.
    pub fn install_into(&self, web: &SyntheticWeb, net: &mut SimNet) -> usize {
        let mut converted = 0;
        for (ix, plan) in web.core().plans.iter().enumerate() {
            if plan.dead {
                continue;
            }
            let Some(class) = self.class_for(ix) else {
                continue;
            };
            let body = hostile_page(class);
            net.register(
                &plan.site.domain,
                Arc::new(move |_req: &HttpRequest| HttpResponse::html(body.clone())),
            );
            converted += 1;
        }
        converted
    }

    /// Stable identity of the plan, mixed into survey fingerprints.
    pub fn digest(&self) -> u64 {
        let mut f = Fnv64::new();
        f.write(b"bfu-hostile-plan-v1");
        f.write_u64(self.seed);
        f.write_u64(u64::from(self.fraction_per_mille));
        f.finish()
    }
}

/// The HTML every path of a hostile site serves: one inline hostile script
/// and a same-site link so crawl planners still find a frontier.
fn hostile_page(class: HostileClass) -> String {
    format!(
        "<html><head><script>{}</script></head>\
         <body><p>{}</p><a href=\"/next\">next</a></body></html>",
        class.script(),
        class.label()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::web::WebConfig;
    use bfu_net::Url;
    use bfu_util::SimRng;

    #[test]
    fn selection_is_deterministic_and_fraction_bounded() {
        let plan = HostilePlan::new(7, 250);
        let again = HostilePlan::new(7, 250);
        let picks: Vec<_> = (0..2_000).map(|ix| plan.class_for(ix)).collect();
        let picks_again: Vec<_> = (0..2_000).map(|ix| again.class_for(ix)).collect();
        assert_eq!(picks, picks_again);
        let hostile = picks.iter().filter(|c| c.is_some()).count();
        // 250/1000 of 2000 = 500 expected; allow generous hash slack.
        assert!((350..650).contains(&hostile), "hostile sites: {hostile}");
    }

    #[test]
    fn total_plan_uses_every_class() {
        let plan = HostilePlan::total(3);
        let mut seen = std::collections::HashSet::new();
        for ix in 0..200 {
            seen.insert(plan.class_for(ix));
        }
        assert!(!seen.contains(&None));
        assert_eq!(seen.len(), HostileClass::ALL.len(), "all classes drawn");
    }

    #[test]
    fn zero_fraction_converts_nothing() {
        let web = SyntheticWeb::generate(WebConfig {
            sites: 20,
            seed: 9,
            script_weight: 0,
        });
        let mut net = SimNet::new(SimRng::new(1));
        web.install_into(&mut net);
        assert_eq!(HostilePlan::new(1, 0).install_into(&web, &mut net), 0);
    }

    #[test]
    fn install_replaces_live_sites_and_spares_dead_ones() {
        let web = SyntheticWeb::generate(WebConfig {
            sites: 40,
            seed: 9,
            script_weight: 0,
        });
        let mut net = SimNet::new(SimRng::new(1));
        web.install_into(&mut net);
        let plan = HostilePlan::total(5);
        let live = web.core().plans.iter().filter(|p| !p.dead).count();
        assert_eq!(plan.install_into(&web, &mut net), live);
        // A converted site now serves the hostile page on every path.
        let victim = web
            .core()
            .plans
            .iter()
            .find(|p| !p.dead)
            .expect("live site");
        let url = Url::parse(&format!("http://{}/any/path", victim.site.domain)).unwrap();
        let mut clock = bfu_util::VirtualClock::new();
        let req = HttpRequest::get(url, bfu_net::ResourceType::Document);
        let resp = net.fetch(&req, &mut clock).unwrap();
        let body = String::from_utf8_lossy(&resp.body).into_owned();
        assert!(body.contains("<script>"), "hostile page served");
    }

    #[test]
    fn digest_distinguishes_plans() {
        assert_ne!(
            HostilePlan::new(1, 100).digest(),
            HostilePlan::new(2, 100).digest()
        );
        assert_ne!(
            HostilePlan::new(1, 100).digest(),
            HostilePlan::new(1, 200).digest()
        );
    }
}
