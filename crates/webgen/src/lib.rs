//! # bfu-webgen
//!
//! The synthetic web: a deterministic stand-in for the Alexa 10k.
//!
//! The study's analyses consume which features execute on which sites under
//! which browser configuration. This crate generates a 10,000-site web whose
//! *per-standard usage marginals* are calibrated from the paper's published
//! Table 2 — then everything downstream (instrumentation, blocking,
//! analysis) measures it honestly, end to end.
//!
//! - [`calibrate`] — per-standard priors derived from the catalog.
//! - [`ecosystem`] — the third-party world: ad networks, trackers,
//!   analytics, CDNs, each with hosts and script inventories.
//! - [`alexa`] — ranking, Zipf traffic weights, site categories.
//! - [`site`] — per-site plans: page graphs, scripts, feature placements.
//! - [`script_gen`] — emits mini-JS source for every planned script.
//! - [`filters`] — generates the ABP filter list and tracker DB against the
//!   ecosystem (with imperfect coverage, like real lists).
//! - [`web`] — materializes everything into `bfu-net` servers.
//! - [`hostile`] — adversarial web mode: seeded hostile-page overlays for
//!   chaos testing the crawl's resource governor.

pub mod alexa;
pub mod calibrate;
pub mod ecosystem;
pub mod filters;
pub mod hostile;
pub mod script_gen;
pub mod site;
pub mod web;

pub use alexa::{AlexaRanking, SiteCategory, SiteId};
pub use ecosystem::{Ecosystem, PartyKind, ThirdParty};
pub use hostile::{HostileClass, HostilePlan};
pub use web::{SyntheticWeb, WebConfig};
