//! Mini-JS source emission for planned feature placements.
//!
//! Every `(site, page, party)` triple maps deterministically to one script.
//! The generated code is ordinary-looking page JavaScript: variable
//! declarations, instance construction, timer registration, and interaction
//! handlers — with the planned features invoked through the same prototype
//! chains the instrumentation patches.
//!
//! Receiver rules (documented in DESIGN.md):
//! - singleton interfaces (`Window`, `Navigator`, `Document`, `Performance`)
//!   are invoked on the corresponding global;
//! - `Node` / `Element` / `HTMLElement`-family features run on a real element
//!   obtained via `document.createElement(...)` (this adds incidental DOM1
//!   usage, as on real pages, where one cannot touch `appendChild` without
//!   having created or queried a node);
//! - everything else runs on `new Interface()` instances.

use crate::site::{Party, Placement, SitePlan, Trigger};
use bfu_webidl::{FeatureInfo, FeatureKind, FeatureRegistry};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Tag to construct for element-backed interfaces.
fn element_tag(interface: &str) -> Option<&'static str> {
    Some(match interface {
        "Node" | "Element" | "HTMLElement" => "div",
        "HTMLCanvasElement" => "canvas",
        "HTMLFormElement" => "form",
        "HTMLInputElement" => "input",
        "HTMLAnchorElement" => "a",
        "HTMLImageElement" => "img",
        "HTMLIFrameElement" => "iframe",
        "HTMLSelectElement" => "select",
        "HTMLScriptElement" => "script",
        "HTMLVideoElement" | "HTMLMediaElement" => "video",
        "HTMLAudioElement" => "audio",
        _ => return None,
    })
}

fn singleton_global(interface: &str) -> Option<&'static str> {
    Some(match interface {
        "Window" => "window",
        "Navigator" => "navigator",
        "Document" => "document",
        "Performance" => "performance",
        _ => return None,
    })
}

/// Emitter state for one script: receiver variables already declared.
struct Emitter<'a> {
    out: String,
    vars: HashMap<String, String>,
    registry: &'a FeatureRegistry,
    /// Host for script-issued requests (third-party scripts call home).
    request_base: String,
}

impl<'a> Emitter<'a> {
    fn new(registry: &'a FeatureRegistry, request_base: String) -> Self {
        Emitter {
            out: String::new(),
            vars: HashMap::new(),
            registry,
            request_base,
        }
    }

    /// The variable (or global) holding the receiver for `interface`,
    /// declaring it on first use.
    fn receiver(&mut self, interface: &str, indent: &str) -> String {
        if let Some(g) = singleton_global(interface) {
            return g.to_owned();
        }
        if let Some(v) = self.vars.get(interface) {
            return v.clone();
        }
        let var = format!("obj{}", self.vars.len());
        if let Some(tag) = element_tag(interface) {
            let _ = writeln!(
                self.out,
                "{indent}var {var} = document.createElement('{tag}');"
            );
        } else {
            let _ = writeln!(self.out, "{indent}var {var} = new {interface}();");
        }
        self.vars.insert(interface.to_owned(), var.clone());
        var
    }

    /// Emit one invocation of a feature.
    fn invoke(&mut self, info: &FeatureInfo, indent: &str) {
        let recv = self.receiver(&info.interface, indent);
        match info.kind {
            FeatureKind::Method => {
                let args = self.args_for(&info.member);
                let _ = writeln!(self.out, "{indent}{recv}.{}({args});", info.member);
            }
            FeatureKind::Property => {
                let _ = writeln!(
                    self.out,
                    "{indent}{recv}.{} = {};",
                    info.member,
                    literal_for(&info.member)
                );
            }
        }
    }

    fn args_for(&self, member: &str) -> String {
        match member {
            "open" => format!("'GET', '{}/collect'", self.request_base),
            "sendBeacon" => format!("'{}/beacon'", self.request_base),
            "fetch" => format!("'{}/data'", self.request_base),
            "send" => String::new(),
            "addEventListener" => "'click', function(ev) { }".to_owned(),
            "removeEventListener" => "'click', function(ev) { }".to_owned(),
            "dispatchEvent" => "{ type: 'custom' }".to_owned(),
            "querySelector" | "querySelectorAll" => "'div'".to_owned(),
            "createElement" => "'div'".to_owned(),
            "createTextNode" => "'text'".to_owned(),
            "setAttribute" => "'data-k', 'v'".to_owned(),
            "getAttribute" => "'data-k'".to_owned(),
            "getContext" => "'2d'".to_owned(),
            "setItem" => "'key', 'value'".to_owned(),
            "getItem" => "'key'".to_owned(),
            "pushState" => "{ }, '', '/state'".to_owned(),
            "requestAnimationFrame" => "function() { }".to_owned(),
            "postMessage" => "'ping', '*'".to_owned(),
            "getCurrentPosition" => "function(pos) { }".to_owned(),
            "observe" => "{ entryTypes: ['mark'] }".to_owned(),
            "supports" => "'display', 'grid'".to_owned(),
            "mark" => "'bfu'".to_owned(),
            "vibrate" => "200".to_owned(),
            "appendChild" | "insertBefore" | "importNode" => {
                "document.createElement('span')".to_owned()
            }
            _ => String::new(),
        }
    }
}

fn literal_for(member: &str) -> &'static str {
    // Vary the literal by the member's first byte so output isn't uniform.
    match member.as_bytes().first().map(|b| b % 4).unwrap_or(0) {
        0 => "'value'",
        1 => "42",
        2 => "true",
        _ => "1.5",
    }
}

/// Append `weight` inert library functions to `out`, wrapped in one
/// never-called bundle function so the engine pays parsing (the cost the
/// compilation cache elides) but essentially zero execution: the outer
/// declaration hoists as a single closure and nothing inside it ever runs.
///
/// Real pages front-load exactly this shape of payload — large vendored
/// bundles of which a visit executes a sliver — so the crawl benchmark
/// raises `script_weight` to give scripts production-like parse weight.
/// Bodies vary deterministically with `seed` so every script stays unique
/// under content addressing.
fn emit_library_preamble(out: &mut String, seed: u64, weight: u32) {
    let _ = writeln!(out, "function __bundle_{seed:08x}() {{");
    for i in 0..weight {
        // Mix the function index into the seed so bodies differ within one
        // bundle as well as across bundles.
        let k = seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(u64::from(i));
        let (a, b, c) = (k % 97, (k >> 8) % 89, (k >> 16) % 83);
        let _ = writeln!(
            out,
            "  function helper{i}(x, y) {{ var u = x * {a} + {b}; var v = y - u; \
             if (v < {c}) {{ return u - v; }} return u + v * {a}; }}"
        );
    }
    let _ = writeln!(out, "  return helper0;");
    let _ = writeln!(out, "}}");
}

/// Generate the script a party serves on one page of one site.
///
/// Empty string if the party has nothing to run there (the server then
/// serves an empty script, which is common on the real web too).
pub fn generate_script(
    plan: &SitePlan,
    page_ix: usize,
    party: Party,
    party_host: Option<&str>,
    registry: &FeatureRegistry,
    script_weight: u32,
) -> String {
    let placements: Vec<&Placement> = plan
        .placements
        .iter()
        .filter(|p| p.party == party && plan.applies_on(p, page_ix))
        .collect();
    if placements.is_empty() {
        return String::new();
    }
    let request_base = match party_host {
        Some(h) => format!("http://{h}"),
        None => String::new(),
    };
    let mut em = Emitter::new(registry, request_base);
    let _ = writeln!(
        em.out,
        "// {} script for {}{}",
        match party {
            Party::First => "first-party".to_owned(),
            Party::Third(_) => format!("third-party ({})", party_host.unwrap_or("?")),
        },
        plan.site.domain,
        plan.pages[page_ix].path
    );
    if script_weight > 0 {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for byte in plan
            .site
            .domain
            .as_bytes()
            .iter()
            .chain(plan.pages[page_ix].path.as_bytes())
        {
            seed = (seed ^ u64::from(*byte)).wrapping_mul(0x100_0000_01b3);
        }
        if let Party::Third(ix) = party {
            seed = (seed ^ ix as u64).wrapping_mul(0x100_0000_01b3);
        }
        emit_library_preamble(&mut em.out, seed, script_weight);
    }

    // On-load placements run straight-line.
    for p in &placements {
        if let Trigger::OnLoad = p.trigger {
            for _ in 0..p.intensity {
                let info = em.registry.feature(p.feature).clone();
                em.invoke(&info, "");
            }
        }
    }

    // Timer placements: one setTimeout per placement.
    for p in &placements {
        if let Trigger::Timer(ms) = p.trigger {
            let _ = writeln!(em.out, "setTimeout(function() {{");
            for _ in 0..p.intensity {
                let info = em.registry.feature(p.feature).clone();
                em.invoke(&info, "  ");
            }
            let _ = writeln!(em.out, "}}, {ms});");
        }
    }

    // Interaction placements: wire through the __listen scaffolding. The
    // target/event pair is a deterministic function of the feature, so the
    // same site behaves identically across crawl rounds (only the monkey's
    // choices vary).
    for p in &placements {
        if let Trigger::Interaction = p.trigger {
            let (selector, event) = match p.feature.index() % 4 {
                0 => ("a", "click"),
                1 => ("div", "click"),
                2 => ("", "scroll"), // empty selector: listener on the root
                _ => ("input", "input"),
            };
            let _ = writeln!(em.out, "__listen('{selector}', '{event}', function(ev) {{");
            for _ in 0..p.intensity {
                let info = em.registry.feature(p.feature).clone();
                em.invoke(&info, "  ");
            }
            let _ = writeln!(em.out, "}});");
        }
    }

    em.out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alexa::AlexaRanking;
    use crate::calibrate;
    use crate::ecosystem::Ecosystem;
    use crate::site::generate_site;
    use bfu_util::SimRng;

    fn plan_with_registry() -> (SitePlan, FeatureRegistry) {
        let rng = SimRng::new(42);
        let ranking = AlexaRanking::generate(20, &rng);
        let priors = calibrate::priors();
        let eco = Ecosystem::generate(&rng);
        let registry = FeatureRegistry::build();
        let plan = generate_site(
            ranking.site(crate::SiteId::new(0)),
            &ranking,
            &priors,
            &eco,
            &registry,
            &rng,
        );
        (plan, registry)
    }

    #[test]
    fn first_party_script_nonempty_and_deterministic() {
        let (plan, registry) = plan_with_registry();
        let a = generate_script(&plan, 0, Party::First, None, &registry, 0);
        let b = generate_script(&plan, 0, Party::First, None, &registry, 0);
        assert!(!a.is_empty());
        assert_eq!(a, b);
    }

    #[test]
    fn generated_scripts_parse() {
        let (plan, registry) = plan_with_registry();
        for page_ix in 0..plan.pages.len().min(4) {
            let src = generate_script(&plan, page_ix, Party::First, None, &registry, 0);
            if !src.is_empty() {
                bfu_script::parser::parse(&src)
                    .unwrap_or_else(|e| panic!("page {page_ix}: {e}\n{src}"));
            }
            for &party in &plan.embedded_parties() {
                let src = generate_script(
                    &plan,
                    page_ix,
                    Party::Third(party),
                    Some("ads.adserve.test"),
                    &registry,
                    0,
                );
                if !src.is_empty() {
                    bfu_script::parser::parse(&src)
                        .unwrap_or_else(|e| panic!("party {party}: {e}\n{src}"));
                }
            }
        }
    }

    #[test]
    fn third_party_requests_call_home() {
        let (plan, registry) = plan_with_registry();
        // Find a third party placement that includes an XHR-ish member, if
        // any; otherwise just confirm the base URL appears when relevant.
        for &party in &plan.embedded_parties() {
            let src = generate_script(
                &plan,
                0,
                Party::Third(party),
                Some("trk.spy.test"),
                &registry,
                0,
            );
            if src.contains(".open(") {
                assert!(src.contains("http://trk.spy.test/collect"));
            }
        }
    }

    #[test]
    fn scope_respected() {
        let (plan, registry) = plan_with_registry();
        let has_subpage_only = plan
            .placements
            .iter()
            .any(|p| matches!(p.scope, crate::site::PageScope::SubpagesOnly));
        if has_subpage_only {
            // Subpage-only placements never appear in the home script.
            let home = generate_script(&plan, 0, Party::First, None, &registry, 0);
            let sub = generate_script(&plan, 1, Party::First, None, &registry, 0);
            assert_ne!(home, sub);
        }
    }

    #[test]
    fn interaction_placements_use_listen_scaffolding() {
        let (plan, registry) = plan_with_registry();
        let any_interaction = plan
            .placements
            .iter()
            .any(|p| matches!(p.trigger, Trigger::Interaction) && p.party == Party::First);
        let src = generate_script(&plan, 0, Party::First, None, &registry, 0);
        if any_interaction {
            assert!(src.contains("__listen("), "{src}");
        }
    }

    #[test]
    fn empty_for_party_without_placements() {
        let (plan, registry) = plan_with_registry();
        // Party index 104 (last CDN) is almost certainly not embedded.
        let src = generate_script(&plan, 0, Party::Third(104), None, &registry, 0);
        if !plan.embedded_parties().contains(&104) {
            assert!(src.is_empty());
        }
    }

    #[test]
    fn script_weight_adds_parse_only_preamble() {
        let (plan, registry) = plan_with_registry();
        let light = generate_script(&plan, 0, Party::First, None, &registry, 0);
        let heavy = generate_script(&plan, 0, Party::First, None, &registry, 120);
        // The bundle parses, is substantial, never runs, and the script's
        // feature-invoking tail is exactly the weight-0 script.
        bfu_script::parser::parse(&heavy).unwrap_or_else(|e| panic!("{e}\n{heavy}"));
        assert!(heavy.len() > light.len() + 5_000, "{} bytes", heavy.len());
        assert!(heavy.contains("function __bundle_"));
        assert!(
            !heavy.contains("__bundle_()"),
            "bundle must never be called"
        );
        for line in light.lines() {
            assert!(heavy.contains(line), "weight must not drop {line:?}");
        }
        // Deterministic, and zero-weight output is unchanged by the knob.
        let heavy2 = generate_script(&plan, 0, Party::First, None, &registry, 120);
        assert_eq!(heavy, heavy2);
    }

    #[test]
    fn preamble_differs_across_pages_and_parties() {
        let (plan, registry) = plan_with_registry();
        let a = generate_script(&plan, 0, Party::First, None, &registry, 16);
        let b = generate_script(&plan, 1, Party::First, None, &registry, 16);
        if !a.is_empty() && !b.is_empty() {
            let bundle = |s: &str| {
                s.lines()
                    .find(|l| l.starts_with("function __bundle_"))
                    .map(str::to_owned)
            };
            assert_ne!(bundle(&a), bundle(&b), "per-page bundle names must differ");
        }
    }
}
