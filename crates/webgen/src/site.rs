//! Per-site plans: page graphs, third parties, and feature placements.
//!
//! A [`SitePlan`] is the generator's ground truth for one site: which pages
//! exist and how they link, which third parties the site embeds, and — the
//! heart of the calibration — which features execute, from which party's
//! scripts, under which trigger. The crawler then *measures* all of this
//! through the instrumented browser; nothing below is fed to the analysis
//! directly.

use crate::alexa::{AlexaRanking, RankedSite, SiteCategory};
use crate::calibrate::StandardPrior;
use crate::ecosystem::{Ecosystem, PartyKind};
use bfu_util::SimRng;
use bfu_webidl::{FeatureId, FeatureRegistry};

/// Who serves the script that invokes a feature.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Party {
    /// The site's own scripts.
    First,
    /// A third party (index into [`Ecosystem::parties`]).
    Third(usize),
}

/// When a placement's code runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trigger {
    /// During page load.
    OnLoad,
    /// After a `setTimeout` of this many virtual milliseconds.
    Timer(u64),
    /// Inside a click/scroll/input handler.
    Interaction,
}

/// Which pages carry a placement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PageScope {
    /// Every page of the site.
    All,
    /// Only non-home pages (found by the crawl's BFS, not the first visit).
    SubpagesOnly,
    /// Only pages of one section (e.g. `/sports/...`). These drive the
    /// paper's Table 3: a crawl round that never BFS-es into the section
    /// misses the feature, so repeated rounds keep discovering new
    /// standards until coverage saturates.
    SectionOnly(String),
}

/// One planned feature use.
#[derive(Debug, Clone)]
pub struct Placement {
    /// The feature invoked.
    pub feature: FeatureId,
    /// Whose script invokes it.
    pub party: Party,
    /// When it runs.
    pub trigger: Trigger,
    /// On which pages.
    pub scope: PageScope,
    /// Invocations per execution (1-5).
    pub intensity: u8,
}

impl Placement {
    /// Whether this placement only runs on a subset of the site's pages.
    pub fn is_page_scoped(&self) -> bool {
        !matches!(self.scope, PageScope::All)
    }
}

/// One page of a site.
#[derive(Debug, Clone)]
pub struct PagePlan {
    /// Path, e.g. `/world/story-2`.
    pub path: String,
    /// Section (first path segment; empty for home).
    pub section: String,
    /// Indices of pages this page links to.
    pub links_to: Vec<usize>,
}

/// The full plan for one site.
#[derive(Debug, Clone)]
pub struct SitePlan {
    /// Ranked-site identity (domain, category, rank).
    pub site: RankedSite,
    /// Unreachable during the crawl (the paper's 267 failed domains).
    pub dead: bool,
    /// A script-free site (the Fig. 8 mode at zero standards).
    pub no_js: bool,
    /// Pages; index 0 is the home page (`/`).
    pub pages: Vec<PagePlan>,
    /// Ad networks the site embeds (ecosystem indices).
    pub ad_parties: Vec<usize>,
    /// Trackers the site embeds.
    pub tracker_parties: Vec<usize>,
    /// Analytics providers the site embeds.
    pub analytics_parties: Vec<usize>,
    /// Feature placements.
    pub placements: Vec<Placement>,
}

impl SitePlan {
    /// Placements served by `party`.
    pub fn placements_of(&self, party: Party) -> Vec<&Placement> {
        self.placements
            .iter()
            .filter(|p| p.party == party)
            .collect()
    }

    /// Whether a placement applies on page `page_ix`.
    pub fn applies_on(&self, p: &Placement, page_ix: usize) -> bool {
        match &p.scope {
            PageScope::All => true,
            PageScope::SubpagesOnly => page_ix != 0,
            PageScope::SectionOnly(section) => &self.pages[page_ix].section == section,
        }
    }

    /// Every distinct third party with at least one placement or embed.
    pub fn embedded_parties(&self) -> Vec<usize> {
        let mut out: Vec<usize> = self
            .ad_parties
            .iter()
            .chain(&self.tracker_parties)
            .chain(&self.analytics_parties)
            .copied()
            .collect();
        for p in &self.placements {
            if let Party::Third(ix) = p.party {
                out.push(ix);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// Fraction of sites that are script-free.
const NO_JS_RATE: f64 = 0.035;
/// Fraction of sites that are dead/unmeasurable (267 / 10,000 in the paper).
const DEAD_RATE: f64 = 0.0267;

/// Generate the plan for one ranked site.
pub fn generate_site(
    ranked: &RankedSite,
    ranking: &AlexaRanking,
    priors: &[StandardPrior],
    eco: &Ecosystem,
    registry: &FeatureRegistry,
    root_rng: &SimRng,
) -> SitePlan {
    let mut rng = root_rng.fork_idx(ranked.id.index() as u64).fork("site");
    let dead = rng.chance(DEAD_RATE);
    let no_js = rng.chance(NO_JS_RATE);

    let pages = generate_pages(ranked.category, &mut rng);
    let sections: Vec<String> = {
        let mut secs: Vec<String> = pages
            .iter()
            .map(|p| p.section.clone())
            .filter(|s| !s.is_empty())
            .collect();
        secs.sort_unstable();
        secs.dedup();
        secs
    };

    // Third parties: ad appetite scales with category.
    let appetite = ranked.category.ad_appetite();
    let n_ads = ((1.0 + 2.0 * rng.f64()) * appetite).round() as usize;
    let n_trackers = ((0.5 + 2.0 * rng.f64()) * appetite).round() as usize;
    let n_analytics = usize::from(rng.chance(0.8));
    let mut ad_parties = eco.pick(PartyKind::AdNetwork, n_ads.max(1), &mut rng);
    let mut tracker_parties = eco.pick(PartyKind::Tracker, n_trackers.max(1), &mut rng);
    let analytics_parties = eco.pick(PartyKind::Analytics, n_analytics, &mut rng);

    let mut placements = Vec::new();
    if !no_js {
        let boost = ranking.usage_boost(ranked.id);
        for prior in priors {
            if prior.used_features == 0 {
                continue;
            }
            let p_use = (prior.p_site * boost).min(1.0);
            if !rng.chance(p_use) {
                continue;
            }
            let blocked_only = rng.chance(prior.block_rate);
            let party = if blocked_only {
                let use_ad = rng.chance(prior.ad_affinity);
                let pool = if use_ad {
                    &mut ad_parties
                } else {
                    &mut tracker_parties
                };
                if pool.is_empty() {
                    let kind = if use_ad {
                        PartyKind::AdNetwork
                    } else {
                        PartyKind::Tracker
                    };
                    pool.extend(eco.pick(kind, 1, &mut rng));
                }
                Party::Third(pool[rng.below_usize(pool.len())])
            } else {
                Party::First
            };
            // Tail features of first-party standards frequently arrive via
            // ad/tracker libraries on real pages (fingerprinting helpers live
            // in otherwise-mundane standards), which is how the paper finds
            // individual features blocked ≥90% inside lightly-blocked
            // standards. Offer the emitter a blockable alternate host.
            let alt_party = {
                let use_ad = rng.chance(prior.ad_affinity);
                let pool = if use_ad {
                    &ad_parties
                } else {
                    &tracker_parties
                };
                pool.first().map(|&ix| Party::Third(ix))
            };
            // Some standards live entirely in one corner of a site (a video
            // player only on /watch pages, a map widget only on /contact):
            // the whole standard — flagship included — is then scoped to one
            // section. These are what later crawl rounds keep discovering
            // (the paper's Table 3 decay).
            // Core APIs (DOM, HTML, selectors) appear on every page of a
            // real site; only niche standards live in one corner of it.
            let std_scope = if prior.p_site < 0.5 && !sections.is_empty() && rng.chance(0.30) {
                Some(sections[rng.below_usize(sections.len())].clone())
            } else {
                None
            };
            emit_standard_placements(
                prior,
                party,
                alt_party,
                std_scope,
                &sections,
                registry,
                &mut rng,
                &mut placements,
            );
            // First-party users of a standard sometimes *also* load it from a
            // third party (e.g. an analytics lib using the same API): the
            // standard still survives blocking on this site.
            if !blocked_only && rng.chance(0.2) && !analytics_parties.is_empty() {
                let extra = Party::Third(analytics_parties[0]);
                let flagship = registry.features_of(prior.std)[0];
                placements.push(Placement {
                    feature: flagship,
                    party: extra,
                    trigger: Trigger::OnLoad,
                    scope: PageScope::All,
                    intensity: 1,
                });
            }
        }
    }

    SitePlan {
        site: ranked.clone(),
        dead,
        no_js,
        pages,
        ad_parties,
        tracker_parties,
        analytics_parties,
        placements,
    }
}

/// Choose which of a standard's features this site uses and how.
#[allow(clippy::too_many_arguments)]
fn emit_standard_placements(
    prior: &StandardPrior,
    party: Party,
    alt_party: Option<Party>,
    std_scope: Option<String>,
    sections: &[String],
    registry: &FeatureRegistry,
    rng: &mut SimRng,
    out: &mut Vec<Placement>,
) {
    let features = registry.features_of(prior.std);
    let used = &features[..(prior.used_features as usize).min(features.len())];
    for (i, &fid) in used.iter().enumerate() {
        // Flagship always; tail features with geometrically decaying odds —
        // this is what makes feature popularity decay inside a standard.
        let p = prior.feature_decay.powi(i as i32);
        if i > 0 && !rng.chance(p) {
            continue;
        }
        // Deep-tail features of first-party standards often ride in on
        // blockable third-party libraries instead.
        let party = match (party, alt_party) {
            (Party::First, Some(alt)) if i >= 2 && rng.chance(0.35) => alt,
            _ => party,
        };
        let trigger = match party {
            Party::First => {
                let u = rng.f64();
                if u < 0.70 {
                    Trigger::OnLoad
                } else if u < 0.85 {
                    Trigger::Timer(500 + rng.below(15_000))
                } else {
                    Trigger::Interaction
                }
            }
            Party::Third(_) => {
                if rng.chance(0.75) {
                    Trigger::OnLoad
                } else {
                    Trigger::Timer(500 + rng.below(10_000))
                }
            }
        };
        // Most placements are in site-wide scripts; some live only on
        // subpages, and a slice only on one *section* of the site. Flagships
        // stay site-wide so a standard's popularity is robust to page
        // sampling; the section-scoped tail is what each extra crawl round
        // keeps discovering (Table 3).
        let scope = if let Some(section) = &std_scope {
            PageScope::SectionOnly(section.clone())
        } else if i > 0 && !sections.is_empty() && rng.chance(0.18) {
            PageScope::SectionOnly(sections[rng.below_usize(sections.len())].clone())
        } else if i > 0 && rng.chance(0.10) {
            PageScope::SubpagesOnly
        } else {
            PageScope::All
        };
        out.push(Placement {
            feature: fid,
            party,
            trigger,
            scope,
            intensity: 1 + rng.below(5) as u8,
        });
    }
}

/// Build the page graph: home → sections → stories, cross-linked.
fn generate_pages(category: SiteCategory, rng: &mut SimRng) -> Vec<PagePlan> {
    let sections = category.sections();
    let n_sections =
        (4 + rng.below_usize(sections.len().saturating_sub(3).max(1))).min(sections.len());
    let mut pages = vec![PagePlan {
        path: "/".to_owned(),
        section: String::new(),
        links_to: Vec::new(),
    }];
    let mut section_pages = Vec::new();
    for &sec in sections.iter().take(n_sections) {
        let sec_ix = pages.len();
        section_pages.push(sec_ix);
        pages.push(PagePlan {
            path: format!("/{sec}/"),
            section: sec.to_owned(),
            links_to: Vec::new(),
        });
        let stories = 3 + rng.below_usize(3);
        for s in 0..stories {
            let story_ix = pages.len();
            pages.push(PagePlan {
                path: format!("/{sec}/item-{s}"),
                section: sec.to_owned(),
                links_to: Vec::new(),
            });
            pages[sec_ix].links_to.push(story_ix);
            pages[story_ix].links_to.push(sec_ix);
            pages[story_ix].links_to.push(0);
        }
    }
    // Home links to every section and a sample of stories.
    let mut home_links = section_pages.clone();
    for _ in 0..3 {
        let t = 1 + rng.below_usize(pages.len() - 1);
        home_links.push(t);
    }
    home_links.sort_unstable();
    home_links.dedup();
    pages[0].links_to = home_links;
    // Sections cross-link.
    for i in 0..section_pages.len() {
        let a = section_pages[i];
        let b = section_pages[(i + 1) % section_pages.len()];
        if a != b {
            pages[a].links_to.push(b);
        }
    }
    pages
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibrate;

    fn fixture() -> (
        AlexaRanking,
        Vec<StandardPrior>,
        Ecosystem,
        FeatureRegistry,
        SimRng,
    ) {
        let rng = SimRng::new(42);
        (
            AlexaRanking::generate(100, &rng),
            calibrate::priors(),
            Ecosystem::generate(&rng),
            FeatureRegistry::build(),
            rng,
        )
    }

    #[test]
    fn site_plans_deterministic() {
        let (ranking, priors, eco, registry, rng) = fixture();
        let a = generate_site(
            ranking.site(crate::SiteId::new(5)),
            &ranking,
            &priors,
            &eco,
            &registry,
            &rng,
        );
        let b = generate_site(
            ranking.site(crate::SiteId::new(5)),
            &ranking,
            &priors,
            &eco,
            &registry,
            &rng,
        );
        assert_eq!(a.placements.len(), b.placements.len());
        assert_eq!(a.pages.len(), b.pages.len());
        assert_eq!(a.dead, b.dead);
    }

    #[test]
    fn page_graph_connected_from_home() {
        let (ranking, priors, eco, registry, rng) = fixture();
        for ix in 0..20 {
            let plan = generate_site(
                ranking.site(crate::SiteId::new(ix)),
                &ranking,
                &priors,
                &eco,
                &registry,
                &rng,
            );
            assert!(
                plan.pages.len() >= 7,
                "site graph big enough for a 13-page crawl"
            );
            // BFS from home reaches every page.
            let mut seen = vec![false; plan.pages.len()];
            let mut queue = vec![0usize];
            seen[0] = true;
            while let Some(p) = queue.pop() {
                for &t in &plan.pages[p].links_to {
                    if !seen[t] {
                        seen[t] = true;
                        queue.push(t);
                    }
                }
            }
            assert!(
                seen.iter().all(|&s| s),
                "unreachable pages in {}",
                plan.site.domain
            );
        }
    }

    #[test]
    fn flagship_always_placed_for_used_standards() {
        let (ranking, priors, eco, registry, rng) = fixture();
        let plan = generate_site(
            ranking.site(crate::SiteId::new(0)),
            &ranking,
            &priors,
            &eco,
            &registry,
            &rng,
        );
        // Every standard that appears in placements must include its rank-0
        // feature (the flagship defines standard popularity).
        use std::collections::HashSet;
        let mut stds = HashSet::new();
        let mut flagships = HashSet::new();
        for p in &plan.placements {
            let std = registry.standard_of(p.feature);
            stds.insert(std);
            if registry.feature(p.feature).rank_in_standard == 0 {
                flagships.insert(std);
            }
        }
        assert_eq!(stds, flagships);
    }

    #[test]
    fn popular_standards_placed_on_most_sites() {
        let (ranking, priors, eco, registry, rng) = fixture();
        let (dom1, _) = bfu_webidl::catalog::by_abbrev("DOM1").unwrap();
        let mut count = 0;
        for ix in 0..60 {
            let plan = generate_site(
                ranking.site(crate::SiteId::new(ix)),
                &ranking,
                &priors,
                &eco,
                &registry,
                &rng,
            );
            if plan
                .placements
                .iter()
                .any(|p| registry.standard_of(p.feature) == dom1)
            {
                count += 1;
            }
        }
        assert!(count >= 48, "DOM1 placed on {count}/60 sites (paper: ~94%)");
    }

    #[test]
    fn blocked_party_assignment_responds_to_block_rate() {
        let (ranking, priors, eco, registry, rng) = fixture();
        // PT2 has a 93.7% block rate: most sites using it should host it on
        // a third party.
        let (pt2, _) = bfu_webidl::catalog::by_abbrev("PT2").unwrap();
        let (mut third, mut first) = (0, 0);
        for ix in 0..100 {
            let plan = generate_site(
                ranking.site(crate::SiteId::new(ix)),
                &ranking,
                &priors,
                &eco,
                &registry,
                &rng,
            );
            for p in &plan.placements {
                if registry.standard_of(p.feature) == pt2 {
                    match p.party {
                        Party::Third(_) => third += 1,
                        Party::First => first += 1,
                    }
                }
            }
        }
        assert!(
            third + first == 0 || third >= first,
            "PT2 should mostly be third-party ({third} third vs {first} first)"
        );
    }

    #[test]
    fn scopes_and_triggers_varied() {
        let (ranking, priors, eco, registry, rng) = fixture();
        let mut triggers = std::collections::HashSet::new();
        for ix in 0..20 {
            let plan = generate_site(
                ranking.site(crate::SiteId::new(ix)),
                &ranking,
                &priors,
                &eco,
                &registry,
                &rng,
            );
            for p in &plan.placements {
                triggers.insert(std::mem::discriminant(&p.trigger));
            }
        }
        assert_eq!(triggers.len(), 3, "all trigger kinds appear");
    }
}
