//! Materializing the synthetic web: plans → virtual origin servers.
//!
//! [`SyntheticWeb::generate`] builds the ranking, ecosystem, blocklists and
//! every site plan; [`SyntheticWeb::install_into`] registers one server per
//! site domain and per third-party host on a [`SimNet`], and marks the dead
//! sites (the paper's 267 unmeasurable domains) in the fault plan.
//!
//! Servers are pure functions of the request and the immutable [`WebCore`],
//! so crawls parallelize across threads trivially.

use crate::alexa::{AlexaRanking, SiteId};
use crate::calibrate::{self, StandardPrior};
use crate::ecosystem::{Ecosystem, PartyKind};
use crate::filters::{self, BlocklistBundle};
use crate::script_gen;
use crate::site::{self, Party, SitePlan};
use bfu_net::{FaultPlan, HttpRequest, HttpResponse, SimNet, StatusCode};
use bfu_util::SimRng;
use bfu_webidl::FeatureRegistry;
use std::fmt::Write as _;
use std::sync::Arc;

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct WebConfig {
    /// Number of ranked sites (the paper: 10,000).
    pub sites: usize,
    /// Master seed: same seed → byte-identical web.
    pub seed: u64,
    /// Number of inert library functions prepended to every non-empty
    /// generated script, modelling the bundled library code real pages ship
    /// (parsed in full, mostly never executed). The preamble is wrapped in a
    /// single never-called function, so it costs the engine parsing only —
    /// feature measurements are unaffected. `0` (the default) emits scripts
    /// byte-identical to a web generated before this knob existed; the crawl
    /// benchmark raises it to give scripts production-like parse weight.
    pub script_weight: u32,
}

impl Default for WebConfig {
    fn default() -> Self {
        WebConfig {
            sites: 10_000,
            seed: 0xB40_53ED,
            script_weight: 0,
        }
    }
}

/// Immutable core shared by every virtual server.
#[derive(Debug)]
pub struct WebCore {
    /// Configuration used.
    pub config: WebConfig,
    /// The ranking.
    pub ranking: AlexaRanking,
    /// The third-party world.
    pub ecosystem: Ecosystem,
    /// Calibration priors.
    pub priors: Vec<StandardPrior>,
    /// Every site's plan, in rank order.
    pub plans: Vec<SitePlan>,
    /// The feature universe.
    pub registry: Arc<FeatureRegistry>,
    /// Generated blocklists.
    pub lists: BlocklistBundle,
}

/// The synthetic web.
#[derive(Debug, Clone)]
pub struct SyntheticWeb {
    core: Arc<WebCore>,
}

impl SyntheticWeb {
    /// Generate everything from a config.
    pub fn generate(config: WebConfig) -> SyntheticWeb {
        let rng = SimRng::new(config.seed);
        let registry = Arc::new(FeatureRegistry::build());
        let ranking = AlexaRanking::generate(config.sites, &rng);
        let ecosystem = Ecosystem::generate(&rng);
        let priors = calibrate::priors();
        let lists = filters::generate_lists(&ecosystem, &rng);
        let plans: Vec<SitePlan> = ranking
            .sites()
            .iter()
            .map(|s| site::generate_site(s, &ranking, &priors, &ecosystem, &registry, &rng))
            .collect();
        SyntheticWeb {
            core: Arc::new(WebCore {
                config,
                ranking,
                ecosystem,
                priors,
                plans,
                registry,
                lists,
            }),
        }
    }

    /// Shared core.
    pub fn core(&self) -> &Arc<WebCore> {
        &self.core
    }

    /// Number of sites.
    pub fn site_count(&self) -> usize {
        self.core.plans.len()
    }

    /// One site's plan.
    pub fn plan(&self, id: SiteId) -> &SitePlan {
        &self.core.plans[id.index()]
    }

    /// The feature registry.
    pub fn registry(&self) -> &Arc<FeatureRegistry> {
        &self.core.registry
    }

    /// Generated blocklists.
    pub fn lists(&self) -> &BlocklistBundle {
        &self.core.lists
    }

    /// Register every site and third-party server on `net` and mark dead
    /// hosts in the fault plan. Returns the number of hosts registered.
    pub fn install_into(&self, net: &mut SimNet) -> usize {
        let mut faults = FaultPlan::none();
        let mut hosts = 0;
        for (ix, plan) in self.core.plans.iter().enumerate() {
            let core = self.core.clone();
            let host = plan.site.domain.clone();
            net.register(
                &host,
                Arc::new(move |req: &HttpRequest| site_server(&core, ix, req)),
            );
            if plan.dead {
                faults.kill_host(&plan.site.domain);
            }
            hosts += 1;
        }
        for (pix, party) in self.core.ecosystem.parties.iter().enumerate() {
            let core = self.core.clone();
            net.register(
                &party.host,
                Arc::new(move |req: &HttpRequest| party_server(&core, pix, req)),
            );
            hosts += 1;
        }
        net.set_faults(faults);
        hosts
    }

    /// The HTML a site serves for one of its pages (exposed for tests).
    pub fn html_for(&self, site: SiteId, page_ix: usize) -> String {
        render_page(&self.core, site.index(), page_ix)
    }
}

/// Parse `k=v&k2=v2` query strings.
fn query_param(req: &HttpRequest, key: &str) -> Option<usize> {
    req.url.query()?.split('&').find_map(|kv| {
        let (k, v) = kv.split_once('=')?;
        (k == key).then(|| v.parse().ok())?
    })
}

fn site_server(core: &WebCore, site_ix: usize, req: &HttpRequest) -> HttpResponse {
    let plan = &core.plans[site_ix];
    let path = req.url.path();
    if path == "/assets/app.js" {
        let page_ix = query_param(req, "p").unwrap_or(0).min(plan.pages.len() - 1);
        let src = script_gen::generate_script(
            plan,
            page_ix,
            Party::First,
            None,
            &core.registry,
            core.config.script_weight,
        );
        return HttpResponse::javascript(src);
    }
    if path == "/favicon.ico" {
        return HttpResponse::ok("image/x-icon", "ICO");
    }
    match plan.pages.iter().position(|p| p.path == path) {
        Some(page_ix) => HttpResponse::html(render_page(core, site_ix, page_ix)),
        None => HttpResponse::status(StatusCode::NOT_FOUND),
    }
}

fn party_server(core: &WebCore, party_ix: usize, req: &HttpRequest) -> HttpResponse {
    let path = req.url.path();
    match path {
        "/serve.js" => {
            let site_ix = query_param(req, "s").unwrap_or(0).min(core.plans.len() - 1);
            let plan = &core.plans[site_ix];
            let page_ix = query_param(req, "p").unwrap_or(0).min(plan.pages.len() - 1);
            let host = &core.ecosystem.party(party_ix).host;
            let src = script_gen::generate_script(
                plan,
                page_ix,
                Party::Third(party_ix),
                Some(host),
                &core.registry,
                core.config.script_weight,
            );
            HttpResponse::javascript(src)
        }
        "/frame" => {
            let s = query_param(req, "s").unwrap_or(0);
            let p = query_param(req, "p").unwrap_or(0);
            HttpResponse::html(format!(
                "<html><body><div class=\"ad-creative\">ad</div>\
                 <script src=\"/serve.js?s={s}&p={p}\"></script></body></html>"
            ))
        }
        "/px.gif" | "/banner.png" => HttpResponse::ok("image/gif", "GIF89a"),
        "/collect" | "/beacon" | "/data" => HttpResponse::ok("text/plain", "ok"),
        _ => HttpResponse::status(StatusCode::NOT_FOUND),
    }
}

/// Render a page's HTML: nav links, content, forms, and third-party embeds.
fn render_page(core: &WebCore, site_ix: usize, page_ix: usize) -> String {
    let plan = &core.plans[site_ix];
    let page = &plan.pages[page_ix];
    let mut html = String::with_capacity(2048);
    let _ = write!(
        html,
        "<!DOCTYPE html><html><head><title>{} — {}</title>",
        plan.site.domain, page.path
    );
    if !plan.no_js {
        let _ = write!(html, "<script src=\"/assets/app.js?p={page_ix}\"></script>");
    }
    html.push_str("</head><body>");

    // Navigation: links to the page's plan neighbours plus one offsite link.
    html.push_str("<nav>");
    for &target in &page.links_to {
        let _ = write!(
            html,
            "<a href=\"{}\">{}</a> ",
            plan.pages[target].path,
            if plan.pages[target].section.is_empty() {
                "home"
            } else {
                &plan.pages[target].section
            }
        );
    }
    let offsite = &core.plans[(site_ix + 1) % core.plans.len()].site.domain;
    let _ = write!(html, "<a href=\"http://{offsite}/\">partner</a>");
    html.push_str("</nav>");

    // Content: headings, paragraphs, a form — monkey fodder.
    let _ = write!(
        html,
        "<main><h1>{}</h1><p>Section {} of {}.</p>\
         <div id=\"content\"><p>Lorem ipsum telemetry dolor sit.</p>\
         <button id=\"more\">more</button></div>\
         <form action=\"/search\"><input type=\"text\" name=\"q\"></form>",
        if page.section.is_empty() {
            "Home"
        } else {
            &page.section
        },
        page.path,
        plan.site.domain
    );

    // Third-party embeds, but only for parties with something to run here
    // (others contribute pixels, as trackers commonly do).
    if !plan.no_js {
        let with_placements: Vec<usize> = plan
            .embedded_parties()
            .into_iter()
            .filter(|&ix| {
                plan.placements
                    .iter()
                    .any(|p| p.party == Party::Third(ix) && plan.applies_on(p, page_ix))
            })
            .collect();
        for &party_ix in &with_placements {
            let party = core.ecosystem.party(party_ix);
            // A third of ad placements arrive inside frames (the iframe ad
            // path the paper's H-CM discussion concerns).
            let framed =
                party.kind == PartyKind::AdNetwork && (site_ix + party_ix).is_multiple_of(3);
            if framed {
                let _ = write!(
                    html,
                    "<div class=\"ad-slot\"><iframe src=\"http://{}/frame?s={site_ix}&p={page_ix}\"></iframe></div>",
                    party.host
                );
            } else {
                let class = match party.kind {
                    PartyKind::AdNetwork => "ad-slot",
                    _ => "embed",
                };
                let _ = write!(
                    html,
                    "<div class=\"{class}\"><script src=\"http://{}/serve.js?s={site_ix}&p={page_ix}\"></script></div>",
                    party.host
                );
            }
        }
        // Pixels from every embedded tracker (even placement-less ones).
        for &t in &plan.tracker_parties {
            let _ = write!(
                html,
                "<img src=\"http://{}/px.gif?s={site_ix}\" width=\"1\" height=\"1\">",
                core.ecosystem.party(t).host
            );
        }
    }
    html.push_str("</main></body></html>");
    html
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfu_net::{ResourceType, Url};
    use bfu_util::VirtualClock;

    fn small_web() -> SyntheticWeb {
        SyntheticWeb::generate(WebConfig {
            sites: 40,
            seed: 77,
            script_weight: 0,
        })
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small_web();
        let b = small_web();
        assert_eq!(a.html_for(SiteId::new(3), 0), b.html_for(SiteId::new(3), 0));
        assert_eq!(a.lists().easylist, b.lists().easylist);
    }

    #[test]
    fn install_registers_all_hosts() {
        let web = small_web();
        let mut net = SimNet::new(SimRng::new(1));
        let hosts = web.install_into(&mut net);
        assert_eq!(hosts, 40 + 105);
        assert!(net.resolves(&web.plan(SiteId::new(0)).site.domain));
    }

    #[test]
    fn dead_sites_marked_in_fault_plan() {
        let web = SyntheticWeb::generate(WebConfig {
            sites: 2000,
            seed: 9,
            script_weight: 0,
        });
        let mut net = SimNet::new(SimRng::new(1));
        web.install_into(&mut net);
        let dead_planned = web.core().plans.iter().filter(|p| p.dead).count();
        assert_eq!(net.faults().dead_host_count(), dead_planned);
        // ~2.67% of sites: allow a generous band.
        assert!(
            (20..=90).contains(&dead_planned),
            "dead sites: {dead_planned}/2000"
        );
    }

    #[test]
    fn pages_serve_html_and_scripts() {
        let web = small_web();
        let mut net = SimNet::new(SimRng::new(1));
        web.install_into(&mut net);
        let mut clock = VirtualClock::new();
        let domain = &web.plan(SiteId::new(1)).site.domain;
        let resp = net
            .fetch(
                &HttpRequest::get(
                    Url::parse(&format!("http://{domain}/")).unwrap(),
                    ResourceType::Document,
                ),
                &mut clock,
            )
            .unwrap();
        assert!(resp.status.is_success());
        let body = String::from_utf8_lossy(&resp.body);
        assert!(body.contains("app.js"));
        let js = net
            .fetch(
                &HttpRequest::get(
                    Url::parse(&format!("http://{domain}/assets/app.js?p=0")).unwrap(),
                    ResourceType::Script,
                ),
                &mut clock,
            )
            .unwrap();
        assert_eq!(js.content_type(), Some("application/javascript"));
    }

    #[test]
    fn party_servers_serve_site_specific_scripts() {
        let web = small_web();
        // Find a site with a third-party placement.
        let (site_ix, party_ix) = web
            .core()
            .plans
            .iter()
            .enumerate()
            .find_map(|(i, p)| {
                p.placements.iter().find_map(|pl| match pl.party {
                    Party::Third(t) => Some((i, t)),
                    Party::First => None,
                })
            })
            .expect("some third-party placement exists");
        let host = &web.core().ecosystem.party(party_ix).host;
        let mut net = SimNet::new(SimRng::new(1));
        web.install_into(&mut net);
        let mut clock = VirtualClock::new();
        let resp = net
            .fetch(
                &HttpRequest::get(
                    Url::parse(&format!("http://{host}/serve.js?s={site_ix}&p=0")).unwrap(),
                    ResourceType::Script,
                ),
                &mut clock,
            )
            .unwrap();
        let body = String::from_utf8_lossy(&resp.body);
        assert!(resp.status.is_success());
        // Script mentions the site it was generated for.
        let domain = &web.plan(SiteId::from_usize(site_ix)).site.domain;
        assert!(
            body.is_empty() || body.contains(domain.as_str()),
            "script not site-specific: {body}"
        );
    }

    #[test]
    fn unknown_paths_404() {
        let web = small_web();
        let mut net = SimNet::new(SimRng::new(1));
        web.install_into(&mut net);
        let mut clock = VirtualClock::new();
        let domain = &web.plan(SiteId::new(0)).site.domain;
        let resp = net
            .fetch(
                &HttpRequest::get(
                    Url::parse(&format!("http://{domain}/no/such/page")).unwrap(),
                    ResourceType::Document,
                ),
                &mut clock,
            )
            .unwrap();
        assert_eq!(resp.status, StatusCode::NOT_FOUND);
    }

    #[test]
    fn no_js_sites_have_no_scripts() {
        let web = SyntheticWeb::generate(WebConfig {
            sites: 500,
            seed: 3,
            script_weight: 0,
        });
        let no_js = web
            .core()
            .plans
            .iter()
            .position(|p| p.no_js)
            .expect("some no-js site in 500");
        let html = web.html_for(SiteId::from_usize(no_js), 0);
        assert!(!html.contains("<script"));
    }
}
