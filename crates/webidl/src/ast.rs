//! Abstract syntax tree for the WebIDL subset we parse.
//!
//! The paper's tooling only needs the JavaScript-reachable surface: interface
//! names, operations (methods), and attributes (properties). We additionally
//! carry constants, inheritance, extended attributes, and `partial`
//! interfaces so the corpus can look like real Firefox WebIDL.

/// A parsed `.webidl` file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IdlFile {
    /// All definitions, in source order.
    pub interfaces: Vec<Interface>,
}

/// An `interface` (or `partial interface`) definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Interface {
    /// Interface name, e.g. `Document`.
    pub name: String,
    /// Parent interface from `interface X : Y`, if any.
    pub inherits: Option<String>,
    /// Whether this is a `partial interface` (merged by the registry).
    pub partial: bool,
    /// Extended attributes, e.g. `Exposed=Window`, `NoInterfaceObject`.
    pub ext_attrs: Vec<String>,
    /// Members in source order.
    pub members: Vec<Member>,
}

/// A member of an interface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Member {
    /// An operation (a callable method).
    Operation(Operation),
    /// An attribute (a property).
    Attribute(Attribute),
    /// A constant (not counted as a feature; JS-visible but not callable
    /// behaviour).
    Const(Const),
}

/// A WebIDL operation: `ReturnType name(args);`
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Operation {
    /// Method name.
    pub name: String,
    /// Return type, canonicalized to a string (e.g. `sequence<DOMString>?`).
    pub return_type: String,
    /// Arguments.
    pub args: Vec<Argument>,
    /// Whether declared `static`.
    pub is_static: bool,
}

/// A WebIDL attribute: `[readonly] attribute Type name;`
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Property name.
    pub name: String,
    /// Type, canonicalized to a string.
    pub ty: String,
    /// Whether declared `readonly`. The paper only counts property *writes*,
    /// so readonly attributes are excluded from the feature registry.
    pub readonly: bool,
}

/// A WebIDL constant: `const Type NAME = value;`
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Const {
    /// Constant name.
    pub name: String,
    /// Type.
    pub ty: String,
    /// Literal value as written.
    pub value: String,
}

/// One operation argument.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Argument {
    /// Argument name.
    pub name: String,
    /// Type, canonicalized to a string.
    pub ty: String,
    /// Whether declared `optional`.
    pub optional: bool,
}

impl Interface {
    /// Iterate over operation members.
    pub fn operations(&self) -> impl Iterator<Item = &Operation> {
        self.members.iter().filter_map(|m| match m {
            Member::Operation(op) => Some(op),
            _ => None,
        })
    }

    /// Iterate over attribute members.
    pub fn attributes(&self) -> impl Iterator<Item = &Attribute> {
        self.members.iter().filter_map(|m| match m {
            Member::Attribute(a) => Some(a),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn member_iterators_filter_by_kind() {
        let iface = Interface {
            name: "X".into(),
            inherits: None,
            partial: false,
            ext_attrs: vec![],
            members: vec![
                Member::Operation(Operation {
                    name: "go".into(),
                    return_type: "void".into(),
                    args: vec![],
                    is_static: false,
                }),
                Member::Attribute(Attribute {
                    name: "title".into(),
                    ty: "DOMString".into(),
                    readonly: false,
                }),
                Member::Const(Const {
                    name: "K".into(),
                    ty: "unsigned short".into(),
                    value: "2".into(),
                }),
            ],
        };
        assert_eq!(iface.operations().count(), 1);
        assert_eq!(iface.attributes().count(), 1);
    }
}
