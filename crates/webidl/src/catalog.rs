//! The standards catalog: every web standard the paper measured, with its
//! published metadata.
//!
//! Rows marked with a nonzero `paper_sites` reproduce Table 2 of the paper
//! verbatim (name, abbreviation, feature count, sites using the standard out
//! of the Alexa 10k, block rate, CVE count). The paper's Table 2 only lists
//! standards used on ≥ 1% of sites or carrying ≥ 1 CVE; the remaining 22
//! standards (11 used on fewer than 1% of sites, 11 never observed) are
//! reconstructed from the paper's aggregate claims (§5.2: "28 of the 75
//! standards measured were used on 1% or fewer sites, with eleven not used at
//! all") and Fig. 4's point labels.
//!
//! `ad_affinity` encodes, for calibration of Fig. 7, what share of a
//! standard's *blocked* usage is attributable to advertising scripts (the
//! remainder being tracking scripts): WRTC / WCR / PT2 are tracker-leaning,
//! UIE ad-leaning, per §5.7.2.
//!
//! Feature counts across all 75 rows sum to exactly **1,392**, the paper's
//! feature universe.

use bfu_util::define_id;

define_id!(
    /// Index of a standard in [`CATALOG`].
    StandardId,
    "std"
);

/// The abbreviation used for the catch-all bucket of WebIDL endpoints found
/// in no standards document (65 features in Firefox 46).
pub const NON_STANDARD_ABBREV: &str = "NS";

/// Kind of flagship member, used when the corpus generator pins a standard's
/// most popular feature to a real-world name from the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlagshipKind {
    /// A method, e.g. `Document.prototype.createElement`.
    Method,
    /// A writable property, e.g. `Document.prototype.title`.
    Property,
}

/// Static description of one web standard.
#[derive(Debug, Clone)]
pub struct StandardInfo {
    /// Abbreviation used in the paper's figures (e.g. `"AJAX"`).
    pub abbrev: &'static str,
    /// Full standard name as in Table 2.
    pub name: &'static str,
    /// Number of JavaScript-exposed features (methods + properties) the
    /// paper instrumented for this standard.
    pub features: u32,
    /// Sites (of the Alexa 10k) the paper observed using ≥ 1 feature.
    pub paper_sites: u32,
    /// The paper's measured block rate for the standard (0-1).
    pub paper_block_rate: f64,
    /// CVEs associated with the standard's Firefox implementation, last 3 yrs.
    pub cves: u32,
    /// Year the standard's most popular feature first shipped in Firefox.
    pub intro_year: u16,
    /// Share of blocked usage attributable to *advertising* third parties
    /// (vs tracking third parties), 0-1. Drives Fig. 7 calibration.
    pub ad_affinity: f64,
    /// Interface names the corpus generator spreads the features across.
    pub interfaces: &'static [&'static str],
    /// Optionally pin the most popular feature to a real name from the paper:
    /// `(interface, member, kind)`.
    pub flagship: Option<(&'static str, &'static str, FlagshipKind)>,
}

use FlagshipKind::{Method, Property};

/// All 75 standards (74 + Non-Standard), Table 2 rows first.
pub static CATALOG: &[StandardInfo] = &[
    // ---- Table 2 of the paper (52 standards + Non-Standard) ----
    StandardInfo {
        abbrev: "H-C",
        name: "HTML: Canvas",
        features: 54,
        paper_sites: 7061,
        paper_block_rate: 0.331,
        cves: 15,
        intro_year: 2006,
        ad_affinity: 0.55,
        interfaces: &[
            "HTMLCanvasElement",
            "CanvasRenderingContext2D",
            "CanvasGradient",
        ],
        flagship: Some(("HTMLCanvasElement", "getContext", Method)),
    },
    StandardInfo {
        abbrev: "SVG",
        name: "Scalable Vector Graphics 1.1 (2nd Edition)",
        features: 138,
        paper_sites: 1554,
        paper_block_rate: 0.868,
        cves: 14,
        intro_year: 2006,
        ad_affinity: 0.45,
        interfaces: &[
            "SVGElement",
            "SVGSVGElement",
            "SVGTextContentElement",
            "SVGPathElement",
            "SVGAnimationElement",
            "SVGTransform",
        ],
        flagship: Some(("SVGTextContentElement", "getComputedTextLength", Method)),
    },
    StandardInfo {
        abbrev: "WEBGL",
        name: "WebGL",
        features: 136,
        paper_sites: 913,
        paper_block_rate: 0.607,
        cves: 13,
        intro_year: 2011,
        ad_affinity: 0.5,
        interfaces: &[
            "WebGLRenderingContext",
            "WebGLShader",
            "WebGLProgram",
            "WebGLBuffer",
            "WebGLTexture",
        ],
        flagship: Some(("WebGLRenderingContext", "getParameter", Method)),
    },
    StandardInfo {
        abbrev: "H-WW",
        name: "HTML: Web Workers",
        features: 2,
        paper_sites: 952,
        paper_block_rate: 0.599,
        cves: 11,
        intro_year: 2009,
        ad_affinity: 0.5,
        interfaces: &["Worker"],
        flagship: Some(("Worker", "postMessage", Method)),
    },
    StandardInfo {
        abbrev: "HTML5",
        name: "HTML 5",
        features: 69,
        paper_sites: 7077,
        paper_block_rate: 0.262,
        cves: 10,
        intro_year: 2008,
        ad_affinity: 0.55,
        interfaces: &[
            "HTMLMediaElement",
            "HTMLVideoElement",
            "HTMLAudioElement",
            "DataTransfer",
        ],
        flagship: Some(("HTMLMediaElement", "play", Method)),
    },
    StandardInfo {
        abbrev: "WEBA",
        name: "Web Audio API",
        features: 52,
        paper_sites: 157,
        paper_block_rate: 0.811,
        cves: 10,
        intro_year: 2013,
        ad_affinity: 0.35,
        interfaces: &["AudioContext", "AudioNode", "OscillatorNode", "GainNode"],
        flagship: Some(("AudioContext", "createOscillator", Method)),
    },
    StandardInfo {
        abbrev: "WRTC",
        name: "WebRTC 1.0",
        features: 28,
        paper_sites: 30,
        paper_block_rate: 0.292,
        cves: 8,
        intro_year: 2013,
        ad_affinity: 0.15,
        interfaces: &["RTCPeerConnection", "RTCDataChannel", "RTCIceCandidate"],
        flagship: Some(("RTCPeerConnection", "createOffer", Method)),
    },
    StandardInfo {
        abbrev: "AJAX",
        name: "XMLHttpRequest",
        features: 13,
        paper_sites: 7957,
        paper_block_rate: 0.139,
        cves: 8,
        intro_year: 2004,
        ad_affinity: 0.55,
        interfaces: &["XMLHttpRequest"],
        flagship: Some(("XMLHttpRequest", "open", Method)),
    },
    StandardInfo {
        abbrev: "DOM",
        name: "DOM",
        features: 36,
        paper_sites: 9088,
        paper_block_rate: 0.020,
        cves: 4,
        intro_year: 2004,
        ad_affinity: 0.55,
        interfaces: &["Node", "EventTarget", "MutationObserver"],
        flagship: Some(("Node", "appendChild", Method)),
    },
    StandardInfo {
        abbrev: "IDB",
        name: "Indexed Database API",
        features: 48,
        paper_sites: 302,
        paper_block_rate: 0.563,
        cves: 3,
        intro_year: 2011,
        ad_affinity: 0.35,
        interfaces: &[
            "IDBFactory",
            "IDBDatabase",
            "IDBObjectStore",
            "IDBTransaction",
        ],
        flagship: Some(("IDBFactory", "open", Method)),
    },
    StandardInfo {
        abbrev: "BE",
        name: "Beacon",
        features: 1,
        paper_sites: 2373,
        paper_block_rate: 0.836,
        cves: 2,
        intro_year: 2014,
        ad_affinity: 0.5,
        interfaces: &["Navigator"],
        flagship: Some(("Navigator", "sendBeacon", Method)),
    },
    StandardInfo {
        abbrev: "MCS",
        name: "Media Capture and Streams",
        features: 4,
        paper_sites: 54,
        paper_block_rate: 0.490,
        cves: 2,
        intro_year: 2013,
        ad_affinity: 0.4,
        interfaces: &["MediaDevices", "MediaStream"],
        flagship: Some(("MediaDevices", "getUserMedia", Method)),
    },
    StandardInfo {
        abbrev: "WCR",
        name: "Web Cryptography API",
        features: 14,
        paper_sites: 7113,
        paper_block_rate: 0.678,
        cves: 2,
        intro_year: 2014,
        ad_affinity: 0.2,
        interfaces: &["Crypto", "SubtleCrypto"],
        flagship: Some(("Crypto", "getRandomValues", Method)),
    },
    StandardInfo {
        abbrev: "CSS-VM",
        name: "CSSOM View Module",
        features: 28,
        paper_sites: 4833,
        paper_block_rate: 0.190,
        cves: 1,
        intro_year: 2009,
        ad_affinity: 0.55,
        interfaces: &["Window", "Element", "Screen"],
        flagship: Some(("Element", "getBoundingClientRect", Method)),
    },
    StandardInfo {
        abbrev: "F",
        name: "Fetch",
        features: 21,
        paper_sites: 77,
        paper_block_rate: 0.333,
        cves: 1,
        intro_year: 2015,
        ad_affinity: 0.5,
        interfaces: &["Request", "Response", "Headers"],
        flagship: Some(("Window", "fetch", Method)),
    },
    StandardInfo {
        abbrev: "GP",
        name: "Gamepad",
        features: 1,
        paper_sites: 3,
        paper_block_rate: 0.0,
        cves: 1,
        intro_year: 2014,
        ad_affinity: 0.5,
        interfaces: &["Navigator"],
        flagship: Some(("Navigator", "getGamepads", Method)),
    },
    StandardInfo {
        abbrev: "HRT",
        name: "High Resolution Time, Level 2",
        features: 1,
        paper_sites: 5769,
        paper_block_rate: 0.502,
        cves: 1,
        intro_year: 2015,
        ad_affinity: 0.4,
        interfaces: &["Performance"],
        flagship: Some(("Performance", "now", Method)),
    },
    StandardInfo {
        abbrev: "H-SOCK",
        name: "HTML: Web Sockets",
        features: 2,
        paper_sites: 544,
        paper_block_rate: 0.646,
        cves: 1,
        intro_year: 2010,
        ad_affinity: 0.45,
        interfaces: &["WebSocket"],
        flagship: Some(("WebSocket", "send", Method)),
    },
    StandardInfo {
        abbrev: "H-P",
        name: "HTML: Plugins",
        features: 10,
        paper_sites: 129,
        paper_block_rate: 0.293,
        cves: 1,
        intro_year: 2005,
        ad_affinity: 0.5,
        interfaces: &["PluginArray", "Plugin", "MimeTypeArray"],
        flagship: Some(("PluginArray", "refresh", Method)),
    },
    StandardInfo {
        abbrev: "WN",
        name: "Web Notifications",
        features: 5,
        paper_sites: 16,
        paper_block_rate: 0.0,
        cves: 1,
        intro_year: 2013,
        ad_affinity: 0.5,
        interfaces: &["Notification"],
        flagship: Some(("Notification", "requestPermission", Method)),
    },
    StandardInfo {
        abbrev: "RT",
        name: "Resource Timing",
        features: 3,
        paper_sites: 786,
        paper_block_rate: 0.575,
        cves: 1,
        intro_year: 2014,
        ad_affinity: 0.4,
        interfaces: &["Performance"],
        flagship: Some(("Performance", "getEntriesByType", Method)),
    },
    StandardInfo {
        abbrev: "V",
        name: "Vibration API",
        features: 1,
        paper_sites: 1,
        paper_block_rate: 0.0,
        cves: 1,
        intro_year: 2013,
        ad_affinity: 0.5,
        interfaces: &["Navigator"],
        flagship: Some(("Navigator", "vibrate", Method)),
    },
    StandardInfo {
        abbrev: "BA",
        name: "Battery Status API",
        features: 2,
        paper_sites: 2579,
        paper_block_rate: 0.373,
        cves: 0,
        intro_year: 2012,
        ad_affinity: 0.35,
        interfaces: &["Navigator", "BatteryManager"],
        flagship: Some(("Navigator", "getBattery", Method)),
    },
    StandardInfo {
        abbrev: "CSS-CR",
        name: "CSS Conditional Rules Module, Level 3",
        features: 1,
        paper_sites: 449,
        paper_block_rate: 0.365,
        cves: 0,
        intro_year: 2013,
        ad_affinity: 0.55,
        interfaces: &["CSS"],
        flagship: Some(("CSS", "supports", Method)),
    },
    StandardInfo {
        abbrev: "CSS-FO",
        name: "CSS Font Loading Module, Level 3",
        features: 12,
        paper_sites: 2560,
        paper_block_rate: 0.335,
        cves: 0,
        intro_year: 2014,
        ad_affinity: 0.5,
        interfaces: &["FontFace", "FontFaceSet"],
        flagship: Some(("FontFaceSet", "load", Method)),
    },
    StandardInfo {
        abbrev: "CSS-OM",
        name: "CSS Object Model (CSSOM)",
        features: 15,
        paper_sites: 8193,
        paper_block_rate: 0.126,
        cves: 0,
        intro_year: 2006,
        ad_affinity: 0.55,
        interfaces: &["CSSStyleSheet", "CSSStyleDeclaration", "CSSRule"],
        flagship: Some(("CSSStyleDeclaration", "setProperty", Method)),
    },
    StandardInfo {
        abbrev: "DOM1",
        name: "DOM, Level 1 - Specification",
        features: 47,
        paper_sites: 9139,
        paper_block_rate: 0.018,
        cves: 0,
        intro_year: 2004,
        ad_affinity: 0.55,
        interfaces: &["Document", "Element", "Attr", "CharacterData"],
        flagship: Some(("Document", "createElement", Method)),
    },
    StandardInfo {
        abbrev: "DOM2-C",
        name: "DOM, Level 2 - Core Specification",
        features: 31,
        paper_sites: 8951,
        paper_block_rate: 0.030,
        cves: 0,
        intro_year: 2004,
        ad_affinity: 0.55,
        interfaces: &["Document", "Node", "DOMImplementation"],
        flagship: Some(("Document", "importNode", Method)),
    },
    StandardInfo {
        abbrev: "DOM2-E",
        name: "DOM, Level 2 - Events Specification",
        features: 7,
        paper_sites: 9077,
        paper_block_rate: 0.027,
        cves: 0,
        intro_year: 2004,
        ad_affinity: 0.55,
        interfaces: &["EventTarget", "Event"],
        flagship: Some(("EventTarget", "addEventListener", Method)),
    },
    StandardInfo {
        abbrev: "DOM2-H",
        name: "DOM, Level 2 - HTML Specification",
        features: 11,
        paper_sites: 9003,
        paper_block_rate: 0.045,
        cves: 0,
        intro_year: 2004,
        ad_affinity: 0.55,
        interfaces: &["HTMLElement", "HTMLCollection"],
        flagship: Some(("HTMLElement", "innerHTML", Property)),
    },
    StandardInfo {
        abbrev: "DOM2-S",
        name: "DOM, Level 2 - Style Specification",
        features: 19,
        paper_sites: 8835,
        paper_block_rate: 0.043,
        cves: 0,
        intro_year: 2004,
        ad_affinity: 0.55,
        interfaces: &["HTMLElement", "CSSStyleDeclaration"],
        flagship: Some(("HTMLElement", "style", Property)),
    },
    StandardInfo {
        abbrev: "DOM2-T",
        name: "DOM, Level 2 - Traversal and Range Specification",
        features: 36,
        paper_sites: 4590,
        paper_block_rate: 0.334,
        cves: 0,
        intro_year: 2006,
        ad_affinity: 0.55,
        interfaces: &["Range", "NodeIterator", "TreeWalker"],
        flagship: Some(("Document", "createRange", Method)),
    },
    StandardInfo {
        abbrev: "DOM3-C",
        name: "DOM, Level 3 - Core Specification",
        features: 10,
        paper_sites: 8495,
        paper_block_rate: 0.039,
        cves: 0,
        intro_year: 2005,
        ad_affinity: 0.55,
        interfaces: &["Node", "Document"],
        flagship: Some(("Node", "textContent", Property)),
    },
    StandardInfo {
        abbrev: "DOM3-X",
        name: "DOM, Level 3 - XPath Specification",
        features: 9,
        paper_sites: 381,
        paper_block_rate: 0.791,
        cves: 0,
        intro_year: 2005,
        ad_affinity: 0.5,
        interfaces: &["XPathEvaluator", "XPathResult"],
        flagship: Some(("Document", "evaluate", Method)),
    },
    StandardInfo {
        abbrev: "DOM-PS",
        name: "DOM Parsing and Serialization",
        features: 3,
        paper_sites: 2922,
        paper_block_rate: 0.607,
        cves: 0,
        intro_year: 2013,
        ad_affinity: 0.5,
        interfaces: &["DOMParser", "XMLSerializer"],
        flagship: Some(("DOMParser", "parseFromString", Method)),
    },
    StandardInfo {
        abbrev: "EC",
        name: "execCommand",
        features: 12,
        paper_sites: 2730,
        paper_block_rate: 0.240,
        cves: 0,
        intro_year: 2006,
        ad_affinity: 0.55,
        interfaces: &["Document"],
        flagship: Some(("Document", "execCommand", Method)),
    },
    StandardInfo {
        abbrev: "FA",
        name: "File API",
        features: 9,
        paper_sites: 1991,
        paper_block_rate: 0.580,
        cves: 0,
        intro_year: 2010,
        ad_affinity: 0.45,
        interfaces: &["FileReader", "Blob", "File"],
        flagship: Some(("FileReader", "readAsDataURL", Method)),
    },
    StandardInfo {
        abbrev: "FULL",
        name: "Fullscreen API",
        features: 9,
        paper_sites: 383,
        paper_block_rate: 0.799,
        cves: 0,
        intro_year: 2012,
        ad_affinity: 0.6,
        interfaces: &["Element", "Document"],
        flagship: Some(("Element", "requestFullscreen", Method)),
    },
    StandardInfo {
        abbrev: "GEO",
        name: "Geolocation API",
        features: 4,
        paper_sites: 174,
        paper_block_rate: 0.131,
        cves: 0,
        intro_year: 2009,
        ad_affinity: 0.45,
        interfaces: &["Geolocation"],
        flagship: Some(("Geolocation", "getCurrentPosition", Method)),
    },
    StandardInfo {
        abbrev: "H-CM",
        name: "HTML: Channel Messaging",
        features: 4,
        paper_sites: 5018,
        paper_block_rate: 0.774,
        cves: 0,
        intro_year: 2011,
        ad_affinity: 0.6,
        interfaces: &["MessageChannel", "MessagePort", "Window"],
        flagship: Some(("Window", "postMessage", Method)),
    },
    StandardInfo {
        abbrev: "H-WS",
        name: "HTML: Web Storage",
        features: 8,
        paper_sites: 7875,
        paper_block_rate: 0.292,
        cves: 0,
        intro_year: 2009,
        ad_affinity: 0.5,
        interfaces: &["Storage"],
        flagship: Some(("Storage", "setItem", Method)),
    },
    StandardInfo {
        abbrev: "HTML",
        name: "HTML",
        features: 195,
        paper_sites: 8980,
        paper_block_rate: 0.043,
        cves: 0,
        intro_year: 2004,
        ad_affinity: 0.55,
        interfaces: &[
            "HTMLDocument",
            "HTMLFormElement",
            "HTMLInputElement",
            "HTMLAnchorElement",
            "HTMLImageElement",
            "HTMLIFrameElement",
            "HTMLSelectElement",
            "HTMLScriptElement",
        ],
        flagship: Some(("HTMLFormElement", "submit", Method)),
    },
    StandardInfo {
        abbrev: "H-HI",
        name: "HTML: History Interface",
        features: 6,
        paper_sites: 1729,
        paper_block_rate: 0.187,
        cves: 0,
        intro_year: 2011,
        ad_affinity: 0.55,
        interfaces: &["History"],
        flagship: Some(("History", "pushState", Method)),
    },
    StandardInfo {
        abbrev: "MSE",
        name: "Media Source Extensions",
        features: 8,
        paper_sites: 1616,
        paper_block_rate: 0.375,
        cves: 0,
        intro_year: 2015,
        ad_affinity: 0.5,
        interfaces: &["MediaSource", "SourceBuffer"],
        flagship: Some(("MediaSource", "addSourceBuffer", Method)),
    },
    StandardInfo {
        abbrev: "PT",
        name: "Performance Timeline",
        features: 2,
        paper_sites: 4690,
        paper_block_rate: 0.758,
        cves: 0,
        intro_year: 2014,
        ad_affinity: 0.4,
        interfaces: &["Performance"],
        flagship: Some(("Performance", "getEntries", Method)),
    },
    StandardInfo {
        abbrev: "PT2",
        name: "Performance Timeline, Level 2",
        features: 1,
        paper_sites: 1728,
        paper_block_rate: 0.937,
        cves: 0,
        intro_year: 2015,
        ad_affinity: 0.5,
        interfaces: &["PerformanceObserver"],
        flagship: Some(("PerformanceObserver", "observe", Method)),
    },
    StandardInfo {
        abbrev: "SEL",
        name: "Selection API",
        features: 14,
        paper_sites: 2575,
        paper_block_rate: 0.366,
        cves: 0,
        intro_year: 2009,
        ad_affinity: 0.55,
        interfaces: &["Selection"],
        flagship: Some(("Window", "getSelection", Method)),
    },
    StandardInfo {
        abbrev: "SLC",
        name: "Selectors API, Level 1",
        features: 6,
        paper_sites: 8674,
        paper_block_rate: 0.077,
        cves: 0,
        intro_year: 2013,
        ad_affinity: 0.55,
        interfaces: &["Document", "Element"],
        flagship: Some(("Document", "querySelectorAll", Method)),
    },
    StandardInfo {
        abbrev: "TC",
        name: "Timing control for script-based animations",
        features: 1,
        paper_sites: 3568,
        paper_block_rate: 0.769,
        cves: 0,
        intro_year: 2012,
        ad_affinity: 0.6,
        interfaces: &["Window"],
        flagship: Some(("Window", "requestAnimationFrame", Method)),
    },
    StandardInfo {
        abbrev: "UIE",
        name: "UI Events Specification",
        features: 8,
        paper_sites: 1137,
        paper_block_rate: 0.568,
        cves: 0,
        intro_year: 2014,
        ad_affinity: 0.8,
        interfaces: &["UIEvent", "MouseEvent", "KeyboardEvent"],
        flagship: Some(("MouseEvent", "initMouseEvent", Method)),
    },
    StandardInfo {
        abbrev: "UTL",
        name: "User Timing, Level 2",
        features: 4,
        paper_sites: 3325,
        paper_block_rate: 0.337,
        cves: 0,
        intro_year: 2015,
        ad_affinity: 0.45,
        interfaces: &["Performance"],
        flagship: Some(("Performance", "mark", Method)),
    },
    StandardInfo {
        abbrev: "DOM4",
        name: "DOM4",
        features: 3,
        paper_sites: 5747,
        paper_block_rate: 0.376,
        cves: 0,
        intro_year: 2012,
        ad_affinity: 0.55,
        interfaces: &["Element", "ParentNode"],
        flagship: Some(("Element", "remove", Method)),
    },
    StandardInfo {
        abbrev: "NS",
        name: "Non-Standard",
        features: 65,
        paper_sites: 8669,
        paper_block_rate: 0.245,
        cves: 0,
        intro_year: 2004,
        ad_affinity: 0.55,
        interfaces: &["Window", "Navigator", "Document", "InstallTrigger"],
        flagship: Some(("Window", "dump", Method)),
    },
    // ---- Standards below 1% with no CVEs (reconstructed; see module docs) ----
    StandardInfo {
        abbrev: "ALS",
        name: "Ambient Light Events",
        features: 2,
        paper_sites: 14,
        paper_block_rate: 1.0,
        cves: 0,
        intro_year: 2013,
        ad_affinity: 0.4,
        interfaces: &["DeviceLightEvent"],
        flagship: Some(("DeviceLightEvent", "initDeviceLightEvent", Method)),
    },
    StandardInfo {
        abbrev: "CO",
        name: "Console API",
        features: 14,
        paper_sites: 88,
        paper_block_rate: 0.22,
        cves: 0,
        intro_year: 2010,
        ad_affinity: 0.55,
        interfaces: &["Console"],
        flagship: Some(("Console", "log", Method)),
    },
    StandardInfo {
        abbrev: "DO",
        name: "DeviceOrientation Event Specification",
        features: 6,
        paper_sites: 20,
        paper_block_rate: 0.52,
        cves: 0,
        intro_year: 2012,
        ad_affinity: 0.4,
        interfaces: &["DeviceOrientationEvent", "DeviceMotionEvent"],
        flagship: None,
    },
    StandardInfo {
        abbrev: "E",
        name: "Encoding",
        features: 5,
        paper_sites: 1,
        paper_block_rate: 0.0,
        cves: 0,
        intro_year: 2014,
        ad_affinity: 0.5,
        interfaces: &["TextEncoder", "TextDecoder"],
        flagship: Some(("TextDecoder", "decode", Method)),
    },
    StandardInfo {
        abbrev: "EME",
        name: "Encrypted Media Extensions",
        features: 18,
        paper_sites: 35,
        paper_block_rate: 0.31,
        cves: 0,
        intro_year: 2014,
        ad_affinity: 0.4,
        interfaces: &["MediaKeys", "MediaKeySession", "MediaKeySystemAccess"],
        flagship: Some(("Navigator", "requestMediaKeySystemAccess", Method)),
    },
    StandardInfo {
        abbrev: "NT",
        name: "Navigation Timing, Level 2",
        features: 3,
        paper_sites: 90,
        paper_block_rate: 0.55,
        cves: 0,
        intro_year: 2012,
        ad_affinity: 0.4,
        interfaces: &["PerformanceNavigationTiming"],
        flagship: None,
    },
    StandardInfo {
        abbrev: "PE",
        name: "Pointer Events",
        features: 14,
        paper_sites: 70,
        paper_block_rate: 0.30,
        cves: 0,
        intro_year: 2015,
        ad_affinity: 0.6,
        interfaces: &["PointerEvent", "Element"],
        flagship: Some(("Element", "setPointerCapture", Method)),
    },
    StandardInfo {
        abbrev: "SO",
        name: "Screen Orientation",
        features: 5,
        paper_sites: 38,
        paper_block_rate: 0.25,
        cves: 0,
        intro_year: 2015,
        ad_affinity: 0.45,
        interfaces: &["ScreenOrientation"],
        flagship: Some(("ScreenOrientation", "lock", Method)),
    },
    StandardInfo {
        abbrev: "SW",
        name: "Service Workers",
        features: 20,
        paper_sites: 40,
        paper_block_rate: 0.42,
        cves: 0,
        intro_year: 2015,
        ad_affinity: 0.45,
        interfaces: &[
            "ServiceWorkerContainer",
            "ServiceWorkerRegistration",
            "Cache",
        ],
        flagship: Some(("ServiceWorkerContainer", "register", Method)),
    },
    StandardInfo {
        abbrev: "TPE",
        name: "Touch Events",
        features: 8,
        paper_sites: 85,
        paper_block_rate: 0.33,
        cves: 0,
        intro_year: 2013,
        ad_affinity: 0.6,
        interfaces: &["Touch", "TouchEvent", "TouchList"],
        flagship: Some(("Document", "createTouch", Method)),
    },
    StandardInfo {
        abbrev: "URL",
        name: "URL",
        features: 4,
        paper_sites: 60,
        paper_block_rate: 0.35,
        cves: 0,
        intro_year: 2014,
        ad_affinity: 0.5,
        interfaces: &["URL"],
        flagship: Some(("URL", "createObjectURL", Method)),
    },
    // ---- Standards never observed in the Alexa 10k (11 of them, §5.2) ----
    StandardInfo {
        abbrev: "DU",
        name: "Device Storage API",
        features: 6,
        paper_sites: 0,
        paper_block_rate: 0.0,
        cves: 0,
        intro_year: 2013,
        ad_affinity: 0.5,
        interfaces: &["DeviceStorage"],
        flagship: None,
    },
    StandardInfo {
        abbrev: "GIM",
        name: "HTML: Image Maps",
        features: 3,
        paper_sites: 0,
        paper_block_rate: 0.0,
        cves: 0,
        intro_year: 2006,
        ad_affinity: 0.5,
        interfaces: &["HTMLMapElement", "HTMLAreaElement"],
        flagship: None,
    },
    StandardInfo {
        abbrev: "H-B",
        name: "HTML: Broadcasting (BroadcastChannel)",
        features: 4,
        paper_sites: 0,
        paper_block_rate: 0.0,
        cves: 0,
        intro_year: 2015,
        ad_affinity: 0.5,
        interfaces: &["BroadcastChannel"],
        flagship: None,
    },
    StandardInfo {
        abbrev: "HTML51",
        name: "HTML 5.1",
        features: 12,
        paper_sites: 0,
        paper_block_rate: 0.0,
        cves: 0,
        intro_year: 2015,
        ad_affinity: 0.5,
        interfaces: &["HTMLDialogElement", "HTMLPictureElement"],
        flagship: None,
    },
    StandardInfo {
        abbrev: "MCD",
        name: "Media Capture Depth Stream Extensions",
        features: 4,
        paper_sites: 0,
        paper_block_rate: 0.0,
        cves: 0,
        intro_year: 2015,
        ad_affinity: 0.5,
        interfaces: &["DepthStreamTrack"],
        flagship: None,
    },
    StandardInfo {
        abbrev: "MSR",
        name: "MediaStream Recording",
        features: 10,
        paper_sites: 0,
        paper_block_rate: 0.0,
        cves: 0,
        intro_year: 2014,
        ad_affinity: 0.5,
        interfaces: &["MediaRecorder"],
        flagship: None,
    },
    StandardInfo {
        abbrev: "PL",
        name: "Pointer Lock",
        features: 6,
        paper_sites: 0,
        paper_block_rate: 0.0,
        cves: 0,
        intro_year: 2012,
        ad_affinity: 0.5,
        interfaces: &["Element", "Document"],
        flagship: None,
    },
    StandardInfo {
        abbrev: "PV",
        name: "Page Visibility, Level 2",
        features: 2,
        paper_sites: 0,
        paper_block_rate: 0.0,
        cves: 0,
        intro_year: 2013,
        ad_affinity: 0.5,
        interfaces: &["Document"],
        flagship: None,
    },
    StandardInfo {
        abbrev: "SD",
        name: "Web Speech API: Synthesis",
        features: 8,
        paper_sites: 0,
        paper_block_rate: 0.0,
        cves: 0,
        intro_year: 2015,
        ad_affinity: 0.5,
        interfaces: &["SpeechSynthesis", "SpeechSynthesisUtterance"],
        flagship: None,
    },
    StandardInfo {
        abbrev: "WEBVTT",
        name: "WebVTT: The Web Video Text Tracks Format",
        features: 6,
        paper_sites: 0,
        paper_block_rate: 0.0,
        cves: 0,
        intro_year: 2014,
        ad_affinity: 0.5,
        interfaces: &["VTTCue", "VTTRegion"],
        flagship: None,
    },
    StandardInfo {
        abbrev: "H-WB",
        name: "HTML: Web Background Sync (draft)",
        features: 3,
        paper_sites: 0,
        paper_block_rate: 0.0,
        cves: 0,
        intro_year: 2015,
        ad_affinity: 0.5,
        interfaces: &["SyncManager"],
        flagship: None,
    },
];

/// Total number of standards (including Non-Standard). The paper's 75.
pub fn standard_count() -> usize {
    CATALOG.len()
}

/// Total number of features across all standards. The paper's 1,392.
pub fn feature_count() -> u32 {
    CATALOG.iter().map(|s| s.features).sum()
}

/// Look up a standard by its abbreviation.
pub fn by_abbrev(abbrev: &str) -> Option<(StandardId, &'static StandardInfo)> {
    CATALOG
        .iter()
        .enumerate()
        .find(|(_, s)| s.abbrev == abbrev)
        .map(|(i, s)| (StandardId::from_usize(i), s))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn seventy_five_standards() {
        assert_eq!(standard_count(), 75);
    }

    #[test]
    fn features_sum_to_1392() {
        assert_eq!(feature_count(), 1392);
    }

    #[test]
    fn abbreviations_unique() {
        let set: HashSet<_> = CATALOG.iter().map(|s| s.abbrev).collect();
        assert_eq!(set.len(), CATALOG.len());
    }

    #[test]
    fn eleven_standards_never_used() {
        let unused = CATALOG.iter().filter(|s| s.paper_sites == 0).count();
        assert_eq!(unused, 11, "paper §5.2: eleven standards not used at all");
    }

    #[test]
    fn twenty_eight_standards_at_or_below_one_percent() {
        // 1% of the Alexa 10k = 100 sites.
        let rare = CATALOG.iter().filter(|s| s.paper_sites <= 100).count();
        assert_eq!(rare, 28, "paper §5.2: 28 of 75 used on 1% or fewer sites");
    }

    #[test]
    fn six_standards_above_ninety_percent() {
        // "over 90% of all websites measured": the paper's six are the DOM
        // core specs + HTML; the implied cutoff sits between DOM2-C (8,951)
        // and DOM2-S (8,835).
        let hot = CATALOG.iter().filter(|s| s.paper_sites >= 8900).count();
        assert_eq!(hot, 6, "paper §5.2: six standards on over 90% of sites");
    }

    #[test]
    fn block_rates_in_unit_interval() {
        for s in CATALOG {
            assert!(
                (0.0..=1.0).contains(&s.paper_block_rate),
                "{}: block rate {}",
                s.abbrev,
                s.paper_block_rate
            );
            assert!((0.0..=1.0).contains(&s.ad_affinity), "{}", s.abbrev);
        }
    }

    #[test]
    fn flagships_reference_listed_or_singleton_interfaces() {
        // A flagship interface must either be in the standard's own interface
        // list or be one of the global singletons that many standards extend.
        let singletons = ["Window", "Navigator", "Document", "Performance"];
        for s in CATALOG {
            if let Some((iface, _, _)) = s.flagship {
                assert!(
                    s.interfaces.contains(&iface) || singletons.contains(&iface),
                    "{}: flagship interface {iface} not declared",
                    s.abbrev
                );
            }
        }
    }

    #[test]
    fn by_abbrev_finds_table_rows() {
        let (_, svg) = by_abbrev("SVG").expect("SVG present");
        assert_eq!(svg.paper_sites, 1554);
        assert_eq!(svg.features, 138);
        assert!(by_abbrev("NOPE").is_none());
    }

    #[test]
    fn intro_years_sane() {
        for s in CATALOG {
            assert!((2004..=2016).contains(&s.intro_year), "{}", s.abbrev);
        }
    }

    #[test]
    fn cve_totals_match_paper_examples() {
        assert_eq!(by_abbrev("WEBA").unwrap().1.cves, 10, "Web Audio: 10 CVEs");
        assert_eq!(by_abbrev("WRTC").unwrap().1.cves, 8, "WebRTC: 8 CVEs");
        assert_eq!(by_abbrev("SVG").unwrap().1.cves, 14, "SVG: 14 CVEs");
    }
}
