//! Deterministic WebIDL corpus generator.
//!
//! The paper extracted its 1,392 features from the 757 WebIDL files in the
//! Firefox 46.0.1 source tree. That corpus is Firefox's; we stand in for it
//! with a generated corpus of one `.webidl` file per standard whose member
//! counts match the catalog exactly. Flagship features (the per-standard
//! most-popular features the paper names, e.g.
//! `Document.prototype.createElement`) are pinned to their real names; the
//! rest get plausible generated names.
//!
//! Generation is fully deterministic: the same catalog always yields the
//! same corpus, so feature ids are stable across runs and machines.

use crate::catalog::{FlagshipKind, StandardInfo, CATALOG};
use bfu_util::SimRng;
use std::collections::HashSet;
use std::fmt::Write as _;

/// One generated file of the corpus.
#[derive(Debug, Clone)]
pub struct CorpusFile {
    /// Standard abbreviation this file belongs to.
    pub abbrev: &'static str,
    /// Suggested file name, e.g. `dom_level_1.webidl`.
    pub file_name: String,
    /// WebIDL source text.
    pub source: String,
}

const VERBS: &[&str] = &[
    "get",
    "set",
    "create",
    "update",
    "remove",
    "query",
    "observe",
    "request",
    "cancel",
    "init",
    "dispatch",
    "register",
    "resolve",
    "compute",
    "enumerate",
    "clone",
    "normalize",
    "measure",
    "encode",
    "decode",
    "begin",
    "end",
    "suspend",
    "resume",
    "attach",
    "detach",
    "sync",
    "report",
    "lookup",
    "merge",
    "split",
    "apply",
    "restore",
    "capture",
    "release",
    "validate",
];

const NOUNS: &[&str] = &[
    "State",
    "Value",
    "Buffer",
    "Node",
    "Frame",
    "Context",
    "Channel",
    "Stream",
    "Key",
    "Entry",
    "Range",
    "Rect",
    "Timing",
    "Metric",
    "Token",
    "Handle",
    "Layer",
    "Shape",
    "Path",
    "Source",
    "Target",
    "Filter",
    "Sample",
    "Track",
    "Region",
    "Segment",
    "Profile",
    "Quota",
    "Status",
    "Info",
    "Descriptor",
    "Snapshot",
    "Anchor",
    "Gradient",
    "Matrix",
    "Vector",
    "Cursor",
];

const PROP_ADJECTIVES: &[&str] = &[
    "current",
    "default",
    "pending",
    "active",
    "max",
    "min",
    "total",
    "last",
    "next",
    "initial",
    "preferred",
    "effective",
    "raw",
    "cached",
    "visible",
];

const ARG_TYPES: &[&str] = &[
    "DOMString",
    "long",
    "unsigned long",
    "double",
    "boolean",
    "object",
    "Node",
    "Element",
];

const RETURN_TYPES: &[&str] = &[
    "void",
    "DOMString",
    "long",
    "boolean",
    "double",
    "object",
    "Element",
    "Promise<void>",
    "sequence<DOMString>",
];

const PROP_TYPES: &[&str] = &[
    "DOMString",
    "long",
    "unsigned long",
    "double",
    "boolean",
    "object",
];

/// Global singleton interfaces that many standards extend via
/// `partial interface` (matching how real WebIDL spreads `Navigator` and
/// `Window` members across specs).
pub const SINGLETON_INTERFACES: &[&str] = &["Window", "Navigator", "Document", "Performance"];

fn snake(name: &str) -> String {
    let mut out = String::new();
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_uppercase() && i > 0 {
            out.push('_');
        }
        if c.is_ascii_alphanumeric() {
            out.push(c.to_ascii_lowercase());
        } else {
            out.push('_');
        }
    }
    out
}

/// Generate the full corpus: one file per catalog standard, with exactly
/// `StandardInfo::features` operation/writable-attribute members per file,
/// and globally unique `(interface, member)` pairs.
pub fn generate() -> Vec<CorpusFile> {
    let rng = SimRng::new(CORPUS_SEED);
    let mut taken: HashSet<(String, String)> = HashSet::new();
    CATALOG
        .iter()
        .map(|std| generate_file(std, &rng.fork(std.abbrev), &mut taken))
        .collect()
}

/// Fixed seed for corpus generation; arbitrary but must never change, or
/// feature ids would shift between releases.
const CORPUS_SEED: u64 = 0x0001_D1C0_8085;

/// Additional real-world member names pinned into the corpus beyond each
/// standard's flagship: `(standard abbrev, interface, member, kind)`.
///
/// These are APIs the paper names, or that realistic page scripts need
/// (`querySelector`, `cloneNode`, `insertBefore`, ...). Pinned members take
/// the ranks immediately after the flagship and count toward the standard's
/// feature budget like any other member.
const EXTRA_PINNED: &[(&str, &str, &str, FlagshipKind)] = &[
    ("DOM", "Node", "cloneNode", FlagshipKind::Method),
    (
        "DOM",
        "EventTarget",
        "removeEventListener",
        FlagshipKind::Method,
    ),
    ("DOM1", "Node", "insertBefore", FlagshipKind::Method),
    ("DOM1", "Document", "createTextNode", FlagshipKind::Method),
    ("DOM1", "Element", "setAttribute", FlagshipKind::Method),
    ("DOM1", "Element", "getAttribute", FlagshipKind::Method),
    ("SLC", "Document", "querySelector", FlagshipKind::Method),
    (
        "DOM2-E",
        "EventTarget",
        "dispatchEvent",
        FlagshipKind::Method,
    ),
    ("AJAX", "XMLHttpRequest", "send", FlagshipKind::Method),
    ("H-WS", "Storage", "getItem", FlagshipKind::Method),
    ("HTML", "HTMLElement", "focus", FlagshipKind::Method),
    ("HTML", "HTMLElement", "blur", FlagshipKind::Method),
    ("DOM4", "Element", "closest", FlagshipKind::Method),
];

fn generate_file(
    std: &'static StandardInfo,
    rng: &SimRng,
    taken: &mut HashSet<(String, String)>,
) -> CorpusFile {
    let mut rng = rng.clone();
    let mut src = String::new();
    let _ = writeln!(src, "// Standard: {} ({})", std.name, std.abbrev);
    let _ = writeln!(
        src,
        "// Generated corpus file; member counts match the catalog."
    );
    let _ = writeln!(src);

    // Plan: which interface hosts each of the `features` members.
    // The flagship goes first on its interface; remaining members round-robin
    // across the standard's interfaces.
    let mut per_iface: Vec<(String, Vec<MemberPlan>)> = Vec::new();
    let find_or_insert = |per_iface: &mut Vec<(String, Vec<MemberPlan>)>, name: &str| {
        if let Some(i) = per_iface.iter().position(|(n, _)| n == name) {
            i
        } else {
            per_iface.push((name.to_owned(), Vec::new()));
            per_iface.len() - 1
        }
    };

    let mut remaining = std.features as usize;
    let mut pin = |per_iface: &mut Vec<(String, Vec<MemberPlan>)>,
                   remaining: &mut usize,
                   iface: &str,
                   member: &str,
                   kind: FlagshipKind| {
        if *remaining == 0 {
            return;
        }
        let i = find_or_insert(per_iface, iface);
        per_iface[i].1.push(MemberPlan {
            name: member.to_owned(),
            kind,
        });
        taken.insert((iface.to_owned(), member.to_owned()));
        *remaining -= 1;
    };
    if let Some((iface, member, kind)) = std.flagship {
        pin(&mut per_iface, &mut remaining, iface, member, kind);
    }
    for &(abbrev, iface, member, kind) in EXTRA_PINNED {
        if abbrev == std.abbrev {
            pin(&mut per_iface, &mut remaining, iface, member, kind);
        }
    }

    let ifaces: Vec<&str> = std.interfaces.to_vec();
    let mut slot = 0usize;
    while remaining > 0 {
        let iface = ifaces[slot % ifaces.len()];
        slot += 1;
        let kind = if rng.chance(0.62) {
            FlagshipKind::Method
        } else {
            FlagshipKind::Property
        };
        let name = fresh_member_name(&mut rng, iface, kind, taken);
        let i = find_or_insert(&mut per_iface, iface);
        per_iface[i].1.push(MemberPlan { name, kind });
        remaining -= 1;
    }

    // Emit. Singletons become `partial interface` (they are defined by many
    // standards); a standard's own interfaces get full definitions, the first
    // of which carries an Exposed extended attribute like real Firefox IDL.
    for (iface, members) in &per_iface {
        let is_singleton = SINGLETON_INTERFACES.contains(&iface.as_str());
        if is_singleton {
            let _ = writeln!(src, "partial interface {iface} {{");
        } else {
            let _ = writeln!(src, "[Exposed=Window]");
            let _ = writeln!(src, "interface {iface} {{");
        }
        for m in members {
            match m.kind {
                FlagshipKind::Method => {
                    let ret = RETURN_TYPES[rng.below_usize(RETURN_TYPES.len())];
                    let n_args = rng.below_usize(3);
                    let args: Vec<String> = (0..n_args)
                        .map(|k| {
                            let ty = ARG_TYPES[rng.below_usize(ARG_TYPES.len())];
                            let opt = if k == n_args - 1 && rng.chance(0.3) {
                                "optional "
                            } else {
                                ""
                            };
                            format!("{opt}{ty} arg{k}")
                        })
                        .collect();
                    let _ = writeln!(src, "  {ret} {}({});", m.name, args.join(", "));
                }
                FlagshipKind::Property => {
                    let ty = PROP_TYPES[rng.below_usize(PROP_TYPES.len())];
                    let _ = writeln!(src, "  attribute {ty} {};", m.name);
                }
            }
        }
        // Sprinkle a readonly attribute and a const in some interfaces so the
        // registry's "only count callable/writable members" rule is exercised
        // by the real corpus, not just unit tests.
        if rng.chance(0.4) {
            let _ = writeln!(src, "  readonly attribute DOMString interfaceName;");
        }
        if rng.chance(0.25) {
            let _ = writeln!(src, "  const unsigned short VERSION = 1;");
        }
        let _ = writeln!(src, "}};");
        let _ = writeln!(src);
    }

    CorpusFile {
        abbrev: std.abbrev,
        file_name: format!("{}.webidl", snake(std.name)),
        source: src,
    }
}

#[derive(Debug)]
struct MemberPlan {
    name: String,
    kind: FlagshipKind,
}

fn fresh_member_name(
    rng: &mut SimRng,
    iface: &str,
    kind: FlagshipKind,
    taken: &mut HashSet<(String, String)>,
) -> String {
    for attempt in 0u32.. {
        let base = match kind {
            FlagshipKind::Method => {
                let v = VERBS[rng.below_usize(VERBS.len())];
                let n = NOUNS[rng.below_usize(NOUNS.len())];
                format!("{v}{n}")
            }
            FlagshipKind::Property => {
                let a = PROP_ADJECTIVES[rng.below_usize(PROP_ADJECTIVES.len())];
                let n = NOUNS[rng.below_usize(NOUNS.len())];
                format!("{a}{n}")
            }
        };
        let name = if attempt < 3 {
            base
        } else {
            format!("{base}{}", attempt - 2)
        };
        let key = (iface.to_owned(), name.clone());
        if !taken.contains(&key) {
            taken.insert(key);
            return name;
        }
    }
    unreachable!("name space exhausted")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn corpus_has_one_file_per_standard() {
        let corpus = generate();
        assert_eq!(corpus.len(), CATALOG.len());
    }

    #[test]
    fn corpus_is_deterministic() {
        let a = generate();
        let b = generate();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.source, y.source);
        }
    }

    #[test]
    fn every_file_parses() {
        for f in generate() {
            parse(&f.source).unwrap_or_else(|e| panic!("{}: {e}", f.file_name));
        }
    }

    #[test]
    fn member_counts_match_catalog() {
        for (f, std) in generate().iter().zip(CATALOG.iter()) {
            let idl = parse(&f.source).unwrap();
            let count: usize = idl
                .interfaces
                .iter()
                .map(|i| i.operations().count() + i.attributes().filter(|a| !a.readonly).count())
                .sum();
            assert_eq!(
                count as u32, std.features,
                "{}: corpus members != catalog features",
                std.abbrev
            );
        }
    }

    #[test]
    fn flagships_appear_verbatim() {
        let corpus = generate();
        let dom1 = corpus.iter().find(|f| f.abbrev == "DOM1").unwrap();
        assert!(dom1.source.contains("createElement"));
        let v = corpus.iter().find(|f| f.abbrev == "V").unwrap();
        assert!(v.source.contains("vibrate"));
        let svg = corpus.iter().find(|f| f.abbrev == "SVG").unwrap();
        assert!(svg.source.contains("getComputedTextLength"));
    }

    #[test]
    fn no_duplicate_interface_member_pairs_across_corpus() {
        let mut seen = std::collections::HashSet::new();
        for f in generate() {
            let idl = parse(&f.source).unwrap();
            for iface in &idl.interfaces {
                for op in iface.operations() {
                    assert!(
                        seen.insert((iface.name.clone(), op.name.clone())),
                        "duplicate {}.{} in {}",
                        iface.name,
                        op.name,
                        f.file_name
                    );
                }
                for at in iface.attributes().filter(|a| !a.readonly) {
                    assert!(
                        seen.insert((iface.name.clone(), at.name.clone())),
                        "duplicate {}.{} in {}",
                        iface.name,
                        at.name,
                        f.file_name
                    );
                }
            }
        }
    }

    #[test]
    fn singletons_are_partial_interfaces() {
        let corpus = generate();
        let be = corpus.iter().find(|f| f.abbrev == "BE").unwrap();
        assert!(be.source.contains("partial interface Navigator"));
    }
}
