//! Historical browser-complexity dataset behind Figure 1 of the paper.
//!
//! Figure 1 plots, per year, the number of web-standard families available in
//! modern browsers (from W3C documents and caniuse.com) and the total lines
//! of code of popular browsers (from OpenHub). The mid-2013 dip in Chrome
//! reflects Google's move to Blink, removing ~8.8 M lines of WebKit code.
//!
//! These values are digitized from the figure; they are metadata, not
//! simulation output, so they live here as a static table.

/// One year's point on Figure 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct YearPoint {
    /// Calendar year.
    pub year: u16,
    /// Web standard families available in modern browsers.
    pub standards: u32,
    /// Chrome, millions of lines of code.
    pub chrome_mloc: f64,
    /// Firefox, millions of lines of code.
    pub firefox_mloc: f64,
    /// Safari (WebKit), millions of lines of code.
    pub safari_mloc: f64,
    /// Internet Explorer (Trident), millions of lines of code (estimated).
    pub ie_mloc: f64,
}

/// The Figure 1 series, 2009-2015.
pub static BROWSER_HISTORY: &[YearPoint] = &[
    YearPoint {
        year: 2009,
        standards: 12,
        chrome_mloc: 2.5,
        firefox_mloc: 4.8,
        safari_mloc: 2.1,
        ie_mloc: 3.0,
    },
    YearPoint {
        year: 2010,
        standards: 16,
        chrome_mloc: 4.0,
        firefox_mloc: 5.6,
        safari_mloc: 2.4,
        ie_mloc: 3.2,
    },
    YearPoint {
        year: 2011,
        standards: 21,
        chrome_mloc: 5.8,
        firefox_mloc: 6.9,
        safari_mloc: 2.8,
        ie_mloc: 3.5,
    },
    YearPoint {
        year: 2012,
        standards: 26,
        chrome_mloc: 7.9,
        firefox_mloc: 8.4,
        safari_mloc: 3.1,
        ie_mloc: 3.8,
    },
    YearPoint {
        year: 2013,
        standards: 30,
        chrome_mloc: 10.2,
        firefox_mloc: 9.9,
        safari_mloc: 3.3,
        ie_mloc: 4.0,
    },
    // Blink split: ~8.8M lines of WebKit removed from Chrome mid-2013.
    YearPoint {
        year: 2014,
        standards: 35,
        chrome_mloc: 7.6,
        firefox_mloc: 11.3,
        safari_mloc: 3.6,
        ie_mloc: 4.1,
    },
    YearPoint {
        year: 2015,
        standards: 39,
        chrome_mloc: 9.4,
        firefox_mloc: 12.6,
        safari_mloc: 3.9,
        ie_mloc: 4.2,
    },
];

/// Number of standards available in the measured browser (Firefox 46, 2016):
/// the 74 standards + Non-Standard bucket of the catalog.
pub fn standards_in_measured_browser() -> usize {
    crate::catalog::CATALOG.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn years_are_ordered_and_contiguous() {
        for w in BROWSER_HISTORY.windows(2) {
            assert_eq!(w[1].year, w[0].year + 1);
        }
    }

    #[test]
    fn standards_grow_monotonically() {
        for w in BROWSER_HISTORY.windows(2) {
            assert!(w[1].standards > w[0].standards);
        }
    }

    #[test]
    fn blink_split_visible_in_chrome_series() {
        let y2013 = BROWSER_HISTORY.iter().find(|p| p.year == 2013).unwrap();
        let y2014 = BROWSER_HISTORY.iter().find(|p| p.year == 2014).unwrap();
        assert!(
            y2014.chrome_mloc < y2013.chrome_mloc,
            "Chrome LoC must dip after the Blink split"
        );
    }

    #[test]
    fn firefox_grows_every_year() {
        for w in BROWSER_HISTORY.windows(2) {
            assert!(w[1].firefox_mloc > w[0].firefox_mloc);
        }
    }
}
