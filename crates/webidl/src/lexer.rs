//! Tokenizer for the WebIDL subset.
//!
//! Handles identifiers/keywords, integer and float literals, string literals,
//! punctuation, and both comment styles. Tracks line numbers for error
//! reporting.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (`interface`, `Document`, `attribute`, ...).
    Ident(String),
    /// Integer literal (decimal or 0x hex), kept as written.
    Number(String),
    /// Double-quoted string literal, unescaped content.
    Str(String),
    /// Single punctuation character: `{}();:,=?<>[]`.
    Punct(char),
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Number(s) => write!(f, "{s}"),
            Token::Str(s) => write!(f, "\"{s}\""),
            Token::Punct(c) => write!(f, "{c}"),
        }
    }
}

/// A token with its source line (1-based).
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// 1-based line number where the token starts.
    pub line: u32,
}

/// Lexer error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Human-readable description.
    pub message: String,
    /// 1-based line number.
    pub line: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenize a WebIDL source string.
pub fn lex(src: &str) -> Result<Vec<Spanned>, LexError> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0;
    let mut line: u32 = 1;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                let start_line = line;
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(LexError {
                            message: "unterminated block comment".into(),
                            line: start_line,
                        });
                    }
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            '"' => {
                let start_line = line;
                i += 1;
                let start = i;
                while i < bytes.len() && bytes[i] != b'"' {
                    if bytes[i] == b'\n' {
                        return Err(LexError {
                            message: "newline in string literal".into(),
                            line: start_line,
                        });
                    }
                    i += 1;
                }
                if i >= bytes.len() {
                    return Err(LexError {
                        message: "unterminated string literal".into(),
                        line: start_line,
                    });
                }
                out.push(Spanned {
                    token: Token::Str(src[start..i].to_owned()),
                    line: start_line,
                });
                i += 1;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                out.push(Spanned {
                    token: Token::Ident(src[start..i].to_owned()),
                    line,
                });
            }
            c if c.is_ascii_digit()
                || (c == '-' && bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit())) =>
            {
                let start = i;
                if c == '-' {
                    i += 1;
                }
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'.')
                {
                    i += 1;
                }
                out.push(Spanned {
                    token: Token::Number(src[start..i].to_owned()),
                    line,
                });
            }
            '{' | '}' | '(' | ')' | ';' | ':' | ',' | '=' | '?' | '<' | '>' | '[' | ']' => {
                out.push(Spanned {
                    token: Token::Punct(c),
                    line,
                });
                i += 1;
            }
            other => {
                return Err(LexError {
                    message: format!("unexpected character {other:?}"),
                    line,
                });
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn idents_and_punct() {
        assert_eq!(
            toks("interface Foo {};"),
            vec![
                Token::Ident("interface".into()),
                Token::Ident("Foo".into()),
                Token::Punct('{'),
                Token::Punct('}'),
                Token::Punct(';'),
            ]
        );
    }

    #[test]
    fn comments_skipped_and_lines_counted() {
        let spanned = lex("// line comment\n/* block\ncomment */ x").unwrap();
        assert_eq!(spanned.len(), 1);
        assert_eq!(spanned[0].token, Token::Ident("x".into()));
        assert_eq!(spanned[0].line, 3);
    }

    #[test]
    fn numbers() {
        assert_eq!(
            toks("const unsigned short K = 0x10;"),
            vec![
                Token::Ident("const".into()),
                Token::Ident("unsigned".into()),
                Token::Ident("short".into()),
                Token::Ident("K".into()),
                Token::Punct('='),
                Token::Number("0x10".into()),
                Token::Punct(';'),
            ]
        );
        assert_eq!(toks("-3"), vec![Token::Number("-3".into())]);
        assert_eq!(toks("1.5"), vec![Token::Number("1.5".into())]);
    }

    #[test]
    fn strings() {
        assert_eq!(toks(r#""hello""#), vec![Token::Str("hello".into())]);
    }

    #[test]
    fn errors() {
        assert!(lex("\"unterminated").is_err());
        assert!(lex("/* never closed").is_err());
        assert!(lex("@").is_err());
        let err = lex("x\n@").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn generic_types_tokenize() {
        assert_eq!(
            toks("sequence<DOMString>?"),
            vec![
                Token::Ident("sequence".into()),
                Token::Punct('<'),
                Token::Ident("DOMString".into()),
                Token::Punct('>'),
                Token::Punct('?'),
            ]
        );
    }
}
