//! # bfu-webidl
//!
//! The feature registry underlying the whole study.
//!
//! The paper derives its universe of measurable browser features by parsing
//! the 757 WebIDL files shipped in the Firefox 46.0.1 source tree, extracting
//! 1,392 JavaScript-reachable methods and properties, and attributing each to
//! one of 74 web standards (plus a catch-all *Non-Standard* bucket).
//!
//! This crate reproduces that pipeline:
//!
//! 1. [`catalog`] — a static table of all 75 standards with the paper's
//!    published metadata: abbreviation, feature count, observed site count,
//!    block rate, CVE count, and implementation year (Table 2 / Figs. 4-7).
//! 2. [`corpus`] — a deterministic generator that emits a WebIDL interface
//!    file per standard whose member count matches the catalog, standing in
//!    for the 757-file Firefox corpus.
//! 3. [`lexer`] / [`parser`] / [`ast`] — a WebIDL-subset parser that consumes
//!    the corpus exactly as the paper's tooling consumed Firefox's files.
//! 4. [`registry`] — the resulting [`FeatureRegistry`]: 1,392 features with
//!    stable ids, name lookup, and per-standard grouping.
//! 5. [`history`] — the Fig. 1 dataset (standards available and browser MLoC
//!    per year).

pub mod ast;
pub mod catalog;
pub mod corpus;
pub mod history;
pub mod lexer;
pub mod parser;
pub mod registry;

pub use catalog::{StandardId, StandardInfo, CATALOG, NON_STANDARD_ABBREV};
pub use registry::{FeatureId, FeatureInfo, FeatureKind, FeatureRegistry};
