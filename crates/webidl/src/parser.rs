//! Recursive-descent parser for the WebIDL subset.
//!
//! Grammar (subset of the real WebIDL grammar, sufficient for the corpus and
//! for realistic Firefox-style files):
//!
//! ```text
//! file       := definition*
//! definition := ext_attrs? "partial"? "interface" IDENT inherits? "{" member* "}" ";"
//! inherits   := ":" IDENT
//! member     := ext_attrs? ( const | attribute | operation )
//! const      := "const" type IDENT "=" literal ";"
//! attribute  := "readonly"? "attribute" type IDENT ";"
//! operation  := "static"? type IDENT "(" args? ")" ";"
//! args       := arg ("," arg)*
//! arg        := "optional"? type IDENT
//! type       := ("unsigned" | "unrestricted")? IDENT ("<" type ">")? "?"?
//! ext_attrs  := "[" ... balanced ... "]"
//! ```

use crate::ast::{Argument, Attribute, Const, IdlFile, Interface, Member, Operation};
use crate::lexer::{lex, Spanned, Token};
use std::fmt;

/// Parse error with a line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// 1-based line number (0 if end of input).
    pub line: u32,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse a WebIDL source string into an [`IdlFile`].
pub fn parse(src: &str) -> Result<IdlFile, ParseError> {
    let tokens = lex(src).map_err(|e| ParseError {
        message: e.message,
        line: e.line,
    })?;
    Parser { tokens, pos: 0 }.file()
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|s| &s.token)
    }

    fn line(&self) -> u32 {
        self.tokens.get(self.pos).map_or(0, |s| s.line)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|s| s.token.clone());
        self.pos += 1;
        t
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            line: self.line(),
        }
    }

    fn expect_punct(&mut self, c: char) -> Result<(), ParseError> {
        match self.bump() {
            Some(Token::Punct(p)) if p == c => Ok(()),
            other => Err(ParseError {
                message: format!("expected `{c}`, found {other:?}"),
                line: self
                    .tokens
                    .get(self.pos.saturating_sub(1))
                    .map_or(0, |s| s.line),
            }),
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(ParseError {
                message: format!("expected identifier, found {other:?}"),
                line: self
                    .tokens
                    .get(self.pos.saturating_sub(1))
                    .map_or(0, |s| s.line),
            }),
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Token::Ident(s)) if s == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_punct(&mut self, c: char) -> bool {
        if matches!(self.peek(), Some(Token::Punct(p)) if *p == c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn file(&mut self) -> Result<IdlFile, ParseError> {
        let mut interfaces = Vec::new();
        while self.peek().is_some() {
            interfaces.push(self.definition()?);
        }
        Ok(IdlFile { interfaces })
    }

    /// Parse a bracketed extended-attribute list into raw strings.
    fn ext_attrs(&mut self) -> Result<Vec<String>, ParseError> {
        if !self.eat_punct('[') {
            return Ok(Vec::new());
        }
        let mut attrs = Vec::new();
        let mut current = String::new();
        let mut depth = 1usize;
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated extended attribute list")),
                Some(Token::Punct('[')) => {
                    depth += 1;
                    current.push('[');
                }
                Some(Token::Punct(']')) => {
                    depth -= 1;
                    if depth == 0 {
                        if !current.is_empty() {
                            attrs.push(current);
                        }
                        return Ok(attrs);
                    }
                    current.push(']');
                }
                Some(Token::Punct(',')) if depth == 1 => {
                    attrs.push(std::mem::take(&mut current));
                }
                Some(tok) => {
                    if !current.is_empty()
                        && matches!(tok, Token::Ident(_) | Token::Number(_))
                        && current.ends_with(|c: char| c.is_ascii_alphanumeric() || c == '_')
                    {
                        current.push(' ');
                    }
                    current.push_str(&tok.to_string());
                }
            }
        }
    }

    fn definition(&mut self) -> Result<Interface, ParseError> {
        let ext_attrs = self.ext_attrs()?;
        let partial = self.eat_keyword("partial");
        if !self.eat_keyword("interface") {
            return Err(self.err(format!("expected `interface`, found {:?}", self.peek())));
        }
        let name = self.expect_ident()?;
        let inherits = if self.eat_punct(':') {
            Some(self.expect_ident()?)
        } else {
            None
        };
        self.expect_punct('{')?;
        let mut members = Vec::new();
        while !self.eat_punct('}') {
            if self.peek().is_none() {
                return Err(self.err(format!("unterminated interface `{name}`")));
            }
            members.push(self.member()?);
        }
        self.expect_punct(';')?;
        Ok(Interface {
            name,
            inherits,
            partial,
            ext_attrs,
            members,
        })
    }

    fn member(&mut self) -> Result<Member, ParseError> {
        let _attrs = self.ext_attrs()?;
        if self.eat_keyword("const") {
            let ty = self.parse_type()?;
            let name = self.expect_ident()?;
            self.expect_punct('=')?;
            let value = match self.bump() {
                Some(Token::Number(n)) => n,
                Some(Token::Ident(s)) => s, // true/false/null
                other => return Err(self.err(format!("expected literal, found {other:?}"))),
            };
            self.expect_punct(';')?;
            return Ok(Member::Const(Const { name, ty, value }));
        }
        let readonly = self.eat_keyword("readonly");
        if self.eat_keyword("attribute") {
            let ty = self.parse_type()?;
            let name = self.expect_ident()?;
            self.expect_punct(';')?;
            return Ok(Member::Attribute(Attribute { name, ty, readonly }));
        }
        if readonly {
            return Err(self.err("`readonly` must be followed by `attribute`"));
        }
        let is_static = self.eat_keyword("static");
        let return_type = self.parse_type()?;
        let name = self.expect_ident()?;
        self.expect_punct('(')?;
        let mut args = Vec::new();
        if !self.eat_punct(')') {
            loop {
                let optional = self.eat_keyword("optional");
                let ty = self.parse_type()?;
                let arg_name = self.expect_ident()?;
                args.push(Argument {
                    name: arg_name,
                    ty,
                    optional,
                });
                if self.eat_punct(')') {
                    break;
                }
                self.expect_punct(',')?;
            }
        }
        self.expect_punct(';')?;
        Ok(Member::Operation(Operation {
            name,
            return_type,
            args,
            is_static,
        }))
    }

    /// Parse a type and canonicalize it to a display string.
    fn parse_type(&mut self) -> Result<String, ParseError> {
        let mut ty = String::new();
        // `unsigned long long`, `unrestricted double`
        while matches!(self.peek(), Some(Token::Ident(s)) if s == "unsigned" || s == "unrestricted")
        {
            ty.push_str(&self.expect_ident()?);
            ty.push(' ');
        }
        ty.push_str(&self.expect_ident()?);
        // `long long`
        if ty.ends_with("long") && matches!(self.peek(), Some(Token::Ident(s)) if s == "long") {
            ty.push(' ');
            ty.push_str(&self.expect_ident()?);
        }
        if self.eat_punct('<') {
            ty.push('<');
            ty.push_str(&self.parse_type()?);
            self.expect_punct('>')?;
            ty.push('>');
        }
        if self.eat_punct('?') {
            ty.push('?');
        }
        Ok(ty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Member;

    #[test]
    fn parses_simple_interface() {
        let file = parse(
            r#"
            [Exposed=Window]
            interface Document : Node {
              Element createElement(DOMString localName);
              attribute DOMString title;
              readonly attribute DOMString URL;
              const unsigned short ELEMENT_NODE = 1;
            };
            "#,
        )
        .unwrap();
        assert_eq!(file.interfaces.len(), 1);
        let doc = &file.interfaces[0];
        assert_eq!(doc.name, "Document");
        assert_eq!(doc.inherits.as_deref(), Some("Node"));
        assert!(!doc.partial);
        assert_eq!(doc.ext_attrs, vec!["Exposed=Window"]);
        assert_eq!(doc.members.len(), 4);
        assert_eq!(doc.operations().count(), 1);
        assert_eq!(doc.attributes().count(), 2);
        let op = doc.operations().next().unwrap();
        assert_eq!(op.name, "createElement");
        assert_eq!(op.return_type, "Element");
        assert_eq!(op.args.len(), 1);
        assert_eq!(op.args[0].ty, "DOMString");
    }

    #[test]
    fn parses_partial_and_static_and_optional() {
        let file = parse(
            r#"
            partial interface Navigator {
              static boolean isSupported();
              Promise<MediaStream> getUserMedia(optional MediaStreamConstraints constraints);
            };
            "#,
        )
        .unwrap();
        let nav = &file.interfaces[0];
        assert!(nav.partial);
        let ops: Vec<_> = nav.operations().collect();
        assert!(ops[0].is_static);
        assert_eq!(ops[1].return_type, "Promise<MediaStream>");
        assert!(ops[1].args[0].optional);
    }

    #[test]
    fn parses_complex_types() {
        let file = parse(
            r#"
            interface X {
              attribute unsigned long long count;
              sequence<DOMString>? names();
              attribute double? ratio;
            };
            "#,
        )
        .unwrap();
        let x = &file.interfaces[0];
        let attrs: Vec<_> = x.attributes().collect();
        assert_eq!(attrs[0].ty, "unsigned long long");
        assert_eq!(attrs[1].ty, "double?");
        let op = x.operations().next().unwrap();
        assert_eq!(op.return_type, "sequence<DOMString>?");
    }

    #[test]
    fn readonly_must_precede_attribute() {
        assert!(parse("interface X { readonly DOMString y(); };").is_err());
    }

    #[test]
    fn unterminated_interface_errors() {
        let err = parse("interface X { void f();").unwrap_err();
        assert!(err.message.contains("unterminated"));
    }

    #[test]
    fn missing_semicolon_errors() {
        assert!(parse("interface X { } ").is_err());
    }

    #[test]
    fn multiple_interfaces() {
        let file = parse("interface A { void a(); }; interface B : A { void b(); };").unwrap();
        assert_eq!(file.interfaces.len(), 2);
        assert_eq!(file.interfaces[1].inherits.as_deref(), Some("A"));
    }

    #[test]
    fn ext_attrs_on_members_skipped() {
        let file = parse(
            r#"
            interface X {
              [Throws, Pref="dom.enable"] void f();
            };
            "#,
        )
        .unwrap();
        assert_eq!(file.interfaces[0].operations().count(), 1);
    }

    #[test]
    fn const_values() {
        let file = parse("interface X { const unsigned short K = 0x20; const boolean B = true; };")
            .unwrap();
        let consts: Vec<_> = file.interfaces[0]
            .members
            .iter()
            .filter_map(|m| match m {
                Member::Const(c) => Some(c),
                _ => None,
            })
            .collect();
        assert_eq!(consts[0].value, "0x20");
        assert_eq!(consts[1].value, "true");
    }
}
