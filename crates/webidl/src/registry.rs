//! The feature registry: every instrumentable feature, with stable ids.
//!
//! Built by parsing the generated WebIDL corpus exactly the way the paper's
//! tooling parsed Firefox's: each operation becomes a *method* feature
//! (`Interface.prototype.name`), each writable attribute becomes a *property*
//! feature. Readonly attributes and constants are excluded — the paper's
//! extension could only observe method calls and property *writes*.
//!
//! Within a standard, features are ordered by popularity rank: rank 0 is the
//! standard's flagship (most popular) feature, matching the paper's
//! observation that a standard's popularity equals its most popular
//! feature's popularity.

use crate::ast::Member;
use crate::catalog::{StandardId, StandardInfo, CATALOG};
use crate::corpus;
use crate::parser;
use bfu_util::define_id;
use std::collections::HashMap;

define_id!(
    /// Index of a feature in the [`FeatureRegistry`].
    FeatureId,
    "feat"
);

/// Whether a feature is a callable method or a writable property.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FeatureKind {
    /// Counted when called (prototype-patched by the instrumentation).
    Method,
    /// Counted when written (observed via `Object.watch` on singletons, or
    /// via patched setters on prototypes).
    Property,
}

/// Full description of one feature.
#[derive(Debug, Clone)]
pub struct FeatureInfo {
    /// Canonical display name, e.g. `Document.prototype.createElement`.
    pub name: String,
    /// Owning interface, e.g. `Document`.
    pub interface: String,
    /// Member name, e.g. `createElement`.
    pub member: String,
    /// Method or property.
    pub kind: FeatureKind,
    /// The standard this feature belongs to.
    pub standard: StandardId,
    /// Popularity rank within the standard (0 = flagship).
    pub rank_in_standard: u32,
}

/// The complete feature universe: 1,392 features across 75 standards.
#[derive(Debug, Clone)]
pub struct FeatureRegistry {
    features: Vec<FeatureInfo>,
    by_name: HashMap<String, FeatureId>,
    by_standard: Vec<Vec<FeatureId>>,
}

impl FeatureRegistry {
    /// Build the registry by generating and parsing the WebIDL corpus.
    ///
    /// Deterministic: feature ids are stable across runs.
    pub fn build() -> Self {
        let corpus = corpus::generate();
        let mut features = Vec::new();
        let mut by_name = HashMap::new();
        let mut by_standard: Vec<Vec<FeatureId>> = vec![Vec::new(); CATALOG.len()];

        for (std_ix, file) in corpus.iter().enumerate() {
            let std_id = StandardId::from_usize(std_ix);
            let idl = parser::parse(&file.source)
                .unwrap_or_else(|e| panic!("corpus file {} failed to parse: {e}", file.file_name));
            let mut rank = 0u32;
            for iface in &idl.interfaces {
                for member in &iface.members {
                    let (member_name, kind) = match member {
                        Member::Operation(op) => (op.name.clone(), FeatureKind::Method),
                        Member::Attribute(a) if !a.readonly => {
                            (a.name.clone(), FeatureKind::Property)
                        }
                        _ => continue,
                    };
                    let id = FeatureId::from_usize(features.len());
                    let name = format!("{}.prototype.{}", iface.name, member_name);
                    by_name.insert(name.clone(), id);
                    by_standard[std_ix].push(id);
                    features.push(FeatureInfo {
                        name,
                        interface: iface.name.clone(),
                        member: member_name,
                        kind,
                        standard: std_id,
                        rank_in_standard: rank,
                    });
                    rank += 1;
                }
            }
        }

        FeatureRegistry {
            features,
            by_name,
            by_standard,
        }
    }

    /// Total number of features (the paper's 1,392).
    pub fn feature_count(&self) -> usize {
        self.features.len()
    }

    /// Total number of standards (the paper's 75).
    pub fn standard_count(&self) -> usize {
        CATALOG.len()
    }

    /// All features, indexable by [`FeatureId::index`].
    pub fn features(&self) -> &[FeatureInfo] {
        &self.features
    }

    /// Info for one feature.
    pub fn feature(&self, id: FeatureId) -> &FeatureInfo {
        &self.features[id.index()]
    }

    /// Catalog metadata for one standard.
    pub fn standard(&self, id: StandardId) -> &'static StandardInfo {
        &CATALOG[id.index()]
    }

    /// All standard ids.
    pub fn standard_ids(&self) -> impl Iterator<Item = StandardId> {
        (0..CATALOG.len()).map(StandardId::from_usize)
    }

    /// Feature ids belonging to a standard, flagship first.
    pub fn features_of(&self, std: StandardId) -> &[FeatureId] {
        &self.by_standard[std.index()]
    }

    /// Look up a feature by canonical name (`Iface.prototype.member`).
    pub fn by_name(&self, name: &str) -> Option<FeatureId> {
        self.by_name.get(name).copied()
    }

    /// Look up a feature by `(interface, member)` pair.
    pub fn by_interface_member(&self, interface: &str, member: &str) -> Option<FeatureId> {
        self.by_name(&format!("{interface}.prototype.{member}"))
    }

    /// The standard a feature belongs to.
    pub fn standard_of(&self, feature: FeatureId) -> StandardId {
        self.features[feature.index()].standard
    }
}

impl Default for FeatureRegistry {
    fn default() -> Self {
        Self::build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    #[test]
    fn registry_has_1392_features_and_75_standards() {
        let reg = FeatureRegistry::build();
        assert_eq!(reg.feature_count(), 1392);
        assert_eq!(reg.standard_count(), 75);
    }

    #[test]
    fn per_standard_counts_match_catalog() {
        let reg = FeatureRegistry::build();
        for std_id in reg.standard_ids() {
            let info = reg.standard(std_id);
            assert_eq!(
                reg.features_of(std_id).len() as u32,
                info.features,
                "{}",
                info.abbrev
            );
        }
    }

    #[test]
    fn flagship_is_rank_zero() {
        let reg = FeatureRegistry::build();
        let (dom1, _) = catalog::by_abbrev("DOM1").unwrap();
        let first = reg.features_of(dom1)[0];
        assert_eq!(reg.feature(first).name, "Document.prototype.createElement");
        assert_eq!(reg.feature(first).rank_in_standard, 0);
    }

    #[test]
    fn lookup_by_name_roundtrips() {
        let reg = FeatureRegistry::build();
        for id in (0..reg.feature_count()).map(FeatureId::from_usize) {
            let info = reg.feature(id);
            assert_eq!(reg.by_name(&info.name), Some(id));
            assert_eq!(
                reg.by_interface_member(&info.interface, &info.member),
                Some(id)
            );
        }
    }

    #[test]
    fn known_flagships_resolvable() {
        let reg = FeatureRegistry::build();
        for name in [
            "Document.prototype.createElement",
            "XMLHttpRequest.prototype.open",
            "Navigator.prototype.vibrate",
            "Navigator.prototype.sendBeacon",
            "Document.prototype.querySelectorAll",
            "Window.prototype.requestAnimationFrame",
            "SVGTextContentElement.prototype.getComputedTextLength",
            "PluginArray.prototype.refresh",
        ] {
            assert!(reg.by_name(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn ranks_are_contiguous_within_standard() {
        let reg = FeatureRegistry::build();
        for std_id in reg.standard_ids() {
            for (i, &fid) in reg.features_of(std_id).iter().enumerate() {
                assert_eq!(reg.feature(fid).rank_in_standard as usize, i);
                assert_eq!(reg.standard_of(fid), std_id);
            }
        }
    }

    #[test]
    fn both_kinds_present() {
        let reg = FeatureRegistry::build();
        let methods = reg
            .features()
            .iter()
            .filter(|f| f.kind == FeatureKind::Method)
            .count();
        let props = reg.feature_count() - methods;
        assert!(methods > 500, "methods = {methods}");
        assert!(props > 200, "properties = {props}");
    }
}
