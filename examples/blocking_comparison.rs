//! Blocking comparison: crawl the same site under all four browser
//! configurations and show what the blockers change (§5.7 at one-site
//! granularity).
//!
//! ```text
//! cargo run --release --example blocking_comparison
//! ```

use bfu_browser::Browser;
use bfu_crawler::{policy_for, visit_site_round, BrowserProfile, CrawlConfig};
use bfu_net::SimNet;
use bfu_util::SimRng;
use bfu_webgen::{SiteId, SyntheticWeb, WebConfig};
use std::collections::HashSet;
use std::rc::Rc;

fn main() {
    let web = SyntheticWeb::generate(WebConfig {
        sites: 60,
        seed: 44,
        script_weight: 0,
    });
    let mut net = SimNet::new(SimRng::new(1));
    web.install_into(&mut net);
    let registry = Rc::new((**web.registry()).clone());
    let browser = Browser::new(registry.clone());
    let config = CrawlConfig {
        rounds_per_profile: 1,
        pages_per_site: 8,
        fanout: 3,
        page_budget_ms: 15_000,
        profiles: vec![],
        threads: 1,
        seed: 9,
        retry: bfu_crawler::RetryPolicy::default(),
        breaker: bfu_crawler::BreakerPolicy::default(),
        browser: bfu_crawler::BrowserConfig::default(),
        compile_cache: true,
    };

    // Pick an ad-heavy site (a news site with third parties).
    let site = (0..web.site_count())
        .map(SiteId::from_usize)
        .find(|&s| {
            let p = web.plan(s);
            !p.dead && !p.no_js && p.ad_parties.len() >= 2 && p.tracker_parties.len() >= 2
        })
        .expect("an ad-heavy site exists");
    let plan = web.plan(site);
    println!(
        "Site under test: {} ({:?}, {} ad networks, {} trackers embedded)\n",
        plan.site.domain,
        plan.site.category,
        plan.ad_parties.len(),
        plan.tracker_parties.len()
    );

    let profiles = [
        BrowserProfile::Default,
        BrowserProfile::AdblockOnly,
        BrowserProfile::GhosteryOnly,
        BrowserProfile::Blocking,
    ];
    let mut default_standards: HashSet<&str> = HashSet::new();
    for profile in profiles {
        let policy = policy_for(&web, profile);
        let mut rng = SimRng::new(777);
        let m = visit_site_round(
            &web,
            &browser,
            &mut net,
            &policy,
            profile,
            &plan.site.domain,
            &config,
            0,
            &mut rng,
        );
        let standards: HashSet<&str> = m
            .log
            .features()
            .iter()
            .map(|&f| registry.standard(registry.standard_of(f)).abbrev)
            .collect();
        println!(
            "{:13}  {:3} distinct features, {:2} standards, {:7} invocations",
            profile.label(),
            m.log.distinct_features(),
            standards.len(),
            m.log.total_invocations()
        );
        if profile == BrowserProfile::Default {
            default_standards = standards;
        } else {
            let mut gone: Vec<&&str> = default_standards.difference(&standards).collect();
            gone.sort();
            if !gone.is_empty() {
                println!(
                    "               standards silenced vs default: {}",
                    gone.iter()
                        .map(|s| s.to_string())
                        .collect::<Vec<_>>()
                        .join(", ")
                );
            }
        }
    }

    println!(
        "\nThe combined profile should silence at least as much as either blocker\n\
         alone — the paper's §5.7 story: blockers change *which kinds* of\n\
         features run, not just how many."
    );
}
