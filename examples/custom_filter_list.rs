//! Custom filter lists: the blocker engine as a standalone library.
//!
//! ```text
//! cargo run --release --example custom_filter_list
//! ```
//!
//! Authors a small ABP-syntax list, compiles it, and walks through matching
//! decisions for a batch of requests — showing anchors, type options,
//! third-party logic, exceptions, and element hiding.

use bfu_blocker::{BlockerStack, FilterEngine, TrackerCategory, TrackerDb};
use bfu_net::{HttpRequest, ResourceType, Url};
use std::sync::Arc;

const LIST: &str = r#"
! --- my-filters.txt -------------------------------------------
! Block the banner network everywhere, any resource type:
||bannerly.net^
! Tracking pixels from metrics hosts, third-party only:
||pixelhub.io^$image,third-party
! A path pattern with wildcard + separator:
/sponsored/*/unit^
! But let the documented "acceptable" endpoint through:
@@||bannerly.net/acceptable^
! Hide ad shells on every site, and promos on news.example only:
##.ad-shell
news.example##.promo-box
"#;

fn req(url: &str, ty: ResourceType, from: &str) -> HttpRequest {
    HttpRequest::get(Url::parse(url).unwrap(), ty).with_initiator(Url::parse(from).unwrap())
}

fn main() {
    let engine = FilterEngine::from_list(LIST);
    println!(
        "compiled: {} block rules, {} exceptions, {} hiding rules\n",
        engine.block_rule_count(),
        engine.exception_rule_count(),
        engine.hide_rule_count()
    );

    let cases = [
        req(
            "http://cdn.bannerly.net/unit.js",
            ResourceType::Script,
            "http://news.example/",
        ),
        req(
            "http://bannerly.net/acceptable/ok.js",
            ResourceType::Script,
            "http://news.example/",
        ),
        req(
            "http://pixelhub.io/px.gif",
            ResourceType::Image,
            "http://news.example/",
        ),
        req(
            "http://pixelhub.io/px.gif",
            ResourceType::Image,
            "http://pixelhub.io/",
        ),
        req(
            "http://pixelhub.io/app.js",
            ResourceType::Script,
            "http://news.example/",
        ),
        req(
            "http://shop.example/sponsored/q3/unit?id=1",
            ResourceType::Xhr,
            "http://shop.example/",
        ),
        req(
            "http://clean.example/app.js",
            ResourceType::Script,
            "http://news.example/",
        ),
    ];
    for c in &cases {
        match engine.match_request(c) {
            Some(rule) => println!("BLOCK  {:55} by {rule}", c.url.to_string()),
            None => println!("allow  {}", c.url),
        }
    }

    println!(
        "\nelement hiding on news.example: {:?}",
        engine.hiding_selectors("news.example")
    );
    println!(
        "element hiding on shop.example: {:?}",
        engine.hiding_selectors("shop.example")
    );

    // Compose with a Ghostery-style tracker database, as the crawler does.
    let mut db = TrackerDb::new();
    db.add("pixelhub.io", TrackerCategory::Analytics);
    let stack = BlockerStack::none()
        .with_adblock(Arc::new(FilterEngine::from_list(LIST)))
        .with_ghostery(Arc::new(db));
    let decision = stack.decide(&req(
        "http://pixelhub.io/app.js",
        ResourceType::Script,
        "http://news.example/",
    ));
    println!("\ncombined stack on pixelhub script: {decision:?}");
    println!("(the ABP list only covers pixelhub images; the tracker DB catches the script)");
}
