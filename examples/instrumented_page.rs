//! Instrumented page: the paper's Fig. 2 in miniature.
//!
//! ```text
//! cargo run --release --example instrumented_page
//! ```
//!
//! Serves one hand-written page from a virtual server, loads it in the
//! instrumented browser (prototype patching + singleton watchpoints), clicks
//! around, runs the timers, and prints the extension's log lines in the
//! paper's `profile,domain,Feature(),count` format — once for the default
//! configuration and once with a blocking policy installed.

use bfu_browser::{AllowAll, Browser, RequestPolicy};
use bfu_net::{HttpRequest, HttpResponse, SimNet, Url};
use bfu_util::{SimRng, VirtualClock};
use bfu_webidl::FeatureRegistry;
use std::rc::Rc;
use std::sync::Arc;

const PAGE: &str = r#"
<html><head><title>example.com</title></head><body>
  <div id="app"><a href="/inbox">Inbox</a><button id="sync">sync</button></div>
  <div class="ad-slot"><script src="http://ads.adnet.test/serve.js"></script></div>
  <script>
    // Application code: uses Crypto and DOM features.
    var nonce = crypto_stub();
    function crypto_stub() {
      var c = new Crypto();
      c.getRandomValues([0, 0, 0, 0]);
      return 4;
    }
    var row = document.createElement('div');
    document.body.appendChild(row);
    row.cloneNode();
    __listen('#sync', 'click', function() {
      var x = new XMLHttpRequest();
      x.open('GET', '/api/sync');
    });
    setTimeout(function() { navigator.sendBeacon('/departure'); }, 4000);
  </script>
</body></html>
"#;

const AD_JS: &str = r#"
// Ad network script: canvas fingerprinting + beacons.
var c = document.createElement('canvas');
var ctx = c.getContext('2d');
var svg = new SVGTextContentElement();
svg.getComputedTextLength();
navigator.sendBeacon('http://ads.adnet.test/viewability');
"#;

struct AdBlockerStub;

impl RequestPolicy for AdBlockerStub {
    fn decide(&self, req: &HttpRequest) -> Option<String> {
        (req.url.registrable_domain() == "adnet.test").then(|| "||adnet.test^".into())
    }

    fn hiding_selectors(&self, _domain: &str) -> Vec<String> {
        vec![".ad-slot".into()]
    }
}

fn crawl_once(policy: &dyn RequestPolicy, profile: &str, registry: &Rc<FeatureRegistry>) {
    let mut net = SimNet::new(SimRng::new(7));
    net.register(
        "example.test",
        Arc::new(|req: &HttpRequest| match req.url.path() {
            "/" => HttpResponse::html(PAGE),
            _ => HttpResponse::ok("text/plain", "ok"),
        }),
    );
    net.register(
        "ads.adnet.test",
        Arc::new(|_: &HttpRequest| HttpResponse::javascript(AD_JS)),
    );

    let browser = Browser::new(registry.clone());
    let mut clock = VirtualClock::new();
    let url = Url::parse("http://example.test/").unwrap();
    let mut page = browser
        .load(&mut net, &url, policy, &mut clock)
        .expect("page loads");

    // Click the sync button, then let the 4 s timer fire.
    let button = page
        .interactive_elements()
        .into_iter()
        .find(|&n| page.api.host.borrow().doc.tag(n) == Some("button"));
    if let Some(b) = button {
        page.click(b);
    }
    let deadline = clock.now().plus(30_000);
    page.run_timers(&mut clock, deadline);
    page.pump_network(&mut net, policy, &mut clock);

    for line in page
        .log
        .borrow()
        .render_lines(profile, "example.test", registry)
    {
        println!("{line}");
    }
    println!(
        "# {} requests attempted, {} blocked, {} scripts run\n",
        page.stats.requests_attempted, page.stats.requests_blocked, page.stats.scripts_run
    );
}

fn main() {
    let registry = Rc::new(FeatureRegistry::build());
    println!("--- blocking configuration ---");
    crawl_once(&AdBlockerStub, "blocking", &registry);
    println!("--- default configuration ---");
    crawl_once(&AllowAll, "default", &registry);
    println!("Note how the canvas/SVG fingerprinting features appear only in the");
    println!("default run: the ad script that invokes them never loads under blocking.");
}
