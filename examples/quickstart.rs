//! Quickstart: run a small end-to-end study and print the headline results.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! This generates a 300-site synthetic web calibrated against the paper's
//! Table 2, crawls it with the instrumented browser under the default and
//! blocking configurations (plus the ad-only / tracker-only profiles), and
//! prints the §5.3 headline statistics plus the most- and least-blocked
//! standards.

use bfu_core::{Study, StudyConfig};
use bfu_crawler::BrowserProfile;

fn main() {
    let sites = 300;
    println!("Running a {sites}-site study (reduced depth)…");
    let study = Study::run(StudyConfig::quick(sites, 2016));
    let report = study.report();

    println!();
    println!("{}", report.headline_text());

    println!("Most popular standards:");
    let mut by_sites = report.table2.clone();
    by_sites.sort_by_key(|r| std::cmp::Reverse(r.sites));
    for row in by_sites.iter().take(8) {
        println!(
            "  {:8}  {:5} sites  ({:4.1}% blocked)",
            row.abbrev,
            row.sites,
            100.0 * row.block_rate.unwrap_or(0.0)
        );
    }

    println!();
    println!("Most heavily blocked standards (≥20 sites):");
    let mut by_block = report.table2.clone();
    by_block.retain(|r| r.sites >= 20 && r.block_rate.is_some());
    by_block.sort_by(|a, b| {
        b.block_rate
            .partial_cmp(&a.block_rate)
            .expect("no NaN block rates")
    });
    for row in by_block.iter().take(8) {
        println!(
            "  {:8}  {:5.1}% blocked  ({} sites)",
            row.abbrev,
            100.0 * row.block_rate.unwrap_or(0.0),
            row.sites
        );
    }

    println!();
    println!(
        "Dataset: {} sites measured, {} pages, {} feature invocations",
        study.dataset().measured_sites(),
        study.dataset().total_pages(),
        study.dataset().total_invocations()
    );
    let sp = &report.standards;
    let (dom1, _) = bfu_webidl::catalog::by_abbrev("DOM1").expect("DOM1");
    println!(
        "DOM Level 1 popularity: {:.1}% of sites (paper: 93.9%)",
        100.0 * sp.popularity(dom1, BrowserProfile::Default)
    );
}
