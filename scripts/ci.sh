#!/usr/bin/env bash
# Repository CI gate: build, test, lint. Run from the workspace root.
#
#   ./scripts/ci.sh
#
# Mirrors the tier-1 verification the roadmap pins (release build + tests)
# and adds the clippy wall the supervision, engine, and storage code is held
# to: unwrap/expect are denied outside tests in bfu-crawler, bfu-script,
# bfu-browser, bfu-store, bfu-objstore, and bfu-fabric (a panic in any of
# them takes a whole survey — or its only on-disk copy — down).
#
# Set BFU_TORTURE_FULL=1 for the exhaustive crash-point sweep (every backend
# op, both in-test and via the standalone store_torture binary) instead of
# the bounded default.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (workspace)"
cargo test --workspace -q

echo "==> store round-trip (integration)"
cargo test -q --test store

echo "==> adversarial chaos suite (hostile web, 1 vs 8 threads)"
cargo test -q --test chaos

echo "==> store crash-consistency torture (bounded; BFU_TORTURE_FULL=1 = exhaustive)"
# The integration suite bounds its sweep to a fixed budget of crash points
# unless BFU_TORTURE_FULL is set, in which case it kills the store at every
# single backend op — and the standalone binary re-proves the exhaustive
# sweep end to end in release mode.
cargo test -q --test store_torture
if [[ "${BFU_TORTURE_FULL:-0}" == "1" ]]; then
    TORTURE_OUT=$(mktemp)
    cargo run -q --release -p bfu-bench --bin store_torture -- --out "$TORTURE_OUT"
    rm -f "$TORTURE_OUT"
fi

echo "==> fabric crash-mid-lease + partition + network + replica torture (bounded; BFU_TORTURE_FULL=1 = exhaustive)"
# Kill the survey fabric at every worker/coordinator step AND partition the
# whole-object backend at every op (delayed visibility, stale reads/lists,
# lost replays under chaos), AND run the whole fabric over a hostile wire
# (dropped/truncated/stalled/duplicated/reordered frames, elected
# coordinator killed at every coordinator step with a standby finishing),
# AND over a 3-replica quorum store — any one replica killed at every one
# of its ops, partitioned for every window, killed together with a worker,
# rejoining empty and caught up by anti-entropy, the CAS primary dead from
# the start — proving every schedule recovers to the single-process
# fingerprint; the standalone binary re-proves the exhaustive kill,
# partition, and kill×partition sweeps in release.
cargo test -q --test fabric_torture
if [[ "${BFU_TORTURE_FULL:-0}" == "1" ]]; then
    TORTURE_OUT=$(mktemp)
    cargo run -q --release -p bfu-bench --bin fabric_torture -- --out "$TORTURE_OUT"
    rm -f "$TORTURE_OUT"
fi

echo "==> object-store torture (crash sweep, publish windows, listing order, replica quorums)"
# The whole-object backend: every-op crash sweep with process-restart
# recovery, manifest old-or-new on both publish lowerings (versioned put
# and copy+delete rename, including the window between copy and delete),
# chaos-partitioned store runs, the shuffled-listing regression, plus the
# replica dimension — any single replica killed at any of its ops with no
# error surfacing, stale R=1 reads caught by visibility retries and healed
# by scrub, and a replayed mutation past the server's replay window
# refused typed instead of silently re-executed.
cargo test -q --test objstore_torture

echo "==> cross-process fabric (real worker processes; DirObjectStore + real TCP)"
# Two real OS worker processes coordinating only through the object store
# must fingerprint identically to a single-process LocalFs run, a worker
# process dying mid-run must be fenced and its leases reassigned, and the
# networked variant — coordinator and workers dialing an ObjectServer over
# real localhost TCP sockets, the coordinator under an elected CAS-fenced
# term — must land on the same fingerprint with remote-op and election
# counters in the provenance sidecar.
cargo test -q --test fabric_proc

echo "==> no-panic property tests + engine differential (tree-walk vs VM)"
# proptests include the engine differential suite: random token soup and
# mutated programs must produce identical outcomes, fuel, heap, and string
# accounting under the tree-walk oracle and the bytecode VM, and whole
# random crawls must fingerprint identically engine to engine. The chaos
# suite above extends the same gate to a 200-site hostile web.
cargo test -q --test proptests

echo "==> crawl_bench smoke (engine x cache grid fingerprints + live caches)"
# Small scale: correctness gate, not a performance measurement. crawl_bench
# itself errors if any engine x cache cell diverges from the warmup
# fingerprint, if a cached run reports the cache disabled, or if the VM run
# never compiled a chunk; the jq-less greps below additionally pin the grid
# columns and a real hit rate so a silently dead cache — AST or chunk
# family — or a dropped engine dimension cannot pass.
CI_BENCH_OUT=$(mktemp)
cargo run -q --release -p bfu-bench --bin crawl_bench -- \
    --sites 10 --rounds 2 --script-weight 25 --out "$CI_BENCH_OUT"
grep -q '"fingerprints_match": true' "$CI_BENCH_OUT"
grep -q '"treewalk": {' "$CI_BENCH_OUT"
grep -q '"vm": {' "$CI_BENCH_OUT"
grep -q '"vm_speedup"' "$CI_BENCH_OUT"
grep -q '"hits": 0,' "$CI_BENCH_OUT" && { echo "compile cache saw zero hits"; exit 1; }
grep -q '"chunk_hits": 0,' "$CI_BENCH_OUT" && { echo "chunk cache saw zero hits"; exit 1; }
rm -f "$CI_BENCH_OUT"

echo "==> fabric_bench smoke (workers × backend fingerprints identical to single-process)"
# Small scale: the gate is the fingerprint cross-check, not throughput.
# fabric_bench exits non-zero itself on divergence; the greps pin the flag
# and the presence of both backend columns in the emitted JSON so a
# silently skipped check or a dropped grid dimension cannot pass.
CI_FABRIC_OUT=$(mktemp)
cargo run -q --release -p bfu-bench --bin fabric_bench -- \
    --sites 12 --per-lease 2 --out "$CI_FABRIC_OUT"
grep -q '"fingerprints_match": true' "$CI_FABRIC_OUT"
grep -q '"backend": "objstore"' "$CI_FABRIC_OUT"
grep -q '"backend": "posix"' "$CI_FABRIC_OUT"
grep -q '"backend": "remote"' "$CI_FABRIC_OUT"
grep -q '"backend": "replicated"' "$CI_FABRIC_OUT"
# The replicated column must show real quorum effort, not a dead front:
# some row carries 3 replicas with non-zero quorum write and read counts.
grep -q '"replicas": 3' "$CI_FABRIC_OUT"
grep -qE '"replica_quorum_writes": [1-9]' "$CI_FABRIC_OUT"
grep -qE '"replica_quorum_reads": [1-9]' "$CI_FABRIC_OUT"
rm -f "$CI_FABRIC_OUT"

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "CI OK"
