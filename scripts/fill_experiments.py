#!/usr/bin/env python3
"""Fill EXPERIMENTS.md's MEASURED_* placeholders from repro_full_output.txt.

Usage: python3 scripts/fill_experiments.py
Reads repro_full_output.txt next to EXPERIMENTS.md and substitutes measured
values in place. Idempotent only on a fresh template; keep the template in
version control.
"""
import re
import sys
from pathlib import Path

root = Path(__file__).resolve().parent.parent
out = (root / "repro_full_output.txt").read_text()
exp_path = root / "EXPERIMENTS.md"
exp = exp_path.read_text()


def section(name: str) -> str:
    m = re.search(rf"^================ {name} ================\n(.*?)(?=^================|\Z)",
                  out, re.S | re.M)
    if not m:
        sys.exit(f"missing section {name}")
    return m.group(1)


subs = {}

t1 = section("table1")
subs["MEASURED_T1_DOMAINS"] = re.search(r"Domains measured\s+(\d+)", t1).group(1)
subs["MEASURED_T1_PAGES"] = re.search(r"Web pages visited\s+(\d+)", t1).group(1)
subs["MEASURED_T1_INVOCATIONS"] = re.search(r"Feature invocations\s+(\d+)", t1).group(1)
subs["MEASURED_T1_DAYS"] = re.search(r"interaction time\s+([\d.]+)", t1).group(1)

h = section("headline")
subs["MEASURED_H_NEVER"] = re.search(r"never used:\s+(\d+) / 1392 \(([\d.]+)%", h).expand(r"\1 (\2%)")
subs["MEASURED_H_UNDER1"] = re.search(r"on <1% of sites:\s+(\d+)", h).group(1)
subs["MEASURED_H_CUM"] = re.search(r"incl\. unused:\s+(\d+) \(([\d.]+)%", h).expand(r"\1 (\2%)")
subs["MEASURED_H_BLOCKED90"] = re.search(r"blocked ≥90%:\s+(\d+) \(([\d.]+)%", h).expand(r"\1 (\2%)")
subs["MEASURED_H_UNDER1_BLOCK"] = re.search(r"under blocking:\s+(\d+) \(([\d.]+)%", h).expand(r"\1 (\2%)")
subs["MEASURED_H_STD_NEVER"] = re.search(r"Standards never used:\s+(\d+)", h).group(1)
subs["MEASURED_H_STD_UNDER1"] = re.search(r"Standards ≤1% of sites:\s+(\d+)", h).group(1)

t2 = section("table2")
measured_domains = int(subs["MEASURED_T1_DOMAINS"])
for abbrev, key in [("DOM1", "MEASURED_DOM1"), ("HTML", "MEASURED_HTML"),
                    ("CSS-OM", "MEASURED_CSSOM"), ("AJAX", "MEASURED_AJAX"),
                    ("WCR", "MEASURED_WCR"), ("H-C", "MEASURED_HC"),
                    ("H-CM", "MEASURED_HCM"), ("TC", "MEASURED_TC"),
                    ("BE", "MEASURED_BE"), ("PT2", "MEASURED_PT2"),
                    ("SVG", "MEASURED_SVG"), ("WEBGL", "MEASURED_WEBGL"),
                    ("WEBA", "MEASURED_WEBA")]:
    m = re.search(rf"\s{re.escape(abbrev)}\s+\d+\s+(\d+)\s+([\d.]+|--)\s+\d+\s*$", t2, re.M)
    if not m:
        sys.exit(f"missing table2 row {abbrev}")
    sites, block = int(m.group(1)), m.group(2)
    pct = 100.0 * sites / measured_domains
    block_txt = "—" if block == "--" else f"{block}%"
    subs[key] = f"{pct:.1f}% | {block_txt}"

t3 = section("table3")
rows = re.findall(r"^\s+(\d)\s+([\d.]+)$", t3, re.M)
for rnd, val in rows:
    subs[f"MEASURED_T3_R{rnd}"] = val

f4 = section("fig4")
m = re.search(r"H-CM\s+\d+\s+([\d.]+)", f4)
subs["MEASURED_FIG4_HCM"] = f"{m.group(1)}%"

f5 = section("fig5")
deltas = [abs(float(d)) for d in re.findall(r"([+-][\d.]+)$", f5, re.M)]
subs["MEASURED_FIG5_DEV"] = f"{sum(deltas)/len(deltas)/100:.3f}" if deltas else "n/a"

f6 = section("fig6")
pts = re.findall(r"^\s+(\d{4})\s+\S+\s+(\d+)\s", f6, re.M)
xs = [float(a) for a, _ in pts]
ys = [float(b) for _, b in pts]
n = len(xs)
mx, my = sum(xs) / n, sum(ys) / n
cov = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
vx = sum((x - mx) ** 2 for x in xs) ** 0.5
vy = sum((y - my) ** 2 for y in ys) ** 0.5
subs["MEASURED_FIG6_R"] = f"{cov / (vx * vy):.2f}" if vx and vy else "0"

f8 = section("fig8")
m = re.search(r"median (\d+), max (\d+)", f8)
subs["MEASURED_FIG8_MEDIAN"] = m.group(1)
subs["MEASURED_FIG8_MAX"] = m.group(2)

f9 = section("fig9")
m = re.search(r"([\d.]+)% of sites: nothing new", f9)
subs["MEASURED_FIG9_ZERO"] = f"{m.group(1)}%"

for key, val in sorted(subs.items(), key=lambda kv: -len(kv[0])):
    exp = exp.replace(key, val)

leftover = re.findall(r"MEASURED_\w+", exp)
exp_path.write_text(exp)
print("filled", len(subs), "placeholders;", "leftover:", leftover)
