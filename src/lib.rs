//! # browser-feature-usage
//!
//! A from-scratch Rust reproduction of *"Browser Feature Usage on the
//! Modern Web"* (Snyder, Ansari, Taylor, Kanich — IMC 2016).
//!
//! This facade re-exports the whole workspace. Start with [`Study`]:
//!
//! ```no_run
//! use browser_feature_usage::{Study, StudyConfig};
//!
//! let study = Study::run(StudyConfig::quick(300, 2016));
//! println!("{}", study.report().headline_text());
//! ```
//!
//! The subsystem crates are available under their own names for direct use:
//!
//! | Crate | Contents |
//! |---|---|
//! | [`bfu_webidl`] | WebIDL parser, 75-standard catalog, 1,392-feature registry |
//! | [`bfu_net`] | deterministic network: URL, HTTP/1.1 codec, fault injection |
//! | [`bfu_dom`] | arena DOM, CSS selectors, events, HTML parser |
//! | [`bfu_script`] | mini-JS engine: prototypes, closures, watchpoints |
//! | [`bfu_browser`] | page pipeline, Web API surface, the measuring extension |
//! | [`bfu_blocker`] | ABP filter engine + Ghostery-style tracker DB |
//! | [`bfu_webgen`] | calibrated synthetic Alexa-10k web |
//! | [`bfu_monkey`] | gremlins + path-novelty crawl planner + human profile |
//! | [`bfu_crawler`] | parallel survey: profiles × rounds × pages |
//! | [`bfu_analysis`] | every table and figure of the paper |
//! | [`bfu_store`] | crash-safe dataset shards: crawl resumption, memoized analysis |

pub use bfu_core::*;

pub use bfu_analysis;
pub use bfu_blocker;
pub use bfu_browser;
pub use bfu_crawler;
pub use bfu_dom;
pub use bfu_monkey;
pub use bfu_net;
pub use bfu_script;
pub use bfu_store;
pub use bfu_util;
pub use bfu_webgen;
pub use bfu_webidl;
