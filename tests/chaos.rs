//! Adversarial chaos suite: the crawl must survive a hostile web.
//!
//! A 200-site web where half the sites are replaced by hostile pages —
//! infinite loops, unbounded recursion, allocation/string bombs,
//! prototype-chain abuse, parser nesting bombs, malformed source, timer
//! storms — is crawled under deliberately tight resource budgets. The
//! survey must complete with zero worker panics, classify every loss with a
//! typed [`CrawlError`], trip every governor axis, exercise the per-host
//! circuit breaker, and fingerprint identically at 1 and 8 threads.

use bfu_crawler::{
    BreakerPolicy, BrowserConfig, BrowserProfile, CrawlConfig, CrawlError, Dataset, RetryPolicy,
    Survey,
};
use bfu_webgen::{HostilePlan, SyntheticWeb, WebConfig};
use std::sync::OnceLock;

const SITES: usize = 200;
const WEB_SEED: u64 = 0xC4A05;

/// Half the web turns hostile, drawn from every [`HostileClass`] by hash.
fn hostility() -> HostilePlan {
    HostilePlan::new(0xBAD5EED, 500)
}

/// Budgets tight enough that every hostile class traps within a round, and
/// a breaker tuned so trap hosts open, probe, escalate, and skip.
fn chaos_config(threads: usize) -> CrawlConfig {
    CrawlConfig {
        rounds_per_profile: 6,
        pages_per_site: 3,
        fanout: 2,
        page_budget_ms: 4_000, // round slot = 3 * 4_000 * 2 = 24_000 ms
        profiles: vec![BrowserProfile::Default],
        threads,
        seed: 0x0DD5,
        retry: RetryPolicy::default(),
        breaker: BreakerPolicy {
            trip_threshold: 2,
            cooldown_ms: 20_000, // < slot: first re-entry is a probe
            cooldown_factor: 4,  // escalated 80_000 > slot: then skips
            max_cooldown_ms: 600_000,
        },
        browser: BrowserConfig {
            script_fuel: 120_000,
            callback_fuel: 20_000,
            max_heap_cells: 4_000,
            max_string_bytes: 64_000,
            max_call_depth: 48,
            max_timer_callbacks: 500,
            ..BrowserConfig::default()
        },
        compile_cache: true,
    }
}

fn hostile_survey(threads: usize) -> Survey {
    let web = SyntheticWeb::generate(WebConfig {
        sites: SITES,
        seed: WEB_SEED,
        script_weight: 0,
    });
    Survey::new(web, chaos_config(threads)).with_hostility(hostility())
}

static BASELINE: OnceLock<Dataset> = OnceLock::new();

/// The single-threaded reference crawl, shared across assertions.
fn baseline() -> &'static Dataset {
    BASELINE.get_or_init(|| hostile_survey(1).run())
}

#[test]
fn hostile_web_survives_with_zero_panics_and_typed_losses() {
    let ds = baseline();
    let health = ds.health();
    assert_eq!(health.sites_total, SITES);
    assert_eq!(health.sites_panicked, 0, "no worker may panic");
    assert_eq!(
        health.sites_completed + health.sites_failed,
        SITES,
        "every site accounted for"
    );
    // Benign sites still measure; hostile ones are typed losses.
    assert!(health.sites_completed > 0, "benign half still measured");
    assert!(health.sites_failed > 0, "hostile half classified as lost");
    assert_eq!(
        health.failures_by_class.iter().sum::<usize>(),
        health.sites_failed,
        "every lost site carries a failure class"
    );
    // The hostile taxonomy maps onto the fault taxonomy: budget traps from
    // the loop/bomb/recursion classes, syntax losses from malformed and
    // nesting-bomb sources.
    assert!(
        health.failures_by_class[CrawlError::ScriptBudget.class_ix()] > 0,
        "budget-trap sites classified"
    );
    assert!(
        health.failures_by_class[CrawlError::ScriptSyntax.class_ix()] > 0,
        "parse-refused sites classified"
    );
}

#[test]
fn every_governor_axis_trips() {
    let health = baseline().health();
    assert!(
        health.total_script_budget_errors > 0,
        "step-budget trips observed"
    );
    assert!(
        health.total_script_heap_errors > 0,
        "heap/string-budget trips observed"
    );
    assert!(
        health.total_script_depth_errors > 0,
        "call-depth trips observed"
    );
}

#[test]
fn circuit_breaker_skips_trap_hosts() {
    let health = baseline().health();
    // threshold 2, cooldown 20s, factor 4 against a 24s slot: every
    // persistent trap host goes open -> probe -> escalated open -> skip.
    assert!(
        health.rounds_circuit_skipped > 0,
        "open breakers must skip rounds"
    );
    // Skips are strictly fewer than trap-host rounds: the breaker probes.
    let trap_sites = health.failures_by_class[CrawlError::ScriptBudget.class_ix()] as u64;
    assert!(
        health.rounds_circuit_skipped < trap_sites * 6,
        "breaker still probes trap hosts"
    );
}

#[test]
fn hostile_crawl_is_thread_invariant() {
    let one = baseline();
    let eight = hostile_survey(8).run();
    assert_eq!(
        one.fingerprint(),
        eight.fingerprint(),
        "1-thread and 8-thread hostile crawls must be byte-identical"
    );
    assert_eq!(one.health(), eight.health());
}

#[test]
fn negative_cache_replays_hostile_parse_failures_identically() {
    // Malformed and nesting-bomb sources are diagnosed once and their parse
    // errors replayed from the negative cache on every later visit. That
    // replay must cost the same typed losses as parsing from scratch: a
    // cache-off crawl is byte-identical, down to the failure classes.
    let cached = baseline();
    let mut config = chaos_config(1);
    config.compile_cache = false;
    let web = SyntheticWeb::generate(WebConfig {
        sites: SITES,
        seed: WEB_SEED,
        script_weight: 0,
    });
    let uncached = Survey::new(web, config).with_hostility(hostility()).run();
    assert_eq!(
        cached.fingerprint(),
        uncached.fingerprint(),
        "negative caching must not change what a hostile crawl measures"
    );
    assert_eq!(
        cached.health().failures_by_class,
        uncached.health().failures_by_class,
        "cached parse errors must reproduce the same typed losses"
    );
    // The cached run really did replay errors rather than re-diagnose them:
    // 6 rounds of persistent parse-refused sites guarantee repeat probes.
    assert!(
        cached.cache.script_negative_hits > 0,
        "hostile web must exercise the negative cache: {:?}",
        cached.cache
    );
    assert!(!uncached.cache.enabled);
}

#[test]
fn hostile_crawl_is_engine_invariant() {
    // The baseline runs on the default engine (the bytecode VM). The same
    // hostile web crawled by the tree-walk oracle must be byte-identical:
    // same fingerprint, same typed-loss breakdown, every governor axis
    // tripping at the same sites. This is the chaos-grade differential gate
    // for the compiler + VM.
    let vm = baseline();
    let mut config = chaos_config(1);
    config.browser.engine = bfu_browser::Engine::TreeWalk;
    let web = SyntheticWeb::generate(WebConfig {
        sites: SITES,
        seed: WEB_SEED,
        script_weight: 0,
    });
    let tree = Survey::new(web, config).with_hostility(hostility()).run();
    assert_eq!(
        vm.fingerprint(),
        tree.fingerprint(),
        "VM and tree-walk hostile crawls must be byte-identical"
    );
    let mut vm_health = vm.health();
    let mut tree_health = tree.health();
    assert_eq!(
        vm_health.failures_by_class, tree_health.failures_by_class,
        "typed-loss breakdowns must agree engine to engine"
    );
    // Everything but the cache block (the engines consult different cache
    // families) must agree: budget/heap/depth trip totals included.
    let vm_cache = vm_health.cache;
    let tree_cache = tree_health.cache;
    vm_health.cache = Default::default();
    tree_health.cache = Default::default();
    assert_eq!(vm_health, tree_health);
    // And each engine really used its own family.
    assert!(vm_cache.chunk_negative_hits > 0, "{vm_cache:?}");
    assert_eq!(tree_cache.chunk_hits + tree_cache.chunk_misses, 0);
    assert!(tree_cache.script_negative_hits > 0, "{tree_cache:?}");
}

#[test]
fn hostility_is_part_of_the_survey_identity() {
    let benign = {
        let web = SyntheticWeb::generate(WebConfig {
            sites: SITES,
            seed: WEB_SEED,
            script_weight: 0,
        });
        Survey::new(web, chaos_config(1))
    };
    let hostile = hostile_survey(1);
    assert_ne!(
        benign.fingerprint(),
        hostile.fingerprint(),
        "a hostile overlay must change the dataset-store key"
    );
    let other_seed = {
        let web = SyntheticWeb::generate(WebConfig {
            sites: SITES,
            seed: WEB_SEED,
            script_weight: 0,
        });
        Survey::new(web, chaos_config(1)).with_hostility(HostilePlan::new(0x5AFE, 500))
    };
    assert_ne!(hostile.fingerprint(), other_seed.fingerprint());
}
