//! Cross-process fabric: a real coordinator process driving real worker
//! OS processes that coordinate only through a `DirObjectStore` directory —
//! no shared memory, no pipes, just whole-object puts and gets.
//!
//! The worker side re-enters this same test binary: `worker_entry` is a
//! no-op under normal `cargo test`, but when spawned with
//! `BFU_FABRIC_WORKER=1` it reconstructs the survey from env parameters
//! and runs [`bfu_fabric::run_fabric_worker`] against the shared store
//! directory. The parent asserts the merged dataset fingerprints
//! identically to a single-process run — the fabric's core contract, now
//! across process boundaries — and that a worker dying after a capped
//! number of leases has its remaining leases fenced and reassigned.

use bfu_crawler::{CrawlConfig, Survey};
use bfu_fabric::{run_fabric_worker, run_survey_fabric_processes, ProcConfig, WorkerExit};
use bfu_objstore::{
    spawn_tcp_server, DirObjectStore, ObjectBackend, ObjectServer, ObjectStore, RemoteClock,
    RemoteObjectStore, RemotePolicy, ReplicatedObjectStore, TcpTransport,
};
use bfu_store::{resume_survey_on, LocalFs, StorageBackend, PROVENANCE_NAME};
use bfu_webgen::{SyntheticWeb, WebConfig};
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::Arc;

fn survey_for(sites: usize, seed: u64) -> Survey {
    let web = SyntheticWeb::generate(WebConfig {
        sites,
        seed,
        script_weight: 0,
    });
    let mut config = CrawlConfig::quick(seed ^ 0xFAB);
    config.threads = 1;
    config.rounds_per_profile = 1;
    config.pages_per_site = 2;
    config.page_budget_ms = 2_000;
    Survey::new(web, config)
}

fn proc_config() -> ProcConfig {
    ProcConfig {
        workers: 2,
        sites_per_lease: 2,
        lease_ms: 600_000,
        poll_ms: 5,
        shard_capacity: 2,
        scrub_threads: 2,
        heartbeat_ms: 60_000,
    }
}

fn dir_backend(root: &Path) -> Arc<dyn StorageBackend> {
    let store = Arc::new(DirObjectStore::open(root).expect("open dir store"));
    Arc::new(ObjectBackend::new(store as Arc<_>))
}

/// A backend that reaches the store over a real localhost TCP socket:
/// `RemoteObjectStore` dialing the [`spawn_tcp_server`] listener. Each
/// process picks a distinct `client_id` — it namespaces the server's
/// idempotent-retry cache.
fn tcp_backend(addr: &str, client_id: u64) -> Arc<dyn StorageBackend> {
    let addr: std::net::SocketAddr = addr.parse().expect("server address");
    let remote = Arc::new(RemoteObjectStore::new(
        client_id,
        Box::new(TcpTransport::new(addr)),
        RemoteClock::Wall,
        RemotePolicy::default(),
    ));
    Arc::new(ObjectBackend::new(remote as Arc<dyn ObjectStore>))
}

/// A backend over *replicated* TCP object servers: one `RemoteObjectStore`
/// per comma-separated address, fronted by a majority-quorum
/// `ReplicatedObjectStore`. The wire policy fails fast — a dead replica is
/// the replication layer's problem (absorbed by the quorum), not something
/// worth a full wall-clock backoff schedule per op.
fn replicated_tcp_backend(addrs: &str, client_id: u64) -> Arc<dyn StorageBackend> {
    let policy = RemotePolicy {
        max_attempts: 2,
        base_backoff_ms: 1,
        max_backoff_ms: 2,
        ..RemotePolicy::default()
    };
    let replicas: Vec<Arc<dyn ObjectStore>> = addrs
        .split(',')
        .map(|a| {
            let addr: std::net::SocketAddr = a.parse().expect("replica address");
            Arc::new(RemoteObjectStore::new(
                client_id,
                Box::new(TcpTransport::new(addr)),
                RemoteClock::Wall,
                policy,
            )) as Arc<dyn ObjectStore>
        })
        .collect();
    let store = Arc::new(ReplicatedObjectStore::majority(replicas).expect("replicated store"));
    Arc::new(ObjectBackend::new(store as Arc<dyn ObjectStore>))
}

fn temp_root(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("bfu-fabric-proc-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    root
}

/// Spawn this test binary back into itself as fabric worker `id`.
fn spawn_worker(
    root: &Path,
    sites: usize,
    seed: u64,
    id: u32,
    max_leases: Option<usize>,
) -> std::io::Result<std::process::Child> {
    spawn_worker_on(root, None, sites, seed, id, max_leases)
}

/// [`spawn_worker`], optionally routing the worker's store traffic over a
/// TCP socket to `addr` instead of the shared directory.
fn spawn_worker_on(
    root: &Path,
    addr: Option<&str>,
    sites: usize,
    seed: u64,
    id: u32,
    max_leases: Option<usize>,
) -> std::io::Result<std::process::Child> {
    let exe = std::env::current_exe().expect("current test binary");
    let mut cmd = Command::new(exe);
    cmd.args(["worker_entry", "--exact", "--nocapture"])
        .env("BFU_FABRIC_WORKER", "1")
        .env("BFU_FABRIC_DIR", root)
        .env("BFU_FABRIC_WORKER_ID", id.to_string())
        .env("BFU_FABRIC_SITES", sites.to_string())
        .env("BFU_FABRIC_SEED", seed.to_string())
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null());
    if let Some(addr) = addr {
        cmd.env("BFU_FABRIC_ADDR", addr);
    }
    if let Some(cap) = max_leases {
        cmd.env("BFU_FABRIC_MAX_LEASES", cap.to_string());
    }
    cmd.spawn()
}

/// The worker process body. Under plain `cargo test` (no env) this is an
/// instant pass; spawned by the tests below it polls the shared store
/// directory and crawls whatever leases are routed to it.
#[test]
fn worker_entry() {
    if std::env::var("BFU_FABRIC_WORKER").as_deref() != Ok("1") {
        return;
    }
    let root = PathBuf::from(std::env::var("BFU_FABRIC_DIR").expect("BFU_FABRIC_DIR"));
    let id: u32 = std::env::var("BFU_FABRIC_WORKER_ID")
        .expect("BFU_FABRIC_WORKER_ID")
        .parse()
        .expect("worker id");
    let sites: usize = std::env::var("BFU_FABRIC_SITES")
        .expect("BFU_FABRIC_SITES")
        .parse()
        .expect("sites");
    let seed: u64 = std::env::var("BFU_FABRIC_SEED")
        .expect("BFU_FABRIC_SEED")
        .parse()
        .expect("seed");
    let max_leases: Option<usize> = std::env::var("BFU_FABRIC_MAX_LEASES")
        .ok()
        .map(|v| v.parse().expect("max leases"));
    let survey = survey_for(sites, seed);
    // With BFU_FABRIC_ADDR set the worker never touches the directory:
    // every byte crosses the TCP wire to the parent's object server(s) —
    // a comma-separated list means a quorum over replicated servers.
    let backend = match std::env::var("BFU_FABRIC_ADDR") {
        Ok(addrs) if addrs.contains(',') => replicated_tcp_backend(&addrs, u64::from(id)),
        Ok(addr) => tcp_backend(&addr, u64::from(id)),
        Err(_) => dir_backend(&root),
    };
    let exit = run_fabric_worker(&survey, backend, id, &proc_config(), max_leases, 20_000)
        .expect("worker run");
    assert_ne!(exit, WorkerExit::Orphaned, "worker never saw completion");
}

#[test]
fn two_worker_processes_match_single_process() {
    const SITES: usize = 10;
    const SEED: u64 = 211;
    let survey = survey_for(SITES, SEED);
    // The bar: an uninterrupted single-process LocalFs run.
    let local_root = temp_root("local");
    let local: Arc<dyn StorageBackend> = Arc::new(LocalFs::open(&local_root).expect("local fs"));
    let baseline = resume_survey_on(&survey, local)
        .expect("single-process LocalFs run")
        .dataset
        .fingerprint();
    let _ = std::fs::remove_dir_all(&local_root);

    let root = temp_root("two");
    let backend = dir_backend(&root);
    let cfg = proc_config();
    let outcome = run_survey_fabric_processes(&survey, backend.clone(), &cfg, &mut |id| {
        spawn_worker(&root, SITES, SEED, id, None)
    })
    .expect("cross-process fabric");
    assert_eq!(
        outcome.dataset.fingerprint(),
        baseline,
        "cross-process fabric must fingerprint identically to one process"
    );
    let stats = outcome.stats;
    assert_eq!(stats.workers, 2);
    assert_eq!(stats.leases_total, (SITES as u64).div_ceil(2));
    assert_eq!(stats.leases_completed, stats.leases_total);
    assert_eq!(stats.records_absorbed, SITES as u64);
    // The provenance sidecar proves which backend did the work.
    let provenance =
        String::from_utf8(backend.get(PROVENANCE_NAME).expect("provenance")).expect("UTF-8");
    assert!(provenance.contains("\"backend\""));
    assert!(provenance.contains("\"enabled\": true"));
    assert!(provenance.contains("\"workers\": 2"));
    // No staging or publish debris outlives the run.
    let names = backend.list().expect("list");
    assert!(
        names
            .iter()
            .all(|n| !n.starts_with("stage-") && !n.starts_with("publish-")),
        "debris survived: {names:?}"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn networked_fabric_over_real_tcp_matches_single_process() {
    const SITES: usize = 8;
    const SEED: u64 = 229;
    let survey = survey_for(SITES, SEED);
    let baseline = survey.run().fingerprint();

    // The store lives behind a real TCP listener: an `ObjectServer`
    // fronting a `DirObjectStore`, serving the framed wire protocol on
    // localhost. Coordinator and workers are separate clients of it —
    // nobody touches the directory directly.
    let root = temp_root("tcp");
    let inner = Arc::new(DirObjectStore::open(&root).expect("open dir store"));
    let server = Arc::new(ObjectServer::new(inner as Arc<dyn ObjectStore>));
    let mut handle = spawn_tcp_server(Arc::clone(&server)).expect("bind localhost");
    let addr = handle.addr.to_string();

    let backend = tcp_backend(&addr, 999);
    let cfg = proc_config();
    let outcome = run_survey_fabric_processes(&survey, backend.clone(), &cfg, &mut |id| {
        spawn_worker_on(&root, Some(&addr), SITES, SEED, id, None)
    })
    .expect("networked cross-process fabric");
    assert_eq!(
        outcome.dataset.fingerprint(),
        baseline,
        "the TCP fabric must fingerprint identically to one process"
    );
    assert!(server.served() > 0, "ops actually crossed the socket");
    let stats = outcome.stats;
    assert_eq!(stats.leases_completed, stats.leases_total);
    assert_eq!(stats.records_absorbed, SITES as u64);
    assert_eq!(
        stats.elections_won, 1,
        "a CAS-capable backend runs the coordinator under an elected term"
    );
    // Remote effort is visible in the provenance sidecar: the run is
    // auditable as a networked run from the durable record alone.
    let health = outcome.health.backend;
    assert!(health.remote_ops > 0, "remote ops counted: {health:?}");
    let provenance =
        String::from_utf8(backend.get(PROVENANCE_NAME).expect("provenance")).expect("UTF-8");
    assert!(provenance.contains("\"remote_ops\""));
    assert!(provenance.contains("\"elections_won\": 1"));
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn replicated_tcp_fabric_completes_with_one_replica_down_the_entire_run() {
    const SITES: usize = 8;
    const SEED: u64 = 233;
    let survey = survey_for(SITES, SEED);
    let baseline = survey.run().fingerprint();

    // Three independent object servers, each fronting its own directory —
    // three genuinely separate failure domains on localhost TCP.
    let roots: Vec<PathBuf> = (0..3).map(|i| temp_root(&format!("rep{i}"))).collect();
    let mut servers = Vec::new();
    let mut handles = Vec::new();
    for root in &roots {
        let inner = Arc::new(DirObjectStore::open(root).expect("open dir store"));
        let server = Arc::new(ObjectServer::new(inner as Arc<dyn ObjectStore>));
        let handle = spawn_tcp_server(Arc::clone(&server)).expect("bind localhost");
        servers.push(server);
        handles.push(handle);
    }
    let addrs = handles
        .iter()
        .map(|h| h.addr.to_string())
        .collect::<Vec<_>>()
        .join(",");

    // Kill the third replica before a single byte is written: the entire
    // survey — election, leases, publishes, merge, seal — must complete
    // over the surviving write/read majority.
    let mut dead = handles.pop().expect("three handles");
    dead.shutdown();

    let backend = replicated_tcp_backend(&addrs, 999);
    let cfg = proc_config();
    let outcome = run_survey_fabric_processes(&survey, backend.clone(), &cfg, &mut |id| {
        spawn_worker_on(&roots[0], Some(&addrs), SITES, SEED, id, None)
    })
    .expect("replicated fabric with one replica down");
    assert_eq!(
        outcome.dataset.fingerprint(),
        baseline,
        "a dead replica must never change the dataset"
    );
    assert!(servers[0].served() > 0 && servers[1].served() > 0);
    assert_eq!(servers[2].served(), 0, "the dead replica served nothing");
    let stats = outcome.stats;
    assert_eq!(stats.leases_completed, stats.leases_total);
    assert_eq!(stats.records_absorbed, SITES as u64);
    assert_eq!(
        stats.elections_won, 1,
        "the coordinator still runs under an elected term over replicas"
    );
    // The replication effort is auditable from the run's durable record.
    let health = outcome.health.backend;
    assert_eq!(health.replicas, 3, "replica count in health: {health:?}");
    assert!(
        health.replica_quorum_writes > 0,
        "quorum writes: {health:?}"
    );
    assert!(health.replica_quorum_reads > 0, "quorum reads: {health:?}");
    assert!(
        health.replica_errors > 0,
        "the dead replica's failures are counted, not hidden: {health:?}"
    );
    let provenance =
        String::from_utf8(backend.get(PROVENANCE_NAME).expect("provenance")).expect("UTF-8");
    assert!(provenance.contains("\"replicas\": 3"));
    assert!(provenance.contains("\"replica_quorum_writes\""));
    for mut handle in handles {
        handle.shutdown();
    }
    for root in &roots {
        let _ = std::fs::remove_dir_all(root);
    }
}

#[test]
fn dead_worker_process_is_fenced_and_its_leases_reassigned() {
    const SITES: usize = 12;
    const SEED: u64 = 223;
    let survey = survey_for(SITES, SEED);
    let baseline = survey.run().fingerprint();

    let root = temp_root("dead");
    let backend = dir_backend(&root);
    let cfg = proc_config();
    // Worker 1 exits after a single lease — a crash with work still
    // routed to it. Worker 2 runs to completion.
    let outcome = run_survey_fabric_processes(&survey, backend, &cfg, &mut |id| {
        spawn_worker(&root, SITES, SEED, id, if id == 1 { Some(1) } else { None })
    })
    .expect("fabric with a dying worker");
    assert_eq!(
        outcome.dataset.fingerprint(),
        baseline,
        "a dead worker must never change the dataset"
    );
    let stats = outcome.stats;
    assert_eq!(stats.leases_total, (SITES as u64).div_ceil(2));
    assert_eq!(stats.leases_completed, stats.leases_total);
    assert_eq!(stats.records_absorbed, SITES as u64);
    assert!(
        stats.leases_reclaimed >= 1,
        "the dead worker's remaining leases were force-reclaimed: {stats:?}"
    );
    let _ = std::fs::remove_dir_all(&root);
}
