//! Fabric torture: kill the survey fabric at every step and prove the
//! finished dataset always fingerprints identically to a single-process
//! run.
//!
//! The harness mirrors `store_torture`, one layer up: where that suite
//! power-cuts the *storage backend* at every I/O boundary, this one kills
//! the *fabric actors* — workers mid-crawl, mid-seal, at the very publish
//! step; the coordinator between lease-table writes, mid-merge — via the
//! deterministic step simulator in `bfu_fabric::sim`. A fault-free run
//! enumerates the step trace; the sweep re-runs the whole schedule once
//! per step with a kill at exactly that point.
//!
//! Beyond the kill sweep, the dedicated schedules: the double-issue run
//! (every lease handed to two workers — the loser must fence), and the
//! zombie-publish replay baked into every sim (a publish orphaned by a
//! kill is replayed after the table drains and must be fenced).
//!
//! Default is a bounded deterministic subset (CI-fast); set
//! `BFU_TORTURE_FULL=1` to sweep every step. The `fabric_torture` binary
//! in `bfu-bench` runs the full sweep standalone with progress output.

use bfu_crawler::{CrawlConfig, Survey};
use bfu_fabric::{
    run_sim, run_survey_fabric, FabricConfig, FabricError, FabricFaultPlan, SimOutcome,
};
use bfu_objstore::{ObjFaultPlan, ObjectBackend, ReplicatedObjectStore, SimObjectStore};
use bfu_store::{
    load_survey_dataset_on, FaultFs, LoadOutcome, StorageBackend, StoreFaultPlan, PROVENANCE_NAME,
};
use bfu_webgen::{SyntheticWeb, WebConfig};
use std::sync::{Arc, OnceLock};

const SITES: usize = 8;
const SEED: u64 = 137;

struct Fixture {
    survey: Survey,
    /// Fingerprint of the uninterrupted single-process dataset — the bar
    /// every tortured schedule must clear.
    baseline_fingerprint: u64,
    /// Step trace of one fault-free simulated fabric run.
    trace: Vec<String>,
}

static FIXTURE: OnceLock<Fixture> = OnceLock::new();

fn survey_for(sites: usize, seed: u64) -> Survey {
    let web = SyntheticWeb::generate(WebConfig {
        sites,
        seed,
        script_weight: 0,
    });
    let mut config = CrawlConfig::quick(seed ^ 0xFAB);
    // One crawl thread: measurements are thread-invariant (a tested
    // crawler property), and it keeps each simulated schedule cheap —
    // the sweep runs the whole survey once per kill point.
    config.threads = 1;
    config.rounds_per_profile = 1;
    config.pages_per_site = 2;
    config.page_budget_ms = 2_000;
    Survey::new(web, config)
}

/// Small leases + tiny shards: every lifecycle edge (multi-shard leases,
/// mid-lease seals, multiple merges) shows up even at 8 sites.
fn torture_config() -> FabricConfig {
    FabricConfig {
        workers: 1,
        sites_per_lease: 3,
        lease_ms: 10_000,
        site_ms: 1_000,
        shard_capacity: 2,
        scrub_threads: 2,
    }
}

fn fixture() -> &'static Fixture {
    FIXTURE.get_or_init(|| {
        let survey = survey_for(SITES, SEED);
        let baseline = survey.run();
        let sim = sim_with(&survey, &FabricFaultPlan::default()).expect("fault-free sim");
        assert_eq!(
            sim.outcome.dataset.fingerprint(),
            baseline.fingerprint(),
            "fabric must match the direct run before any torture"
        );
        assert!(sim.steps > 0, "a healthy run announces steps to kill at");
        Fixture {
            survey,
            baseline_fingerprint: baseline.fingerprint(),
            trace: sim.trace,
        }
    })
}

fn sim_with(survey: &Survey, plan: &FabricFaultPlan) -> Result<SimOutcome, FabricError> {
    let backend: Arc<dyn StorageBackend> = Arc::new(FaultFs::new(StoreFaultPlan::none()));
    run_sim(survey, backend, &torture_config(), plan)
}

/// The kill points to sweep: every step under `BFU_TORTURE_FULL=1` (or
/// when the schedule is small), a deterministic stride subset otherwise.
fn sweep_points(total: u64) -> Vec<u64> {
    const BUDGET: u64 = 48;
    let full = std::env::var("BFU_TORTURE_FULL").is_ok_and(|v| v == "1");
    if full || total <= BUDGET {
        return (0..total).collect();
    }
    let stride = total.div_ceil(BUDGET);
    let mut points: Vec<u64> = (0..total).step_by(stride as usize).collect();
    // Always include the last step: the final merge-commit/clean edge.
    if points.last() != Some(&(total - 1)) {
        points.push(total - 1);
    }
    points
}

#[test]
fn healthy_fabric_matches_single_process() {
    let fx = fixture();
    let sim = sim_with(&fx.survey, &FabricFaultPlan::default()).expect("healthy sim");
    assert_eq!(sim.outcome.dataset.fingerprint(), fx.baseline_fingerprint);
    assert_eq!(sim.worker_deaths, 0);
    assert_eq!(sim.coordinator_crashes, 0);
    assert_eq!(sim.fenced_replays, 0);
    let stats = sim.outcome.stats;
    assert!(stats.enabled);
    assert_eq!(stats.leases_total, SITES.div_ceil(3) as u64);
    assert_eq!(stats.leases_completed, stats.leases_total);
    assert_eq!(stats.leases_expired, 0);
    assert_eq!(stats.records_absorbed as usize, SITES);
    assert_eq!(sim.outcome.health.fabric, stats, "stats land in health");
}

#[test]
fn kill_at_every_step_recovers_to_identical_fingerprint() {
    let fx = fixture();
    let total = fx.trace.len() as u64;
    for k in sweep_points(total) {
        let plan = FabricFaultPlan {
            kill_at: Some(k),
            ..FabricFaultPlan::default()
        };
        let sim = sim_with(&fx.survey, &plan)
            .unwrap_or_else(|e| panic!("kill point {k} ({}): {e}", fx.trace[k as usize]));
        assert_eq!(
            sim.outcome.dataset.fingerprint(),
            fx.baseline_fingerprint,
            "kill point {k} ({}) diverged",
            fx.trace[k as usize]
        );
        assert!(
            sim.worker_deaths + sim.coordinator_crashes == 1,
            "kill point {k} ({}) must kill exactly one actor",
            fx.trace[k as usize]
        );
        // Losses are typed, not silent: a worker death shows up in the
        // health counters, a coordinator crash in recovered lease churn.
        let stats = sim.outcome.stats;
        if sim.worker_deaths > 0 {
            assert_eq!(stats.workers_died, sim.worker_deaths);
        }
        // The single kill can cost at most one lease's *accounting* (a
        // coordinator crash after the completion write but before the
        // counter bump); the table itself always drains — `run_sim` only
        // returns once every lease is durably completed.
        assert!(stats.leases_completed + sim.coordinator_crashes >= stats.leases_total);
    }
}

#[test]
fn stale_publish_after_worker_death_is_fenced() {
    let fx = fixture();
    // Kill exactly at a publish step: the worker dies with its publish in
    // hand, the lease expires and reissues, and the zombie message replays
    // after the drain — where the fence must reject it.
    let k = fx
        .trace
        .iter()
        .position(|l| l.starts_with("worker:publish:"))
        .expect("healthy trace has publish steps") as u64;
    let plan = FabricFaultPlan {
        kill_at: Some(k),
        ..FabricFaultPlan::default()
    };
    let sim = sim_with(&fx.survey, &plan).expect("publish-kill schedule");
    assert_eq!(sim.worker_deaths, 1);
    assert_eq!(sim.fenced_replays, 1, "the zombie publish must be fenced");
    assert!(sim.outcome.stats.publishes_fenced >= 1);
    assert!(sim.outcome.stats.leases_expired >= 1, "the lease expired");
    assert_eq!(
        sim.outcome.dataset.fingerprint(),
        fx.baseline_fingerprint,
        "fenced replay must not perturb the dataset"
    );
}

#[test]
fn double_issued_lease_never_double_counts() {
    let fx = fixture();
    let plan = FabricFaultPlan {
        double_issue: true,
        ..FabricFaultPlan::default()
    };
    let sim = sim_with(&fx.survey, &plan).expect("double-issue schedule");
    let leases = sim.outcome.stats.leases_total;
    assert_eq!(
        sim.outcome.stats.publishes_fenced, leases,
        "every lease's second publish must fence"
    );
    assert_eq!(sim.outcome.stats.leases_completed, leases);
    assert_eq!(
        sim.outcome.dataset.fingerprint(),
        fx.baseline_fingerprint,
        "double issue must not double count"
    );
}

#[test]
fn coordinator_crash_between_lease_table_writes_recovers() {
    let fx = fixture();
    for prefix in ["coord:issue:", "coord:merge-absorb:", "coord:merge-commit:"] {
        let k = fx
            .trace
            .iter()
            .position(|l| l.starts_with(prefix))
            .unwrap_or_else(|| panic!("healthy trace has {prefix} steps")) as u64;
        let plan = FabricFaultPlan {
            kill_at: Some(k),
            ..FabricFaultPlan::default()
        };
        let sim = sim_with(&fx.survey, &plan)
            .unwrap_or_else(|e| panic!("coordinator kill at {prefix}: {e}"));
        assert_eq!(sim.coordinator_crashes, 1, "{prefix} kills the coordinator");
        assert_eq!(
            sim.outcome.dataset.fingerprint(),
            fx.baseline_fingerprint,
            "coordinator crash at {prefix} diverged"
        );
    }
}

#[test]
fn multi_worker_fabric_matches_single_process() {
    // The real thing: four worker threads racing over one coordinator.
    let survey = survey_for(12, SEED ^ 0x4D);
    let baseline_fp = survey.run().fingerprint();
    let fs = Arc::new(FaultFs::new(StoreFaultPlan::none()));
    let backend: Arc<dyn StorageBackend> = fs.clone();
    let cfg = FabricConfig {
        workers: 4,
        sites_per_lease: 2,
        shard_capacity: 2,
        scrub_threads: 2,
        ..FabricConfig::default()
    };
    let outcome = run_survey_fabric(&survey, backend, &cfg).expect("4-worker fabric");
    assert_eq!(outcome.dataset.fingerprint(), baseline_fp);
    let stats = outcome.stats;
    assert!(stats.enabled);
    assert_eq!(stats.workers, 4);
    assert_eq!(stats.leases_total, 6);
    assert_eq!(stats.leases_completed, 6);
    assert_eq!(stats.records_absorbed, 12);
    // The provenance sidecar carries the fabric block.
    let provenance = String::from_utf8(fs.get(PROVENANCE_NAME).expect("provenance written"))
        .expect("provenance is UTF-8");
    assert!(provenance.contains("\"fabric\""));
    assert!(provenance.contains("\"workers\": 4"));
    assert!(provenance.contains("\"publishes_fenced\": 0"));
    // No staging debris survives the merge + finish sweep.
    assert!(
        fs.visible_names().iter().all(|n| !n.starts_with("stage-")),
        "staging namespace must be empty after finish"
    );
}

// ---------------------------------------------------------------------
// Object-store partition torture: the same fabric schedules, but the
// backend is `ObjectBackend<SimObjectStore>` — whole-object puts with
// delayed visibility, read-your-writes violations, lost-then-replayed
// puts, and stale/shuffled listings. The adapter's visibility retries
// must heal every partition, and the fabric's fences must absorb what
// retries can't, so every schedule still lands on the baseline
// fingerprint.
// ---------------------------------------------------------------------

/// Run the simulated fabric over a faulted object store; hand back the
/// sim outcome plus the store (for op counts and traces).
fn obj_sim_with(
    survey: &Survey,
    plan: &FabricFaultPlan,
    obj_plan: ObjFaultPlan,
) -> (Result<SimOutcome, FabricError>, Arc<SimObjectStore>) {
    let store = Arc::new(SimObjectStore::new(obj_plan));
    let backend: Arc<dyn StorageBackend> = Arc::new(ObjectBackend::new(store.clone()));
    (run_sim(survey, backend, &torture_config(), plan), store)
}

#[test]
fn healthy_fabric_over_object_store_matches_single_process() {
    let fx = fixture();
    let (sim, store) = obj_sim_with(
        &fx.survey,
        &FabricFaultPlan::default(),
        ObjFaultPlan::none(),
    );
    let sim = sim.expect("healthy object-store sim");
    assert_eq!(sim.outcome.dataset.fingerprint(), fx.baseline_fingerprint);
    assert!(store.ops() > 0, "the fabric drove backend ops");
    // The coordinator's finish fills health.backend from the adapter's
    // counters: an object-store run is visibly an object-store run.
    let backend = sim.outcome.health.backend;
    assert!(backend.enabled);
    assert!(backend.puts > 0 && backend.gets > 0 && backend.lists > 0);
    assert!(backend.bytes_out > 0);
    assert_eq!(
        backend.visibility_failures, 0,
        "no partitions injected, so nothing may time out healing"
    );
}

#[test]
fn partition_at_every_backend_op_recovers_to_identical_fingerprint() {
    let fx = fixture();
    // A fault-free run enumerates the backend op schedule; the sweep
    // partitions each op (worst-case full-window delayed visibility for
    // puts/deletes, stale reads and listings in the window).
    let (healthy, store) = obj_sim_with(
        &fx.survey,
        &FabricFaultPlan::default(),
        ObjFaultPlan::none(),
    );
    healthy.expect("healthy object-store sim");
    let total_ops = store.ops();
    for p in sweep_points(total_ops) {
        let (sim, store) = obj_sim_with(
            &fx.survey,
            &FabricFaultPlan::default(),
            ObjFaultPlan::none().with_partition_at(p),
        );
        let sim = sim.unwrap_or_else(|e| panic!("partition at op {p}: {e}"));
        assert_eq!(
            sim.outcome.dataset.fingerprint(),
            fx.baseline_fingerprint,
            "partition at op {p} ({:?}) diverged",
            store.op_trace().get(p as usize)
        );
    }
}

#[test]
fn kill_and_partition_together_recover() {
    // The diagonal: every fabric kill point paired with a backend
    // partition at a derived op — a worker dies *while* the store is
    // serving stale views. Exhaustive under `BFU_TORTURE_FULL=1`.
    let fx = fixture();
    let (healthy, store) = obj_sim_with(
        &fx.survey,
        &FabricFaultPlan::default(),
        ObjFaultPlan::none(),
    );
    healthy.expect("healthy object-store sim");
    let total_ops = store.ops().max(1);
    let total_steps = fx.trace.len() as u64;
    for k in sweep_points(total_steps) {
        // Derived, deterministic, and spread across the op schedule so
        // the pairing isn't always "partition right at the start".
        let p = (k.wrapping_mul(7) + 3) % total_ops;
        let plan = FabricFaultPlan {
            kill_at: Some(k),
            ..FabricFaultPlan::default()
        };
        let (sim, _) = obj_sim_with(&fx.survey, &plan, ObjFaultPlan::none().with_partition_at(p));
        let sim = sim.unwrap_or_else(|e| panic!("kill {k} + partition {p}: {e}"));
        assert_eq!(
            sim.outcome.dataset.fingerprint(),
            fx.baseline_fingerprint,
            "kill {k} ({}) + partition {p} diverged",
            fx.trace[k as usize]
        );
        assert_eq!(sim.worker_deaths + sim.coordinator_crashes, 1);
    }
}

#[test]
fn chaos_partitions_converge_to_identical_fingerprint() {
    // Seeded chaos: delayed puts, lost-then-replayed puts (resurrecting
    // stale LEASES/MANIFEST versions), read-your-writes violations, and
    // stale shuffled listings, all at once, across several seeds.
    let fx = fixture();
    for seed in [1u64, 0xC4A05, 0xDEAD_BEEF] {
        let (sim, _) = obj_sim_with(
            &fx.survey,
            &FabricFaultPlan::default(),
            ObjFaultPlan::chaos(seed),
        );
        let sim = sim.unwrap_or_else(|e| panic!("chaos seed {seed:#x}: {e}"));
        assert_eq!(
            sim.outcome.dataset.fingerprint(),
            fx.baseline_fingerprint,
            "chaos seed {seed:#x} diverged"
        );
        let backend = sim.outcome.health.backend;
        assert!(
            backend.enabled && backend.retries > 0,
            "chaos forced retries"
        );
    }
}

#[test]
fn chaos_partitions_plus_kill_converge() {
    // Worst of both worlds: a worker killed at a publish step while the
    // backend is under full chaos, zombie replay included.
    let fx = fixture();
    let k = fx
        .trace
        .iter()
        .position(|l| l.starts_with("worker:publish:"))
        .expect("healthy trace has publish steps") as u64;
    let plan = FabricFaultPlan {
        kill_at: Some(k),
        ..FabricFaultPlan::default()
    };
    let (sim, _) = obj_sim_with(&fx.survey, &plan, ObjFaultPlan::chaos(0x0B5));
    let sim = sim.expect("chaos + publish-kill schedule");
    assert_eq!(sim.worker_deaths, 1);
    assert_eq!(
        sim.outcome.dataset.fingerprint(),
        fx.baseline_fingerprint,
        "chaos + kill diverged"
    );
}

#[test]
fn shuffled_listings_never_change_the_dataset() {
    // Satellite regression: every list() consumer must sort before
    // folding. The sim store shuffles each listing deterministically;
    // any order-sensitive fold shows up as a fingerprint change.
    let fx = fixture();
    let (sim, _) = obj_sim_with(
        &fx.survey,
        &FabricFaultPlan::default(),
        ObjFaultPlan::none().with_shuffled_lists(),
    );
    let sim = sim.expect("shuffled-listing sim");
    assert_eq!(sim.outcome.dataset.fingerprint(), fx.baseline_fingerprint);
}

#[test]
fn restarted_fabric_adopts_orphaned_leases() {
    // A "crashed run": issue every lease durably, crawl nothing, drop the
    // coordinator. A fresh fabric over the same backend must reclaim the
    // orphans (fast-forwarding its clock past their deadlines) and finish.
    let survey = survey_for(6, SEED ^ 0x2E);
    let baseline_fp = survey.run().fingerprint();
    let fs = Arc::new(FaultFs::new(StoreFaultPlan::none()));
    let backend: Arc<dyn StorageBackend> = fs.clone();
    let cfg = FabricConfig {
        workers: 2,
        sites_per_lease: 2,
        shard_capacity: 2,
        scrub_threads: 2,
        ..FabricConfig::default()
    };
    {
        use bfu_fabric::{Coordinator, NoProbe};
        use bfu_store::StoreMeta;
        use bfu_util::Instant;
        let mut meta = StoreMeta::for_survey(&survey);
        meta.shard_capacity = cfg.shard_capacity;
        let mut coord = Coordinator::open(
            fs.clone() as Arc<dyn StorageBackend>,
            &survey,
            meta,
            cfg.sites_per_lease,
            cfg.lease_ms,
        )
        .expect("first fabric opens");
        while coord
            .claim(Instant::ZERO, &NoProbe)
            .expect("claim")
            .is_some()
        {}
        // Dropped here: every lease is Issued, none completed, no worker
        // will ever publish.
    }
    let outcome = run_survey_fabric(&survey, backend, &cfg).expect("restarted fabric");
    assert_eq!(outcome.dataset.fingerprint(), baseline_fp);
    assert_eq!(outcome.stats.leases_reclaimed, 3, "all orphans reclaimed");
    assert_eq!(outcome.stats.leases_completed, 3);
}

// ---------------------------------------------------------------------
// Network torture: the same fabric schedules, but every backend op now
// crosses a *wire* — `RemoteObjectStore` → framed/checksummed protocol →
// `ObjectServer` → `SimObjectStore` — and the wire is hostile: dropped
// requests, dropped responses (the op executed, the ack died), truncated
// frames, stalls, duplicated delivery, reordered responses. The client's
// idempotent retry (stable request ids + the server's replay cache) must
// make every schedule land on the same baseline fingerprint, with every
// retry and reconnect visible in the provenance counters.
// ---------------------------------------------------------------------

use bfu_net::{WireFault, WireFaultPlan};
use bfu_objstore::{
    ObjectServer, ObjectStore, RemoteClock, RemoteObjectStore, RemotePolicy, SimTransport,
};
use bfu_util::VirtualClock;
use std::sync::Mutex;

struct RemoteRig {
    backend: Arc<dyn StorageBackend>,
    server: Arc<ObjectServer>,
    remote: Arc<RemoteObjectStore>,
}

/// The full remote stack over a simulated wire: client retries pay a
/// shared virtual clock, the server fronts a partition-free sim store
/// (wire faults are the dimension under test here).
fn remote_rig(wire: WireFaultPlan) -> RemoteRig {
    let inner = Arc::new(SimObjectStore::new(ObjFaultPlan::none()));
    let server = Arc::new(ObjectServer::new(inner));
    let clock = Arc::new(Mutex::new(VirtualClock::new()));
    let remote = Arc::new(RemoteObjectStore::new(
        1,
        Box::new(SimTransport::new(
            Arc::clone(&server),
            wire,
            Arc::clone(&clock),
            2,
        )),
        RemoteClock::Virtual(Arc::clone(&clock)),
        RemotePolicy::default(),
    ));
    let store: Arc<dyn ObjectStore> = Arc::clone(&remote) as Arc<dyn ObjectStore>;
    let backend: Arc<dyn StorageBackend> = Arc::new(ObjectBackend::with_clock(store, clock));
    RemoteRig {
        backend,
        server,
        remote,
    }
}

#[test]
fn healthy_fabric_over_the_wire_matches_single_process() {
    let fx = fixture();
    let rig = remote_rig(WireFaultPlan::none());
    let sim = run_sim(
        &fx.survey,
        Arc::clone(&rig.backend),
        &torture_config(),
        &FabricFaultPlan::default(),
    )
    .expect("healthy remote sim");
    assert_eq!(sim.outcome.dataset.fingerprint(), fx.baseline_fingerprint);
    assert!(rig.server.served() > 0, "every op crossed the wire");
    let backend = sim.outcome.health.backend;
    assert!(backend.enabled);
    assert!(backend.remote_ops > 0, "remote effort lands in provenance");
    assert_eq!(backend.remote_retries, 0, "a clean wire needs no retries");
}

#[test]
fn every_wire_fault_class_at_swept_exchanges_recovers() {
    // A fault-free run enumerates the exchange schedule; then each wire
    // fault class is forced at a sweep of exchange positions. Every
    // schedule must recover to the baseline fingerprint, and the forced
    // fault's cost must be visible as retries (a dropped *request* and a
    // dropped *response* alike — the latter is the case the request-id
    // replay cache exists for).
    let fx = fixture();
    let rig = remote_rig(WireFaultPlan::none());
    run_sim(
        &fx.survey,
        Arc::clone(&rig.backend),
        &torture_config(),
        &FabricFaultPlan::default(),
    )
    .expect("healthy remote sim");
    let totals = rig.remote.remote_totals().expect("remote totals");
    assert_eq!(totals.retries, 0);
    let total_exchanges = totals.ops; // clean wire: one exchange per op
    for (i, p) in sweep_points(total_exchanges).into_iter().enumerate() {
        // Rotate through the fault classes across the swept positions so
        // the bounded run still exercises all six; `BFU_TORTURE_FULL=1`
        // sweeps every position (still rotating).
        let fault = WireFault::ALL[i % WireFault::ALL.len()];
        let rig = remote_rig(WireFaultPlan::none().with_fault_at(p, fault));
        let sim = run_sim(
            &fx.survey,
            Arc::clone(&rig.backend),
            &torture_config(),
            &FabricFaultPlan::default(),
        )
        .unwrap_or_else(|e| panic!("{fault:?} at exchange {p}: {e}"));
        assert_eq!(
            sim.outcome.dataset.fingerprint(),
            fx.baseline_fingerprint,
            "{fault:?} at exchange {p} diverged"
        );
        let totals = rig.remote.remote_totals().expect("remote totals");
        match fault {
            // Stalls delay but deliver; duplicates execute twice on the
            // server (idempotently) but still answer the client.
            WireFault::Stall | WireFault::Duplicate => {}
            _ => assert!(
                totals.retries > 0,
                "{fault:?} at exchange {p} must cost a visible retry"
            ),
        }
    }
}

#[test]
fn wire_chaos_converges_to_identical_fingerprint() {
    // Seeded chaos on every exchange: drops both ways, truncation,
    // stalls, duplication, reordering, across several seeds.
    let fx = fixture();
    for seed in [3u64, 0x31E7, 0xFEED_F00D] {
        let rig = remote_rig(WireFaultPlan::chaos(seed));
        let sim = run_sim(
            &fx.survey,
            Arc::clone(&rig.backend),
            &torture_config(),
            &FabricFaultPlan::default(),
        )
        .unwrap_or_else(|e| panic!("wire chaos seed {seed:#x}: {e}"));
        assert_eq!(
            sim.outcome.dataset.fingerprint(),
            fx.baseline_fingerprint,
            "wire chaos seed {seed:#x} diverged"
        );
        let backend = sim.outcome.health.backend;
        assert!(
            backend.remote_retries > 0,
            "chaos seed {seed:#x} forced wire retries"
        );
    }
}

#[test]
fn wire_chaos_plus_worker_kill_converges() {
    // A worker killed at its publish step while the wire is under chaos:
    // the zombie replay, the lease reissue, and the retry machinery all
    // compose.
    let fx = fixture();
    let k = fx
        .trace
        .iter()
        .position(|l| l.starts_with("worker:publish:"))
        .expect("healthy trace has publish steps") as u64;
    let plan = FabricFaultPlan {
        kill_at: Some(k),
        ..FabricFaultPlan::default()
    };
    let rig = remote_rig(WireFaultPlan::chaos(0xA11));
    let sim = run_sim(
        &fx.survey,
        Arc::clone(&rig.backend),
        &torture_config(),
        &plan,
    )
    .expect("wire chaos + publish-kill schedule");
    assert_eq!(sim.worker_deaths, 1);
    assert_eq!(sim.fenced_replays, 1);
    assert_eq!(sim.outcome.dataset.fingerprint(), fx.baseline_fingerprint);
}

// ---------------------------------------------------------------------
// Coordinator election torture: the coordinator holds a CAS-fenced
// elected term over the remote stack. Kill it at every step — a standby
// must win the next term and finish the survey, and the killed
// incumbent's replayed table write must be rejected at the store.
// ---------------------------------------------------------------------

use bfu_fabric::run_sim_elected;

const HEARTBEAT_MS: u64 = 2_000;

#[test]
fn healthy_elected_fabric_matches_single_process() {
    let fx = fixture();
    let rig = remote_rig(WireFaultPlan::none());
    let sim = run_sim_elected(
        &fx.survey,
        Arc::clone(&rig.backend),
        &torture_config(),
        None,
        HEARTBEAT_MS,
    )
    .expect("healthy elected sim");
    assert_eq!(sim.outcome.dataset.fingerprint(), fx.baseline_fingerprint);
    assert_eq!(sim.elections_won, 1, "exactly the initial claim");
    assert_eq!(sim.coordinators_deposed, 0);
    assert_eq!(sim.outcome.stats.elections_won, 1, "counter reaches health");
}

#[test]
fn coordinator_killed_at_every_step_standby_wins_and_finishes() {
    // The tentpole invariant: kill the elected coordinator at every
    // coordinator step; a standby must take the term, finish the survey to
    // the identical fingerprint, and the dead incumbent's replayed write
    // must come back Deposed — rejected by the store's CAS fence, not by
    // any cooperation from the zombie.
    let fx = fixture();
    let rig = remote_rig(WireFaultPlan::none());
    let healthy = run_sim_elected(
        &fx.survey,
        Arc::clone(&rig.backend),
        &torture_config(),
        None,
        HEARTBEAT_MS,
    )
    .expect("healthy elected sim");
    // Enumerate coordinator steps from the unelected fixture trace — the
    // elected schedule announces the same labels in the same order (the
    // healthy elected run's step count confirms it below).
    assert_eq!(healthy.steps, fx.trace.len() as u64);
    let points: Vec<u64> = fx
        .trace
        .iter()
        .enumerate()
        .filter(|(_, l)| l.starts_with("coord:"))
        .map(|(i, _)| i as u64)
        .collect();
    assert!(
        !points.is_empty(),
        "the trace has coordinator steps to kill"
    );
    for k in points {
        let rig = remote_rig(WireFaultPlan::none());
        let sim = run_sim_elected(
            &fx.survey,
            Arc::clone(&rig.backend),
            &torture_config(),
            Some(k),
            HEARTBEAT_MS,
        )
        .unwrap_or_else(|e| panic!("elected kill at step {k} ({}): {e}", fx.trace[k as usize]));
        assert_eq!(
            sim.outcome.dataset.fingerprint(),
            fx.baseline_fingerprint,
            "elected kill at step {k} ({}) diverged",
            fx.trace[k as usize]
        );
        assert_eq!(sim.coordinator_crashes, 1, "step {k} kills the incumbent");
        assert_eq!(
            sim.elections_won, 2,
            "step {k}: initial claim + the standby's takeover"
        );
        assert_eq!(
            sim.coordinators_deposed, 1,
            "step {k}: the zombie's replayed write must be CAS-fenced"
        );
        assert_eq!(sim.outcome.stats.coordinators_deposed, 1);
    }
}

// ---------------------------------------------------------------------
// Replica torture: the backend is an `ObjectBackend` over a
// `ReplicatedObjectStore` spanning three `SimObjectStore` replicas with
// majority quorums (W = R = 2). The replication layer must absorb any
// single replica dying at any of its ops — quorum continues, nothing
// resumes, no error ever reaches the fabric — and an anti-entropy scrub
// must catch a crashed-and-rejoined replica back up to a state that can
// serve the complete dataset alone.
// ---------------------------------------------------------------------

use bfu_util::fnv64;

struct ReplicaRig {
    backend: Arc<dyn StorageBackend>,
    store: Arc<ReplicatedObjectStore>,
    sims: Vec<Arc<SimObjectStore>>,
}

fn replica_rig(plans: [ObjFaultPlan; 3]) -> ReplicaRig {
    let sims: Vec<Arc<SimObjectStore>> = plans
        .iter()
        .map(|p| Arc::new(SimObjectStore::new(*p)))
        .collect();
    let replicas: Vec<Arc<dyn ObjectStore>> = sims
        .iter()
        .map(|s| Arc::clone(s) as Arc<dyn ObjectStore>)
        .collect();
    let store = Arc::new(ReplicatedObjectStore::majority(replicas).expect("replicated store"));
    let backend: Arc<dyn StorageBackend> = Arc::new(ObjectBackend::new(
        Arc::clone(&store) as Arc<dyn ObjectStore>
    ));
    ReplicaRig {
        backend,
        store,
        sims,
    }
}

/// Per-replica op counts of one fault-free replicated fabric run — each
/// replica's own coordinate space for the kill/partition sweeps.
fn healthy_replica_ops() -> &'static Vec<u64> {
    static OPS: OnceLock<Vec<u64>> = OnceLock::new();
    OPS.get_or_init(|| {
        let fx = fixture();
        let rig = replica_rig([ObjFaultPlan::none(); 3]);
        let sim = run_sim(
            &fx.survey,
            Arc::clone(&rig.backend),
            &torture_config(),
            &FabricFaultPlan::default(),
        )
        .expect("healthy replicated sim");
        assert_eq!(sim.outcome.dataset.fingerprint(), fx.baseline_fingerprint);
        rig.sims.iter().map(|s| s.ops()).collect()
    })
}

/// Sweep points over one replica's op space, `budget` per replica in the
/// bounded run, exhaustive under `BFU_TORTURE_FULL=1`.
fn replica_sweep_points(total: u64, budget: u64) -> Vec<u64> {
    let full = std::env::var("BFU_TORTURE_FULL").is_ok_and(|v| v == "1");
    if full || total <= budget {
        return (0..total).collect();
    }
    let stride = total.div_ceil(budget);
    let mut points: Vec<u64> = (0..total).step_by(stride as usize).collect();
    if points.last() != Some(&(total - 1)) {
        points.push(total - 1);
    }
    points
}

#[test]
fn healthy_fabric_over_replicated_store_matches_single_process() {
    let fx = fixture();
    let rig = replica_rig([ObjFaultPlan::none(); 3]);
    let sim = run_sim(
        &fx.survey,
        Arc::clone(&rig.backend),
        &torture_config(),
        &FabricFaultPlan::default(),
    )
    .expect("healthy replicated sim");
    assert_eq!(sim.outcome.dataset.fingerprint(), fx.baseline_fingerprint);
    for (i, s) in rig.sims.iter().enumerate() {
        assert!(s.ops() > 0, "replica {i} saw traffic");
    }
    // The replication counters reach the provenance health block.
    let backend = sim.outcome.health.backend;
    assert!(backend.enabled);
    assert_eq!(backend.replicas, 3);
    assert!(backend.replica_quorum_writes > 0, "writes acked at quorum");
    assert!(backend.replica_quorum_reads > 0, "reads settled at quorum");
    assert_eq!(
        backend.replica_errors, 0,
        "healthy replicas, no absorbed failures: {backend:?}"
    );
    assert_eq!(backend.replica_cas_promotions, 0, "primaries never skipped");
}

#[test]
fn full_survey_completes_with_any_one_replica_down_the_entire_run() {
    // The acceptance bar: for each choice of victim, the whole survey runs
    // with that replica dead from the very first op. No resume, no retry
    // loop at the fabric layer — the quorum just keeps answering.
    let fx = fixture();
    for dead in 0..3usize {
        let mut plans = [ObjFaultPlan::none(); 3];
        plans[dead] = ObjFaultPlan::none().with_crash_at(0);
        let rig = replica_rig(plans);
        let sim = run_sim(
            &fx.survey,
            Arc::clone(&rig.backend),
            &torture_config(),
            &FabricFaultPlan::default(),
        )
        .unwrap_or_else(|e| panic!("replica {dead} down for the whole run: {e}"));
        assert_eq!(
            sim.outcome.dataset.fingerprint(),
            fx.baseline_fingerprint,
            "replica {dead} down diverged"
        );
        let backend = sim.outcome.health.backend;
        assert!(
            backend.replica_errors > 0,
            "replica {dead}'s failures are counted, not hidden: {backend:?}"
        );
        assert!(backend.replica_quorum_writes > 0);
    }
}

#[test]
fn kill_any_one_replica_at_any_of_its_ops_quorum_continues() {
    // The tentpole sweep: for every replica, kill it at (a sweep of) its
    // own globally-numbered ops. It stays dead for the rest of the run.
    // The schedule must complete to the identical fingerprint with the
    // deaths absorbed inside the replication layer — the fabric never
    // sees an error, nothing is resumed.
    let fx = fixture();
    let ops = healthy_replica_ops();
    for (r, &total) in ops.iter().enumerate() {
        assert!(total > 10, "replica {r} workload too small: {total} ops");
        for k in replica_sweep_points(total, 16) {
            let mut plans = [ObjFaultPlan::none(); 3];
            plans[r] = ObjFaultPlan::none().with_crash_at(k);
            let rig = replica_rig(plans);
            let sim = run_sim(
                &fx.survey,
                Arc::clone(&rig.backend),
                &torture_config(),
                &FabricFaultPlan::default(),
            )
            .unwrap_or_else(|e| panic!("replica {r} killed at its op {k}: {e}"));
            assert_eq!(
                sim.outcome.dataset.fingerprint(),
                fx.baseline_fingerprint,
                "replica {r} killed at its op {k} diverged"
            );
            let t = rig.store.replica_totals().expect("totals");
            assert!(
                t.replica_errors > 0,
                "replica {r} op {k}: the death left a counted trace"
            );
        }
    }
}

#[test]
fn partition_any_one_replica_at_any_of_its_ops_recovers() {
    // The partition dimension: one replica serves its worst-case stale
    // view at a swept op (delayed put/delete visibility, stale reads and
    // listings for the full window) while the other two stay honest. The
    // replicated read path settles generations via per-replica `head`
    // (strongly consistent) and verifiable `get_at`, and listings union
    // across replicas — so staleness on one member must never surface.
    let fx = fixture();
    let ops = healthy_replica_ops();
    for (r, &total) in ops.iter().enumerate() {
        for p in replica_sweep_points(total, 8) {
            let mut plans = [ObjFaultPlan::none(); 3];
            plans[r] = ObjFaultPlan::none().with_partition_at(p);
            let rig = replica_rig(plans);
            let sim = run_sim(
                &fx.survey,
                Arc::clone(&rig.backend),
                &torture_config(),
                &FabricFaultPlan::default(),
            )
            .unwrap_or_else(|e| panic!("replica {r} partitioned at its op {p}: {e}"));
            assert_eq!(
                sim.outcome.dataset.fingerprint(),
                fx.baseline_fingerprint,
                "replica {r} partitioned at its op {p} diverged"
            );
        }
    }
}

#[test]
fn kill_replica_and_kill_worker_together_recover() {
    // The diagonal: every fabric kill point paired with one replica dying
    // at a derived op — a worker death and a replica death in the same
    // schedule, the replica staying down through the recovery.
    let fx = fixture();
    let ops = healthy_replica_ops();
    let total_steps = fx.trace.len() as u64;
    for k in sweep_points(total_steps) {
        let r = (k % 3) as usize;
        let p = (k.wrapping_mul(7) + 3) % ops[r].max(1);
        let mut plans = [ObjFaultPlan::none(); 3];
        plans[r] = ObjFaultPlan::none().with_crash_at(p);
        let rig = replica_rig(plans);
        let plan = FabricFaultPlan {
            kill_at: Some(k),
            ..FabricFaultPlan::default()
        };
        let sim = run_sim(
            &fx.survey,
            Arc::clone(&rig.backend),
            &torture_config(),
            &plan,
        )
        .unwrap_or_else(|e| panic!("fabric kill {k} + replica {r} dead at {p}: {e}"));
        assert_eq!(
            sim.outcome.dataset.fingerprint(),
            fx.baseline_fingerprint,
            "fabric kill {k} ({}) + replica {r} dead at {p} diverged",
            fx.trace[k as usize]
        );
        assert_eq!(sim.worker_deaths + sim.coordinator_crashes, 1);
    }
}

#[test]
fn replica_chaos_on_every_member_converges() {
    // Every replica under its own seeded chaos plan at once: stale and
    // shuffled listings, delayed plain-op visibility, the works. The
    // replicated protocol leans only on the strongly consistent per-
    // replica ops (`head`, `put_if`, `put_at`, `get_at`) plus unioned
    // listings, so chaos on the eventually-consistent surface must not
    // perturb anything.
    let fx = fixture();
    for base in [5u64, 0x3E9, 0xCAFE_D00D] {
        let plans = [
            ObjFaultPlan::chaos(base),
            ObjFaultPlan::chaos(base ^ 0x1111),
            ObjFaultPlan::chaos(base ^ 0x2222),
        ];
        let rig = replica_rig(plans);
        let sim = run_sim(
            &fx.survey,
            Arc::clone(&rig.backend),
            &torture_config(),
            &FabricFaultPlan::default(),
        )
        .unwrap_or_else(|e| panic!("replica chaos base {base:#x}: {e}"));
        assert_eq!(
            sim.outcome.dataset.fingerprint(),
            fx.baseline_fingerprint,
            "replica chaos base {base:#x} diverged"
        );
    }
}

#[test]
fn killed_replica_rejoins_and_anti_entropy_catches_it_up() {
    // Crash one replica mid-run, finish on the surviving majority, then
    // power-cycle the corpse and run the anti-entropy scrub. The healed
    // replica must be able to serve the *complete* dataset entirely by
    // itself — the real contract behind "caught up".
    let fx = fixture();
    let ops = healthy_replica_ops();
    for r in 0..3usize {
        let k = ops[r] / 2;
        let mut plans = [ObjFaultPlan::none(); 3];
        plans[r] = ObjFaultPlan::none().with_crash_at(k);
        let rig = replica_rig(plans);
        let sim = run_sim(
            &fx.survey,
            Arc::clone(&rig.backend),
            &torture_config(),
            &FabricFaultPlan::default(),
        )
        .unwrap_or_else(|e| panic!("replica {r} crashed at {k}: {e}"));
        assert_eq!(sim.outcome.dataset.fingerprint(), fx.baseline_fingerprint);

        rig.sims[r].power_cycle();
        let report = rig.store.scrub().expect("anti-entropy scrub");
        assert!(
            report.copies > 0,
            "replica {r}: the rejoiner missed writes the scrub must copy"
        );
        assert!(report.names > 0);
        let t = rig.store.replica_totals().expect("totals");
        assert!(t.anti_entropy_copies >= report.copies);

        // The healed replica alone — no quorum, no peers — holds the
        // complete canonical dataset.
        let solo: Arc<dyn StorageBackend> = Arc::new(ObjectBackend::new(
            Arc::clone(&rig.sims[r]) as Arc<dyn ObjectStore>
        ));
        match load_survey_dataset_on(&fx.survey, solo).expect("load from healed replica") {
            LoadOutcome::Complete { dataset, .. } => {
                assert_eq!(
                    dataset.fingerprint(),
                    fx.baseline_fingerprint,
                    "replica {r}: healed replica serves a diverged dataset"
                );
            }
            LoadOutcome::Incomplete {
                present, missing, ..
            } => panic!("replica {r}: healed replica incomplete {present}/{missing}"),
        }
    }
}

#[test]
fn elected_fabric_over_replicated_store_with_dead_cas_primary() {
    // The election's CAS fence over replicas, with the COORD record's
    // deterministic primary dead the whole run: every claim and heartbeat
    // must route through a promoted acting replica, and the fencing
    // semantics (exactly one elected term, zero depositions) must hold.
    let fx = fixture();
    let primary = (fnv64(bfu_fabric::COORD_NAME.as_bytes()) % 3) as usize;
    let mut plans = [ObjFaultPlan::none(); 3];
    plans[primary] = ObjFaultPlan::none().with_crash_at(0);
    let rig = replica_rig(plans);
    let sim = run_sim_elected(
        &fx.survey,
        Arc::clone(&rig.backend),
        &torture_config(),
        None,
        HEARTBEAT_MS,
    )
    .expect("elected sim over replicas with dead primary");
    assert_eq!(sim.outcome.dataset.fingerprint(), fx.baseline_fingerprint);
    assert_eq!(sim.elections_won, 1);
    assert_eq!(sim.coordinators_deposed, 0);
    let backend = sim.outcome.health.backend;
    assert_eq!(backend.replicas, 3);
    assert!(
        backend.replica_cas_promotions > 0,
        "the dead primary forced CAS promotions: {backend:?}"
    );
}

#[test]
fn elected_fabric_survives_wire_chaos() {
    let fx = fixture();
    let rig = remote_rig(WireFaultPlan::chaos(0xE1EC));
    let sim = run_sim_elected(
        &fx.survey,
        Arc::clone(&rig.backend),
        &torture_config(),
        None,
        HEARTBEAT_MS,
    )
    .expect("elected sim under wire chaos");
    assert_eq!(sim.outcome.dataset.fingerprint(), fx.baseline_fingerprint);
    assert!(sim.outcome.health.backend.remote_retries > 0);
}
