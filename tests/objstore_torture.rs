//! Object-store torture: run the survey store over whole-object storage —
//! no rename, no directory sync, eventual visibility — and prove the same
//! crash-consistency and identity bars the POSIX backend clears.
//!
//! Three layers of proof:
//!
//! - **Identity.** A store-backed survey over `ObjectBackend<SimObjectStore>`
//!   (and over the real `DirObjectStore`) fingerprints identically to the
//!   uninterrupted in-memory run.
//! - **Crash sweep.** The simulated object store is killed at every
//!   backend op (bounded subset in CI, exhaustive under
//!   `BFU_TORTURE_FULL=1`); after a power cycle and a *fresh adapter*
//!   (process-restart semantics: the visibility bookkeeping is gone),
//!   resume must recover the baseline fingerprint.
//! - **Publish windows.** The manifest's atomic-replace contract holds on
//!   both object-store publish paths: the native versioned put, and the
//!   POSIX idiom's rename lowered to copy+delete — including a crash
//!   *between* the copy and the delete, which leaves both names behind.
//!
//! Plus the listing-order regression: a backend that shuffles every
//! listing must not change any dataset, because every `list()` consumer
//! sorts before folding.

use bfu_crawler::{CrawlConfig, Survey};
use bfu_objstore::{DirObjectStore, ObjFaultPlan, ObjectBackend, SimObjectStore};
use bfu_store::{
    load_survey_dataset_on, resume_survey_on, FaultFs, LoadOutcome, Manifest, ResumeOutcome,
    StorageBackend, StorageFile, StoreError, StoreFaultPlan, MANIFEST_NAME, PROVENANCE_NAME,
};
use bfu_util::fnv64;
use bfu_webgen::{SyntheticWeb, WebConfig};
use std::io;
use std::sync::{Arc, OnceLock};

const SITES: usize = 6;
const SEED: u64 = 173;

struct Fixture {
    survey: Survey,
    baseline_fingerprint: u64,
    /// Op trace of one fault-free object-store-backed run.
    trace: Vec<String>,
}

static FIXTURE: OnceLock<Fixture> = OnceLock::new();

fn fixture() -> &'static Fixture {
    FIXTURE.get_or_init(|| {
        let web = SyntheticWeb::generate(WebConfig {
            sites: SITES,
            seed: SEED,
            script_weight: 0,
        });
        let mut config = CrawlConfig::quick(SEED ^ 0x0B1);
        config.threads = 1;
        config.rounds_per_profile = 1;
        config.pages_per_site = 2;
        config.page_budget_ms = 2_000;
        let survey = Survey::new(web, config);
        let baseline_fingerprint = survey.run().fingerprint();
        let store = Arc::new(SimObjectStore::new(ObjFaultPlan::none()));
        let outcome = resume_on(&store, &survey).expect("fault-free enumeration run");
        assert_eq!(
            outcome.dataset.fingerprint(),
            baseline_fingerprint,
            "object-store-backed run must match the direct run before any torture"
        );
        Fixture {
            survey,
            baseline_fingerprint,
            trace: store.op_trace(),
        }
    })
}

/// Resume the survey through a *fresh* adapter over `store` — each call
/// models a new process attaching to the same remote store, with none of
/// the previous process's visibility bookkeeping.
fn resume_on(store: &Arc<SimObjectStore>, survey: &Survey) -> Result<ResumeOutcome, StoreError> {
    let backend: Arc<dyn StorageBackend> = Arc::new(ObjectBackend::new(store.clone()));
    resume_survey_on(survey, backend)
}

fn crash_points(total: u64) -> Vec<u64> {
    const BUDGET: u64 = 48;
    if std::env::var_os("BFU_TORTURE_FULL").is_some() || total <= BUDGET {
        return (0..total).collect();
    }
    let stride = total.div_ceil(BUDGET) as usize;
    let mut points: Vec<u64> = (0..total).step_by(stride).collect();
    if points.last() != Some(&(total - 1)) {
        points.push(total - 1);
    }
    points
}

fn assert_is_crash(err: &StoreError, k: u64, label: &str) {
    match err {
        StoreError::Io(e) => assert!(
            SimObjectStore::is_crash(e),
            "crash point {k} ({label}): expected power cut, got {e}"
        ),
        other => panic!("crash point {k} ({label}): unexpected error class {other}"),
    }
}

#[test]
fn object_store_run_matches_the_direct_run() {
    let f = fixture();
    let store = Arc::new(SimObjectStore::new(ObjFaultPlan::none()));
    let outcome = resume_on(&store, &f.survey).expect("object-store run");
    assert_eq!(outcome.dataset.fingerprint(), f.baseline_fingerprint);
    // The provenance sidecar carries the backend block: an object-store
    // run is visibly an object-store run.
    let backend = ObjectBackend::new(store.clone() as Arc<_>);
    let provenance =
        String::from_utf8(backend.get(PROVENANCE_NAME).expect("provenance")).expect("UTF-8");
    assert!(provenance.contains("\"backend\""));
    assert!(provenance.contains("\"enabled\": true"));
    assert!(provenance.contains("\"visibility_failures\": 0"));
}

#[test]
fn every_crash_point_in_an_object_store_run_recovers() {
    let f = fixture();
    // Whole-object semantics collapse the POSIX backend's hundreds of
    // write/sync ops into a few puts — the schedule is short, so the
    // sweep is exhaustive even in CI.
    let total = f.trace.len() as u64;
    assert!(
        total > 10,
        "workload too small to be interesting: {total} ops"
    );
    for k in crash_points(total) {
        let label = &f.trace[k as usize];
        let store = Arc::new(SimObjectStore::new(ObjFaultPlan::none().with_crash_at(k)));
        let err = resume_on(&store, &f.survey)
            .err()
            .unwrap_or_else(|| panic!("crash point {k} ({label}) never fired"));
        assert_is_crash(&err, k, label);
        store.power_cycle();
        let recovered = resume_on(&store, &f.survey)
            .unwrap_or_else(|e| panic!("crash point {k} ({label}): recovery failed: {e}"));
        assert_eq!(
            recovered.dataset.fingerprint(),
            f.baseline_fingerprint,
            "crash point {k} ({label}): recovered dataset diverged"
        );
        let backend: Arc<dyn StorageBackend> = Arc::new(ObjectBackend::new(store.clone()));
        match load_survey_dataset_on(&f.survey, backend).expect("post-recovery load") {
            LoadOutcome::Complete { dataset, .. } => {
                assert_eq!(dataset.fingerprint(), f.baseline_fingerprint);
            }
            LoadOutcome::Incomplete {
                present, missing, ..
            } => {
                panic!("crash point {k} ({label}): store left incomplete {present}/{missing}")
            }
        }
    }
}

/// Render a minimal-but-valid manifest body so `Manifest::read`'s torn
/// detection is the oracle for "old or new, never torn".
fn manifest_body(f: &Fixture, sites: usize) -> String {
    format!(
        "bfu-store-manifest v1\nfingerprint={:016x}\nsites={sites}\nrounds_per_profile=1\n",
        f.survey.fingerprint()
    )
}

/// Satellite: the native object-store publish — `replace` as one versioned
/// put — crashed at every op. A reader after power-cycle must see the old
/// manifest or the new one; a torn read would fail `Manifest::read`.
#[test]
fn versioned_put_manifest_publish_is_old_or_new_never_torn() {
    let f = fixture();
    let old = manifest_body(f, 1);
    let new = manifest_body(f, 2);
    // Enumerate the publish workload's ops once, fault-free.
    let publish = |backend: &ObjectBackend| -> io::Result<()> {
        backend.replace(MANIFEST_NAME, old.as_bytes())?;
        backend.replace(MANIFEST_NAME, new.as_bytes())
    };
    let store = Arc::new(SimObjectStore::new(ObjFaultPlan::none()));
    publish(&ObjectBackend::new(store.clone() as Arc<_>)).expect("fault-free publish");
    let total = store.ops();
    for k in 0..total {
        let store = Arc::new(SimObjectStore::new(ObjFaultPlan::none().with_crash_at(k)));
        let backend = ObjectBackend::new(store.clone() as Arc<_>);
        publish(&backend).expect_err("crash must surface");
        store.power_cycle();
        let reader = ObjectBackend::new(store.clone() as Arc<_>);
        let manifest = Manifest::read(&reader as &dyn StorageBackend)
            .unwrap_or_else(|e| panic!("crash point {k}: torn manifest: {e}"));
        match manifest {
            None => assert_eq!(k, 0, "only a crash before the first ack may lose both"),
            Some(m) => assert_eq!(m.fingerprint, f.survey.fingerprint()),
        }
        if let Ok(bytes) = reader.get(MANIFEST_NAME) {
            assert!(
                bytes == old.as_bytes() || bytes == new.as_bytes(),
                "crash point {k}: manifest is neither old nor new"
            );
        }
    }
}

/// Satellite: the POSIX publish idiom — put tmp, rename, sync dir — where
/// rename is lowered to copy+delete. Crashed at every op, including
/// *between the copy and the delete* (both names left behind): the
/// canonical name must still read old-or-new.
#[test]
fn copy_plus_delete_rename_publish_is_old_or_new() {
    let f = fixture();
    let old = manifest_body(f, 1);
    let new = manifest_body(f, 2);
    let publish = |backend: &ObjectBackend, body: &str| -> io::Result<()> {
        // The default `StorageBackend::replace` body, spelled out so the
        // sweep exercises the copy+delete lowering op by op.
        let tmp = format!("{MANIFEST_NAME}.tmp");
        backend.put(&tmp, body.as_bytes())?;
        backend.rename(&tmp, MANIFEST_NAME)?;
        backend.sync_dir()
    };
    let store = Arc::new(SimObjectStore::new(ObjFaultPlan::none()));
    let backend = ObjectBackend::new(store.clone() as Arc<_>);
    publish(&backend, &old).expect("publish old");
    let before_new = store.ops();
    publish(&backend, &new).expect("publish new");
    let total = store.ops();
    let mut saw_both_names = false;
    // Sweep only the second publish: the first must have committed, so
    // "old" is always a valid observation.
    for k in before_new..total {
        let store = Arc::new(SimObjectStore::new(ObjFaultPlan::none().with_crash_at(k)));
        let backend = ObjectBackend::new(store.clone() as Arc<_>);
        publish(&backend, &old).expect("publish old");
        publish(&backend, &new).expect_err("crash must surface");
        store.power_cycle();
        let reader = ObjectBackend::new(store.clone() as Arc<_>);
        let bytes = reader
            .get(MANIFEST_NAME)
            .unwrap_or_else(|e| panic!("crash point {k}: manifest unreadable: {e}"));
        assert!(
            bytes == old.as_bytes() || bytes == new.as_bytes(),
            "crash point {k}: manifest is neither old nor new"
        );
        // The window this test exists for: crashed after the copy
        // committed the new manifest but before the delete swept the tmp
        // name — both names present, canonical already new. (A leftover
        // tmp with the *old* manifest is the other window — crashed
        // before the copy — equally legal.)
        let names = reader.list().expect("list");
        if names.iter().any(|n| n.ends_with(".tmp")) && bytes == new.as_bytes() {
            saw_both_names = true;
        }
    }
    assert!(
        saw_both_names,
        "the sweep must hit the window between copy and delete"
    );
}

#[test]
fn chaos_partitions_during_store_runs_converge() {
    let f = fixture();
    for seed in [3u64, 0x0B57, 0xFEED] {
        let store = Arc::new(SimObjectStore::new(ObjFaultPlan::chaos(seed)));
        let outcome = resume_on(&store, &f.survey)
            .unwrap_or_else(|e| panic!("chaos seed {seed:#x} broke the run: {e}"));
        assert_eq!(
            outcome.dataset.fingerprint(),
            f.baseline_fingerprint,
            "chaos seed {seed:#x} diverged"
        );
    }
}

#[test]
fn dir_object_store_round_trips_a_real_survey() {
    let f = fixture();
    let root = std::env::temp_dir().join(format!("bfu-objtorture-{}-{SEED}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let dir = Arc::new(DirObjectStore::open(&root).expect("open dir store"));
    let backend: Arc<dyn StorageBackend> = Arc::new(ObjectBackend::new(dir.clone() as Arc<_>));
    let outcome = resume_survey_on(&f.survey, backend).expect("dir-backed run");
    assert_eq!(outcome.dataset.fingerprint(), f.baseline_fingerprint);
    // A second process attaches to the same directory: everything resumes
    // from disk, nothing is re-crawled.
    let dir2 = Arc::new(DirObjectStore::open(&root).expect("reopen dir store"));
    let backend2: Arc<dyn StorageBackend> = Arc::new(ObjectBackend::new(dir2 as Arc<_>));
    let resumed = resume_survey_on(&f.survey, backend2).expect("dir-backed resume");
    assert_eq!(resumed.dataset.fingerprint(), f.baseline_fingerprint);
    assert_eq!(resumed.resumed_sites, SITES, "all sites came from disk");
    let _ = std::fs::remove_dir_all(&root);
}

// ---------------------------------------------------------------------
// Listing-order regression (satellite): every list() consumer must sort
// before folding. This wrapper shuffles every listing of an otherwise
// well-behaved POSIX backend — any order-sensitive fold in scan, scrub,
// or the staging sweep shows up as a changed dataset or a failed resume.
// ---------------------------------------------------------------------

#[derive(Debug)]
struct ShuffledListing {
    inner: Arc<FaultFs>,
    salt: u64,
}

impl StorageBackend for ShuffledListing {
    fn create(&self, name: &str) -> io::Result<Box<dyn StorageFile>> {
        self.inner.create(name)
    }
    fn get(&self, name: &str) -> io::Result<Vec<u8>> {
        self.inner.get(name)
    }
    fn rename(&self, from: &str, to: &str) -> io::Result<()> {
        self.inner.rename(from, to)
    }
    fn remove(&self, name: &str) -> io::Result<()> {
        self.inner.remove(name)
    }
    fn exists(&self, name: &str) -> io::Result<bool> {
        self.inner.exists(name)
    }
    fn list(&self) -> io::Result<Vec<String>> {
        let mut names = self.inner.list()?;
        // Deterministic adversarial order: keyed hash, never lexicographic.
        names.sort_unstable_by_key(|n| fnv64(format!("{}:{n}", self.salt).as_bytes()));
        Ok(names)
    }
    fn sync_dir(&self) -> io::Result<()> {
        self.inner.sync_dir()
    }
    fn describe(&self) -> String {
        format!("shuffled:{}", self.inner.describe())
    }
}

// ---------------------------------------------------------------------
// Replica dimension: the same survey over a ReplicatedObjectStore front.
// Quorum writes must absorb the death of any single replica *without an
// error ever reaching the store layer*, stale sub-quorum reads must be
// caught by the adapter's visibility bookkeeping, and a replayed mutation
// that outlived the server's replay window must be refused typed.
// ---------------------------------------------------------------------

use bfu_objstore::{
    ObjectServer, ObjectStore, RemoteError, ReplicaPolicy, ReplicatedObjectStore, Request,
    RequestOp, RespBody, Response, ScrubReport, REPLAY_WINDOW,
};

fn replica_sims(plans: [ObjFaultPlan; 3]) -> Vec<Arc<SimObjectStore>> {
    plans
        .into_iter()
        .map(|p| Arc::new(SimObjectStore::new(p)))
        .collect()
}

fn replicated_over(sims: &[Arc<SimObjectStore>]) -> Arc<ReplicatedObjectStore> {
    let replicas: Vec<Arc<dyn ObjectStore>> = sims
        .iter()
        .map(|s| s.clone() as Arc<dyn ObjectStore>)
        .collect();
    Arc::new(ReplicatedObjectStore::majority(replicas).expect("replicated store"))
}

/// Per-replica op counts from one healthy replicated run — the sweep
/// coordinates for the kill tests below.
fn healthy_replica_op_counts() -> &'static Vec<u64> {
    static COUNTS: OnceLock<Vec<u64>> = OnceLock::new();
    COUNTS.get_or_init(|| {
        let f = fixture();
        let sims = replica_sims([
            ObjFaultPlan::none(),
            ObjFaultPlan::none(),
            ObjFaultPlan::none(),
        ]);
        let rep = replicated_over(&sims);
        let backend: Arc<dyn StorageBackend> =
            Arc::new(ObjectBackend::new(rep as Arc<dyn ObjectStore>));
        let outcome = resume_survey_on(&f.survey, backend).expect("healthy replicated run");
        assert_eq!(
            outcome.dataset.fingerprint(),
            f.baseline_fingerprint,
            "replicated run must match the direct run before any torture"
        );
        sims.iter().map(|s| s.ops()).collect()
    })
}

/// Stride-bounded subset of `0..total` (`budget` points in CI, exhaustive
/// under `BFU_TORTURE_FULL=1`), always including the last op.
fn bounded_points(total: u64, budget: u64) -> Vec<u64> {
    if total == 0 {
        return Vec::new();
    }
    if std::env::var_os("BFU_TORTURE_FULL").is_some() || total <= budget {
        return (0..total).collect();
    }
    let stride = total.div_ceil(budget) as usize;
    let mut points: Vec<u64> = (0..total).step_by(stride).collect();
    if points.last() != Some(&(total - 1)) {
        points.push(total - 1);
    }
    points
}

/// Kill any one replica at any of its ops: the survey must complete with
/// *no error surfacing at all* — W = R = 2 of 3 absorbs a single death —
/// and fingerprint identically to the direct run.
#[test]
fn survey_survives_killing_any_one_replica_at_any_of_its_ops() {
    let f = fixture();
    let counts = healthy_replica_op_counts();
    for (r, &total) in counts.iter().enumerate() {
        assert!(total > 10, "replica {r} saw only {total} ops");
        for k in bounded_points(total, 12) {
            let mut plans = [
                ObjFaultPlan::none(),
                ObjFaultPlan::none(),
                ObjFaultPlan::none(),
            ];
            plans[r] = ObjFaultPlan::none().with_crash_at(k);
            let sims = replica_sims(plans);
            let rep = replicated_over(&sims);
            let backend: Arc<dyn StorageBackend> =
                Arc::new(ObjectBackend::new(rep.clone() as Arc<dyn ObjectStore>));
            let outcome = resume_survey_on(&f.survey, backend)
                .unwrap_or_else(|e| panic!("replica {r} killed at its op {k}: survey failed: {e}"));
            assert_eq!(
                outcome.dataset.fingerprint(),
                f.baseline_fingerprint,
                "replica {r} killed at its op {k}: dataset diverged"
            );
            let totals = rep.replica_totals().expect("replica totals");
            assert!(
                totals.replica_errors > 0,
                "replica {r} killed at its op {k}: the quorum never noticed the death"
            );
            assert!(totals.quorum_writes > 0);
        }
    }
}

/// Satellite: sub-quorum read staleness is the adapter's problem, and the
/// adapter solves it. W=2 R=1 deliberately breaks read/write overlap; a
/// replica that revives empty serves NotFound for objects the quorum
/// holds. The adapter's read-your-write expectation retries, exhausts,
/// and counts a `visibility_failures` — then anti-entropy scrub heals the
/// member and a fresh process resumes the whole survey from the store.
#[test]
fn stale_r1_reads_exhaust_visibility_retries_and_scrub_heals() {
    let f = fixture();
    // Replica 0 is dead from its first op: it acknowledges nothing, so a
    // power cycle revives it *empty* — the worst rejoin.
    let sims = replica_sims([
        ObjFaultPlan::none().with_crash_at(0),
        ObjFaultPlan::none(),
        ObjFaultPlan::none(),
    ]);
    let replicas: Vec<Arc<dyn ObjectStore>> = sims
        .iter()
        .map(|s| s.clone() as Arc<dyn ObjectStore>)
        .collect();
    let policy = ReplicaPolicy {
        write_quorum: 2,
        read_quorum: 1,
    };
    let rep = Arc::new(ReplicatedObjectStore::new(replicas, policy).expect("W=2 R=1 store"));
    let survey_backend: Arc<dyn StorageBackend> =
        Arc::new(ObjectBackend::new(rep.clone() as Arc<dyn ObjectStore>));
    // The survey completes with the replica down: R=1 probes rotate past
    // the dead member, writes ack at W=2.
    let outcome = resume_survey_on(&f.survey, survey_backend).expect("survey with replica 0 dead");
    assert_eq!(outcome.dataset.fingerprint(), f.baseline_fingerprint);
    // Write an object whose read probe *starts at* replica 0 (rotation
    // order begins at the name's deterministic primary).
    let name = (0..u64::MAX)
        .map(|i| format!("stale-probe-{i}"))
        .find(|n| fnv64(n.as_bytes()).is_multiple_of(3))
        .expect("a name with primary 0 exists");
    let backend = ObjectBackend::new(rep.clone() as Arc<dyn ObjectStore>);
    backend
        .put(&name, b"payload")
        .expect("put acks at W=2 with the primary dead");
    // The member revives empty and reachable: an R=1 probe of `name` now
    // *succeeds* at replica 0 and reports the object does not exist.
    sims[0].power_cycle();
    let err = backend
        .get(&name)
        .expect_err("stale R=1 read must surface as NotFound after retries");
    assert_eq!(err.kind(), io::ErrorKind::NotFound, "got {err}");
    let totals = backend.op_totals().expect("totals");
    assert_eq!(
        totals.visibility_failures, 1,
        "retry exhaustion must be counted: {totals:?}"
    );
    assert!(
        totals.retries > 8,
        "the adapter must have fought before conceding: {totals:?}"
    );
    // Anti-entropy catches the member up on everything it slept through.
    let report: ScrubReport = rep.scrub().expect("scrub");
    assert!(report.copies > 0, "scrub found nothing to copy: {report:?}");
    assert_eq!(report.errors, 0, "all replicas reachable: {report:?}");
    assert_eq!(backend.get(&name).expect("healed read"), b"payload");
    // The macro bar: a fresh process resumes the survey over the healed
    // R=1 store entirely from disk.
    let resumed_backend: Arc<dyn StorageBackend> =
        Arc::new(ObjectBackend::new(rep.clone() as Arc<dyn ObjectStore>));
    let resumed = resume_survey_on(&f.survey, resumed_backend).expect("resume over healed store");
    assert_eq!(resumed.dataset.fingerprint(), f.baseline_fingerprint);
    assert_eq!(resumed.resumed_sites, SITES, "nothing may be re-crawled");
}

/// Satellite: a retried mutation whose request id was pruned from the
/// server's replay window is refused with a *typed* `ReplayEvicted` — not
/// silently re-executed. Re-executing the CAS below would return
/// `CasConflict{expected: 0, found: 1}`: the client would conclude it
/// lost a race it actually won.
#[test]
fn replayed_mutation_past_the_replay_window_is_refused_not_reexecuted() {
    let store = Arc::new(SimObjectStore::new(ObjFaultPlan::none()));
    let server = ObjectServer::new(store.clone() as Arc<dyn ObjectStore>);
    let exchange = |req: &Request| -> Response {
        let resp = server.handle_frame(&bfu_objstore::wire::encode_request(req));
        bfu_objstore::wire::decode_response(bfu_objstore::wire::unframe(&resp).expect("frame"))
            .expect("decode")
    };
    // A CAS that wins: generation 0 -> 1.
    let cas = Request {
        client: 7,
        id: 1,
        op: RequestOp::PutIf {
            name: "seat".into(),
            expected: 0,
            bytes: b"v1".to_vec(),
        },
    };
    let first = exchange(&cas);
    assert!(
        matches!(first.body, Ok(RespBody::Gen(1))),
        "CAS must win: {:?}",
        first.body
    );
    // More in-flight mutations than the replay window holds: id 1 falls
    // off the back of the cache and onto the eviction floor.
    let depth = REPLAY_WINDOW as u64 + 8;
    for i in 0..depth {
        let put = Request {
            client: 7,
            id: 2 + i,
            op: RequestOp::Put {
                name: format!("fill-{i}"),
                bytes: b"x".to_vec(),
            },
        };
        assert!(matches!(exchange(&put).body, Ok(RespBody::Unit)));
    }
    // The network delivers a duplicate of the original CAS frame late.
    let replay = exchange(&cas);
    assert!(
        matches!(replay.body, Err(RemoteError::ReplayEvicted)),
        "evicted replay must be refused typed, got {:?}",
        replay.body
    );
    // Refused means *not executed*: the seat is untouched.
    assert_eq!(store.head("seat").expect("head"), 1);
    assert_eq!(store.get("seat").expect("get"), b"v1");
    // An id still inside the window replays from cache, byte-identical.
    let last = Request {
        client: 7,
        id: 1 + depth,
        op: RequestOp::Put {
            name: format!("fill-{}", depth - 1),
            bytes: b"x".to_vec(),
        },
    };
    let replayed_before = server.replayed();
    assert!(matches!(exchange(&last).body, Ok(RespBody::Unit)));
    assert_eq!(server.replayed(), replayed_before + 1, "cache must answer");
}

#[test]
fn shuffled_listings_on_a_posix_backend_never_change_the_dataset() {
    let f = fixture();
    for salt in [1u64, 99, 0x5AFE] {
        let fs = Arc::new(FaultFs::new(StoreFaultPlan::none()));
        let backend: Arc<dyn StorageBackend> = Arc::new(ShuffledListing {
            inner: fs.clone(),
            salt,
        });
        let outcome = resume_survey_on(&f.survey, backend.clone())
            .unwrap_or_else(|e| panic!("salt {salt}: shuffled run failed: {e}"));
        assert_eq!(outcome.dataset.fingerprint(), f.baseline_fingerprint);
        // Resume over the existing store: the scan now folds a shuffled
        // listing of real shard files.
        let resumed = resume_survey_on(&f.survey, backend.clone())
            .unwrap_or_else(|e| panic!("salt {salt}: shuffled resume failed: {e}"));
        assert_eq!(resumed.dataset.fingerprint(), f.baseline_fingerprint);
        assert_eq!(resumed.resumed_sites, SITES);
        match load_survey_dataset_on(&f.survey, backend).expect("shuffled load") {
            LoadOutcome::Complete { dataset, .. } => {
                assert_eq!(dataset.fingerprint(), f.baseline_fingerprint);
            }
            LoadOutcome::Incomplete {
                present, missing, ..
            } => panic!("salt {salt}: shuffled store incomplete {present}/{missing}"),
        }
    }
}
