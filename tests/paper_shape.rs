//! Cross-crate integration: does a small end-to-end study reproduce the
//! qualitative shape of the paper's results?
//!
//! These tests crawl a ~120-site web once (shared fixture) and assert the
//! directional claims of §5: which standards win, which get blocked, how
//! complex sites are, and that discovery converges across rounds. Exact
//! magnitudes are checked at full scale in EXPERIMENTS.md.

use bfu_crawler::BrowserProfile;
use browser_feature_usage::{Study, StudyConfig, StudyReport};
use std::sync::OnceLock;

static STUDY: OnceLock<Study> = OnceLock::new();

fn study() -> &'static Study {
    STUDY.get_or_init(|| {
        Study::run(StudyConfig {
            sites: 120,
            seed: 1606,
            rounds: 3,
            pages_per_site: 6,
            page_budget_ms: 10_000,
            fig7_profiles: true,
            threads: 2,
        })
    })
}

fn report() -> StudyReport {
    study().report()
}

#[test]
fn most_sites_are_measured() {
    // Paper: 9,733 of 10,000 (a few percent lost to dead/broken sites).
    let ds = study().dataset();
    let measured = ds.measured_sites();
    assert!(measured >= 110, "measured {measured}/120");
    assert!(measured < 120, "some sites must fail, as in the paper");
}

#[test]
fn dom_core_dominates_and_is_never_blocked_away() {
    let rep = report();
    let sp = &rep.standards;
    for abbrev in ["DOM1", "DOM", "DOM2-E"] {
        let (id, _) = bfu_webidl::catalog::by_abbrev(abbrev).unwrap();
        assert!(
            sp.popularity(id, BrowserProfile::Default) > 0.85,
            "{abbrev} should be near-universal"
        );
        assert!(
            sp.block_rate(id).unwrap() < 0.10,
            "{abbrev} should be essentially unblocked"
        );
    }
}

#[test]
fn channel_messaging_is_popular_but_heavily_blocked() {
    // §5.4's upper-right quadrant exemplar.
    let rep = report();
    let (hcm, _) = bfu_webidl::catalog::by_abbrev("H-CM").unwrap();
    let pop = rep.standards.popularity(hcm, BrowserProfile::Default);
    let br = rep.standards.block_rate(hcm).unwrap();
    assert!(pop > 0.3, "H-CM popularity {pop}");
    assert!(br > 0.5, "H-CM block rate {br} (paper: 77%)");
}

#[test]
fn svg_and_beacon_mostly_blocked() {
    let rep = report();
    for (abbrev, paper_rate) in [("SVG", 0.868), ("BE", 0.836), ("PT2", 0.937)] {
        let (id, _) = bfu_webidl::catalog::by_abbrev(abbrev).unwrap();
        if let Some(br) = rep.standards.block_rate(id) {
            assert!(
                br > paper_rate - 0.30,
                "{abbrev} block rate {br:.2} too far below paper {paper_rate}"
            );
        }
    }
}

#[test]
fn blocking_strictly_shrinks_the_feature_universe() {
    let rep = report();
    let fp = &rep.features;
    let never_default = fp.never_used(BrowserProfile::Default);
    let never_blocking = fp.never_used(BrowserProfile::Blocking);
    assert!(
        never_blocking > never_default,
        "{never_blocking} vs {never_default}"
    );
    // About half the registry goes unused even before blocking.
    assert!(never_default > 1392 / 3);
}

#[test]
fn fig7_shows_tracker_leaning_and_ad_leaning_standards() {
    let rep = report();
    assert!(!rep.fig7.is_empty());
    // WCR (WebCrypto) is tracker-leaning in the paper; UIE ad-leaning.
    if let Some(wcr) = rep.fig7.iter().find(|p| p.abbrev == "WCR") {
        assert!(
            wcr.tracker_block_rate > wcr.ad_block_rate - 0.05,
            "WCR: ad {:.2} vs tracker {:.2}",
            wcr.ad_block_rate,
            wcr.tracker_block_rate
        );
    }
    // And combined blocking is at least as strong as each single blocker.
    let (svg, _) = bfu_webidl::catalog::by_abbrev("SVG").unwrap();
    let combined = rep.standards.block_rate(svg).unwrap_or(0.0);
    let ad = rep
        .standards
        .block_rate_against(svg, BrowserProfile::AdblockOnly)
        .unwrap_or(0.0);
    assert!(combined + 1e-9 >= ad, "combined {combined} vs ad-only {ad}");
}

#[test]
fn site_complexity_sits_in_the_fig8_window() {
    let rep = report();
    let median = rep.fig8.median();
    assert!(
        (8.0..=36.0).contains(&median),
        "median standards/site = {median} (paper mode: 14-32)"
    );
    assert!(
        rep.fig8.max() <= 55,
        "max = {} (paper: ≤41)",
        rep.fig8.max()
    );
}

#[test]
fn discovery_converges_across_rounds() {
    let rep = report();
    assert!(!rep.table3.is_empty());
    let first = rep.table3[0];
    let last = *rep.table3.last().unwrap();
    assert!(
        last <= first + 0.2,
        "new standards per round should not grow: {:?}",
        rep.table3
    );
    assert!(
        last < 2.0,
        "round discovery should be small by the last round"
    );
}

#[test]
fn traffic_weighting_does_not_change_the_story() {
    // §5.5's conclusion, quantified.
    let rep = report();
    let dev = bfu_analysis::traffic::mean_deviation_from_diagonal(&rep.fig5);
    assert!(dev < 0.15, "mean |visit% − site%| = {dev:.3}");
}

#[test]
fn determinism_across_identical_runs() {
    let a = Study::run(StudyConfig {
        sites: 12,
        seed: 5,
        rounds: 1,
        pages_per_site: 3,
        page_budget_ms: 4_000,
        fig7_profiles: false,
        threads: 3,
    });
    let b = Study::run(StudyConfig {
        sites: 12,
        seed: 5,
        rounds: 1,
        pages_per_site: 3,
        page_budget_ms: 4_000,
        fig7_profiles: false,
        threads: 1, // thread count must not matter
    });
    assert_eq!(
        a.dataset().total_invocations(),
        b.dataset().total_invocations()
    );
    assert_eq!(a.dataset().total_pages(), b.dataset().total_pages());
}
