//! Property-based tests over the core data structures: URL parsing and
//! resolution, the HTTP codec, the filter engine (token index vs naive
//! scan), the selector engine and HTML parser (total on arbitrary input),
//! the mini-JS lexer/parser/interpreter (total and terminating under a
//! resource budget on arbitrary and mutated input), and the statistics
//! utilities.

use bfu_blocker::FilterEngine;
use bfu_net::{HttpRequest, HttpResponse, Method, ResourceType, Url};
use bfu_util::{cdf_points, Histogram, SimRng};
use proptest::prelude::*;

// ---------- URL ----------

fn host_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec("[a-z][a-z0-9]{0,6}", 1..4).prop_map(|labels| labels.join("."))
}

fn path_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec("[a-zA-Z0-9_-]{1,8}", 0..5)
        .prop_map(|segs| format!("/{}", segs.join("/")))
}

proptest! {
    #[test]
    fn url_display_reparses_identically(
        host in host_strategy(),
        path in path_strategy(),
        port in proptest::option::of(1u16..65535),
        query in proptest::option::of("[a-z]=[a-z0-9]{1,5}"),
    ) {
        let mut s = format!("http://{host}");
        if let Some(p) = port {
            s.push_str(&format!(":{p}"));
        }
        s.push_str(&path);
        if let Some(q) = &query {
            s.push('?');
            s.push_str(q);
        }
        let u = Url::parse(&s).unwrap();
        let reparsed = Url::parse(&u.to_string()).unwrap();
        prop_assert_eq!(u, reparsed);
    }

    #[test]
    fn url_join_always_yields_same_scheme_family(
        host in host_strategy(),
        base_path in path_strategy(),
        reference in "[a-zA-Z0-9_/.?=-]{0,24}",
    ) {
        let base = Url::parse(&format!("http://{host}{base_path}")).unwrap();
        if let Ok(joined) = base.join(&reference) {
            prop_assert!(joined.scheme() == "http" || joined.scheme() == "https");
            prop_assert!(joined.path().starts_with('/'));
        }
    }

    #[test]
    fn url_parse_never_panics(input in ".{0,60}") {
        let _ = Url::parse(&input);
    }

    #[test]
    fn normalized_paths_contain_no_dot_segments(
        host in host_strategy(),
        segs in proptest::collection::vec(prop_oneof![Just(".".to_owned()), Just("..".to_owned()), "[a-z]{1,5}".prop_map(String::from)], 0..6),
    ) {
        let path = format!("/{}", segs.join("/"));
        let u = Url::parse(&format!("http://{host}{path}")).unwrap();
        for seg in u.path_segments() {
            prop_assert!(seg != "." && seg != "..", "{}", u.path());
        }
    }
}

// ---------- HTTP codec ----------

proptest! {
    #[test]
    fn request_roundtrip(
        host in host_strategy(),
        path in path_strategy(),
        body in proptest::collection::vec(any::<u8>(), 0..128),
        header_val in "[a-zA-Z0-9 _-]{0,16}",
    ) {
        let url = Url::parse(&format!("http://{host}{path}")).unwrap();
        let mut req = HttpRequest::get(url, ResourceType::Xhr)
            .with_header("x-test", header_val.trim());
        req.method = Method::Post;
        req.body = body.clone();
        let decoded = HttpRequest::decode(&req.encode(), "http").unwrap();
        prop_assert_eq!(decoded.url, req.url);
        prop_assert_eq!(&decoded.body[..], &body[..]);
    }

    #[test]
    fn response_roundtrip(
        status in 100u16..600,
        body in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let mut resp = HttpResponse::ok("application/octet-stream", body.clone());
        resp.status = bfu_net::StatusCode(status);
        let decoded = HttpResponse::decode(&resp.encode()).unwrap();
        prop_assert_eq!(decoded.status.0, status);
        prop_assert_eq!(&decoded.body[..], &body[..]);
    }

    #[test]
    fn decode_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let _ = HttpResponse::decode(&bytes);
        let _ = HttpRequest::decode(&bytes, "http");
    }
}

// ---------- Filter engine: index must agree with the naive scan ----------

fn rule_strategy() -> impl Strategy<Value = String> {
    prop_oneof![
        host_strategy().prop_map(|h| format!("||{h}^")),
        host_strategy().prop_map(|h| format!("||{h}^$script,third-party")),
        "[a-z]{3,8}".prop_map(|s| format!("/{s}/*/unit^")),
        "[a-z]{4,10}".prop_map(|s| s),
        host_strategy().prop_map(|h| format!("@@||{h}/ok^")),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn token_index_matches_naive_scan(
        rules in proptest::collection::vec(rule_strategy(), 1..40),
        req_host in host_strategy(),
        req_path in path_strategy(),
        init_host in host_strategy(),
    ) {
        let engine = FilterEngine::from_list(&rules.join("\n"));
        let req = HttpRequest::get(
            Url::parse(&format!("http://{req_host}{req_path}")).unwrap(),
            ResourceType::Script,
        )
        .with_initiator(Url::parse(&format!("http://{init_host}/")).unwrap());
        prop_assert_eq!(
            engine.match_request(&req).is_some(),
            engine.match_request_naive(&req).is_some(),
            "index and naive scan disagree on {}", req.url
        );
    }
}

// ---------- DOM: selector + HTML parser totality ----------

proptest! {
    #[test]
    fn selector_parse_never_panics(input in ".{0,40}") {
        let _ = bfu_dom::Selector::parse(&input);
    }

    #[test]
    fn html_parse_total_and_visible_subset(input in ".{0,300}") {
        let doc = bfu_dom::html::parse(&input);
        // Tree invariants hold on arbitrary soup.
        for node in doc.iter_tree() {
            for &child in doc.children(node) {
                prop_assert_eq!(doc.parent(child), Some(node));
            }
        }
    }

    #[test]
    fn html_serialize_reparse_preserves_tags(
        tags in proptest::collection::vec("[a-z]{1,6}", 1..6),
        text in "[a-zA-Z ]{0,12}",
    ) {
        let mut src = String::new();
        for t in &tags {
            src.push_str(&format!("<{t}>"));
        }
        src.push_str(&text);
        for t in tags.iter().rev() {
            src.push_str(&format!("</{t}>"));
        }
        let doc = bfu_dom::html::parse(&src);
        let out = bfu_dom::html::serialize(&doc, doc.root());
        let doc2 = bfu_dom::html::parse(&out);
        let names = |d: &bfu_dom::Document| -> Vec<String> {
            d.elements().iter().map(|&n| d.tag(n).unwrap().to_owned()).collect()
        };
        prop_assert_eq!(names(&doc), names(&doc2));
    }
}

// ---------- mini-JS lexer/parser totality ----------

proptest! {
    #[test]
    fn script_lexer_never_panics(input in ".{0,120}") {
        let _ = bfu_script::token::lex(&input);
    }

    #[test]
    fn script_parser_never_panics(input in "[a-z0-9 +\\-*/(){};=.,'\"<>!&|]{0,120}") {
        let _ = bfu_script::parser::parse(&input);
    }

    #[test]
    fn numeric_expressions_evaluate(a in -1000i32..1000, b in 1i32..1000) {
        let mut interp = bfu_script::Interpreter::new();
        let v = interp
            .run_source(&format!("({a}) + ({b});"))
            .unwrap()
            .to_number();
        prop_assert_eq!(v, f64::from(a) + f64::from(b));
        let m = interp
            .run_source(&format!("({a}) % ({b});"))
            .unwrap()
            .to_number();
        prop_assert_eq!(m, f64::from(a) % f64::from(b));
    }
}

// ---------- script governor totality ----------
//
// The hostile-web invariant, in miniature: whatever bytes reach the script
// engine, parsing is total (errors, never panics or unbounded recursion)
// and execution under a [`ResourceBudget`] always terminates.

/// A tight budget: any runaway program traps on some axis within ~50k steps.
fn tight_budget() -> bfu_script::ResourceBudget {
    bfu_script::ResourceBudget {
        max_steps: 50_000,
        max_heap_cells: 2_000,
        max_string_bytes: 50_000,
        max_call_depth: 16,
    }
}

/// One plausible-JS token, for soup that often parses.
fn js_token() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("var".to_owned()),
        Just("function".to_owned()),
        Just("while".to_owned()),
        Just("if".to_owned()),
        Just("return".to_owned()),
        Just("true".to_owned()),
        Just("new".to_owned()),
        Just("{".to_owned()),
        Just("}".to_owned()),
        Just("(".to_owned()),
        Just(")".to_owned()),
        Just("[".to_owned()),
        Just("]".to_owned()),
        Just(";".to_owned()),
        Just("=".to_owned()),
        Just("+".to_owned()),
        Just(",".to_owned()),
        Just(".".to_owned()),
        Just("x".to_owned()),
        Just("f".to_owned()),
        Just("1".to_owned()),
        Just("'s'".to_owned()),
    ]
}

proptest! {
    #[test]
    fn parser_total_on_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        let src = String::from_utf8_lossy(&bytes);
        let _ = bfu_script::parser::parse(&src);
    }

    #[test]
    fn parser_depth_guard_is_an_error_not_a_crash(depth in 150usize..3000, which in 0usize..4) {
        let bomb = match which {
            0 => format!("var x = {}1{};", "(".repeat(depth), ")".repeat(depth)),
            1 => format!("var a = {}1{};", "[".repeat(depth), "]".repeat(depth)),
            2 => format!("var n = {}1;", "!".repeat(depth)),
            _ => "{".repeat(depth),
        };
        prop_assert!(bfu_script::parser::parse(&bomb).is_err());
    }

    #[test]
    fn interpreter_terminates_on_token_soup(
        tokens in proptest::collection::vec(js_token(), 0..60),
    ) {
        let src = tokens.join(" ");
        let mut interp = bfu_script::Interpreter::new();
        interp.set_budget(&tight_budget());
        // Parse errors and budget traps are fine; returning at all is the
        // property (the budget makes non-termination impossible).
        let _ = interp.run_source(&src);
    }

    #[test]
    fn interpreter_terminates_on_mutated_valid_programs(
        seed in any::<u64>(),
        flips in 1usize..8,
    ) {
        const TEMPLATE: &str = "var a = []; var i = 0; \
            function f(n) { if (n > 3) { return n; } return f(n + 1); } \
            while (i < 10) { a[i] = { x: f(i), s: 'ab' + 'cd' }; i = i + 1; } \
            a;";
        let mut bytes = TEMPLATE.as_bytes().to_vec();
        let mut rng = SimRng::new(seed);
        for _ in 0..flips {
            let ix = rng.below(bytes.len() as u64) as usize;
            bytes[ix] = (rng.below(94) + 32) as u8; // printable ASCII
        }
        let src = String::from_utf8_lossy(&bytes).into_owned();
        let mut interp = bfu_script::Interpreter::new();
        interp.set_budget(&tight_budget());
        let _ = interp.run_source(&src);
    }
}

// ---------- engine differential: tree-walk oracle vs bytecode VM ----------
//
// The bytecode VM must be *observationally identical* to the tree-walk
// interpreter on every axis a survey can measure: result value, the exact
// typed error, fuel consumed, heap cells allocated, and string bytes
// charged. The tree-walk engine is kept alive precisely to serve as this
// oracle.

/// Everything a survey could observe from one script execution.
#[derive(Debug, Clone, PartialEq)]
struct EngineTrace {
    outcome: Result<String, bfu_script::ScriptError>,
    fuel_left: u64,
    heap_len: usize,
    string_bytes: u64,
}

fn trace_treewalk(budget: &bfu_script::ResourceBudget, src: &str) -> EngineTrace {
    let mut interp = bfu_script::Interpreter::new();
    interp.set_budget(budget);
    let outcome = interp.run_source(src).map(|v| v.to_display());
    EngineTrace {
        outcome,
        fuel_left: interp.fuel(),
        heap_len: interp.heap.len(),
        string_bytes: interp.string_bytes_allocated(),
    }
}

fn trace_vm(budget: &bfu_script::ResourceBudget, src: &str) -> EngineTrace {
    let mut interp = bfu_script::Interpreter::new();
    interp.set_budget(budget);
    let outcome = match bfu_script::parser::parse(src) {
        Err(e) => Err(bfu_script::ScriptError::Parse(e)),
        Ok(program) => match bfu_script::compile(&program) {
            Ok(chunk) => bfu_script::run_chunk(&mut interp, &chunk)
                .map(|v| v.to_display())
                .map_err(bfu_script::ScriptError::Runtime),
            // Production falls back to the oracle on a compiler limit.
            Err(_) => interp
                .run(&program)
                .map(|v| v.to_display())
                .map_err(bfu_script::ScriptError::Runtime),
        },
    };
    EngineTrace {
        outcome,
        fuel_left: interp.fuel(),
        heap_len: interp.heap.len(),
        string_bytes: interp.string_bytes_allocated(),
    }
}

proptest! {
    #[test]
    fn engines_agree_on_token_soup(
        tokens in proptest::collection::vec(js_token(), 0..60),
    ) {
        let src = tokens.join(" ");
        let budget = tight_budget();
        prop_assert_eq!(
            trace_treewalk(&budget, &src),
            trace_vm(&budget, &src),
            "engine divergence on: {}", src
        );
    }

    #[test]
    fn engines_agree_on_mutated_valid_programs(
        seed in any::<u64>(),
        flips in 0usize..8,
    ) {
        const TEMPLATE: &str = "var a = []; var i = 0; \
            function f(n) { if (n > 3) { return n; } return f(n + 1); } \
            while (i < 10) { a[i] = { x: f(i), s: 'ab' + 'cd' }; i = i + 1; } \
            a;";
        let mut bytes = TEMPLATE.as_bytes().to_vec();
        let mut rng = SimRng::new(seed);
        for _ in 0..flips {
            let ix = rng.below(bytes.len() as u64) as usize;
            bytes[ix] = (rng.below(94) + 32) as u8; // printable ASCII
        }
        let src = String::from_utf8_lossy(&bytes).into_owned();
        let budget = tight_budget();
        prop_assert_eq!(
            trace_treewalk(&budget, &src),
            trace_vm(&budget, &src),
            "engine divergence on: {}", src
        );
    }
}

// ---------- compilation-cache determinism ----------
//
// The survey-wide script compilation cache is memoization, not measurement:
// for any web seed, the dataset fingerprint and Table 1 come out identical
// with the cache on or off, at 1 vs 8 worker threads, and under either
// script engine. The only Table 1 difference the cache may make is its own
// (effort-only) health block.

fn tiny_crawl(web_seed: u64, threads: usize, compile_cache: bool) -> bfu_crawler::Dataset {
    tiny_crawl_with_engine(
        web_seed,
        threads,
        compile_cache,
        bfu_browser::Engine::default(),
    )
}

fn tiny_crawl_with_engine(
    web_seed: u64,
    threads: usize,
    compile_cache: bool,
    engine: bfu_browser::Engine,
) -> bfu_crawler::Dataset {
    let web = bfu_webgen::SyntheticWeb::generate(bfu_webgen::WebConfig {
        sites: 12,
        seed: web_seed,
        script_weight: 0,
    });
    let mut config = bfu_crawler::CrawlConfig::quick(web_seed ^ 0xCAFE);
    config.rounds_per_profile = 1;
    config.pages_per_site = 3;
    config.threads = threads;
    config.compile_cache = compile_cache;
    config.browser.engine = engine;
    bfu_crawler::Survey::new(web, config).run()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]
    #[test]
    fn compile_cache_and_threads_never_change_measurements(web_seed in 0u64..1_000) {
        let cached_1 = tiny_crawl(web_seed, 1, true);
        let cached_8 = tiny_crawl(web_seed, 8, true);
        let scratch = tiny_crawl(web_seed, 1, false);
        prop_assert_eq!(cached_1.fingerprint(), cached_8.fingerprint());
        prop_assert_eq!(cached_1.fingerprint(), scratch.fingerprint());
        // Cache totals themselves are thread-invariant (misses == unique
        // sources, by parse-under-lock), and the cache did real work.
        prop_assert_eq!(cached_1.cache, cached_8.cache);
        prop_assert!(cached_1.cache.enabled);
        prop_assert!(cached_1.cache.script_hits > 0);
        prop_assert!(!scratch.cache.enabled);
        // Table 1 agrees exactly across thread counts, and across cache
        // on/off once the effort-only cache block is normalized away.
        let t_cached_1 = bfu_analysis::table1(&cached_1);
        let t_cached_8 = bfu_analysis::table1(&cached_8);
        let mut t_scratch = bfu_analysis::table1(&scratch);
        prop_assert_eq!(t_cached_1, t_cached_8);
        t_scratch.health.cache = cached_1.cache;
        prop_assert_eq!(t_cached_1, t_scratch);
    }

    #[test]
    fn engine_never_changes_measurements(web_seed in 0u64..1_000) {
        use bfu_browser::Engine;
        let vm = tiny_crawl_with_engine(web_seed, 1, true, Engine::Vm);
        let tree = tiny_crawl_with_engine(web_seed, 1, true, Engine::TreeWalk);
        let vm_scratch = tiny_crawl_with_engine(web_seed, 1, false, Engine::Vm);
        prop_assert_eq!(vm.fingerprint(), tree.fingerprint(),
            "VM and tree-walk must fingerprint identically");
        prop_assert_eq!(vm.fingerprint(), vm_scratch.fingerprint(),
            "chunk cache must not change VM measurements");
        // Same loss breakdown, not just the same features: typed script
        // errors and budget trips agree site by site (cache totals are the
        // one legitimate difference — the engines consult different cache
        // families — so normalize that block before comparing).
        let mut vm_health = vm.health();
        let mut tree_health = tree.health();
        vm_health.cache = bfu_crawler::CacheTotals::default();
        tree_health.cache = bfu_crawler::CacheTotals::default();
        prop_assert_eq!(vm_health, tree_health);
        // The engines consult different cache families.
        prop_assert!(vm.cache.chunk_misses > 0);
        prop_assert_eq!(tree.cache.chunk_hits + tree.cache.chunk_misses, 0);
        prop_assert_eq!(t1(&vm), t1(&tree));
    }
}

/// Table 1 with the effort-only cache block zeroed, for cross-engine
/// comparison (the engines consult different cache families).
fn t1(ds: &bfu_crawler::Dataset) -> bfu_analysis::Table1 {
    let mut t = bfu_analysis::table1(ds);
    t.health.cache = bfu_crawler::CacheTotals::default();
    t
}

// ---------- statistics ----------

proptest! {
    #[test]
    fn cdf_monotone_on_arbitrary_data(xs in proptest::collection::vec(-1e6f64..1e6, 0..80)) {
        let cdf = cdf_points(&xs);
        for w in cdf.windows(2) {
            prop_assert!(w[0].0 < w[1].0);
            prop_assert!(w[0].1 <= w[1].1);
        }
        if !xs.is_empty() {
            prop_assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn histogram_conserves_samples(xs in proptest::collection::vec(-10f64..70.0, 0..200)) {
        let mut h = Histogram::new(0.0, 60.0, 30);
        h.extend(xs.iter().copied());
        prop_assert_eq!(h.total() + h.outliers(), xs.len() as u64);
    }

    #[test]
    fn rng_below_in_range(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut rng = SimRng::new(seed);
        for _ in 0..32 {
            prop_assert!(rng.below(bound) < bound);
        }
    }
}

// ---------- store scrub ----------

/// Shared survey + dataset for the scrub invariance property: built once,
/// re-persisted (cheap) per case — only the *damage* varies with the seed.
fn scrub_fixture() -> &'static (bfu_crawler::Survey, bfu_crawler::Dataset) {
    use std::sync::OnceLock;
    static FIXTURE: OnceLock<(bfu_crawler::Survey, bfu_crawler::Dataset)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let web = bfu_webgen::SyntheticWeb::generate(bfu_webgen::WebConfig {
            sites: 6,
            seed: 0x5C,
            script_weight: 0,
        });
        let mut config = bfu_crawler::CrawlConfig::quick(0x5C0B);
        config.threads = 1;
        config.rounds_per_profile = 1;
        config.pages_per_site = 2;
        config.page_budget_ms = 2_000;
        let survey = bfu_crawler::Survey::new(web, config);
        let dataset = survey.run();
        (survey, dataset)
    })
}

/// A freshly persisted store with seed-derived damage: fragmented writer
/// sessions, one byte-flip somewhere in one shard (possibly its header),
/// and — on odd seeds — an unsealed duplicate-append crash artifact.
/// Same seed → byte-identical store.
fn damaged_store(seed: u64) -> std::sync::Arc<bfu_store::FaultFs> {
    use bfu_store::{DatasetStore, FaultFs, StorageBackend, StoreFaultPlan, StoreMeta};
    use std::sync::Arc;
    let (survey, dataset) = scrub_fixture();
    let fs = Arc::new(FaultFs::new(StoreFaultPlan::none()));
    let mut meta = StoreMeta::for_survey(survey);
    meta.shard_capacity = 3;
    let fragment = 1 + (seed % 3) as usize;
    for chunk in dataset.sites.chunks(fragment) {
        let store = DatasetStore::open_on(fs.clone() as Arc<dyn StorageBackend>, meta.clone())
            .expect("open session");
        for m in chunk {
            store.append(m).expect("append");
        }
        store
            .finish(&bfu_crawler::Provenance::of(survey, dataset))
            .expect("finish session");
    }
    let shards: Vec<String> = fs
        .visible_names()
        .into_iter()
        .filter(|n| n.starts_with("shard-") && n.ends_with(".bfu"))
        .collect();
    let victim = &shards[(seed / 3) as usize % shards.len()];
    let mut bytes = fs.get(victim).expect("read victim shard");
    let pos = (seed / 7) as usize % bytes.len();
    bytes[pos] ^= 1 << (seed % 8).max(1);
    fs.put(victim, &bytes).expect("write damage");
    if seed % 2 == 1 {
        let store =
            DatasetStore::open_on(fs.clone() as Arc<dyn StorageBackend>, meta).expect("reopen");
        store.append(&dataset.sites[0]).expect("duplicate append");
        drop(store); // unsealed crash artifact
    }
    fs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn scrub_report_and_repair_are_thread_count_invariant(seed in any::<u64>()) {
        use bfu_store::{DatasetStore, StorageBackend, StoreMeta};
        use std::sync::Arc;
        let (survey, _) = scrub_fixture();
        let mut meta = StoreMeta::for_survey(survey);
        meta.shard_capacity = 3;
        let fs1 = damaged_store(seed);
        let fs8 = damaged_store(seed);
        prop_assert_eq!(fs1.visible_names(), fs8.visible_names(),
            "identical seeds must build identical stores");
        let open = |fs: &Arc<bfu_store::FaultFs>| {
            DatasetStore::open_on(fs.clone() as Arc<dyn StorageBackend>, meta.clone())
                .expect("open damaged store")
        };
        let r1 = open(&fs1).scrub_with_threads(1).expect("scrub with 1 thread");
        let r8 = open(&fs8).scrub_with_threads(8).expect("scrub with 8 threads");
        prop_assert_eq!(&r1, &r8, "scrub reports must not depend on thread count");
        // Repair output — surviving objects, quarantine set, compaction —
        // must be identical too, not just the report.
        let mut names1 = fs1.visible_names();
        let mut names8 = fs8.visible_names();
        names1.sort();
        names8.sort();
        prop_assert_eq!(names1, names8);
        let scan1 = open(&fs1).scan().expect("scan 1");
        let scan8 = open(&fs8).scan().expect("scan 8");
        prop_assert_eq!(scan1.recovered, scan8.recovered);
        prop_assert_eq!(scan1.report, scan8.report);
    }
}
