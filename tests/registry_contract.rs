//! Cross-crate contract: the WebIDL registry, the browser API surface, and
//! the instrumentation must agree on the full 1,392-feature universe.

use bfu_browser::api::{self, HostEnv, IFACE_MARKER};
use bfu_browser::instrument::Instrumentation;
use bfu_browser::FeatureLog;
use bfu_net::Url;
use bfu_script::Interpreter;
use bfu_webidl::{catalog, FeatureKind, FeatureRegistry};
use std::cell::RefCell;
use std::rc::Rc;

fn rig() -> (Interpreter, bfu_browser::ApiSurface, Rc<FeatureRegistry>) {
    let registry = Rc::new(FeatureRegistry::build());
    let mut interp = Interpreter::new();
    let doc = bfu_dom::html::parse("<html><head></head><body></body></html>");
    let host = Rc::new(RefCell::new(HostEnv::new(
        doc,
        Url::parse("http://contract.test/").unwrap(),
    )));
    let api = api::install(&mut interp, &registry, host);
    (interp, api, registry)
}

#[test]
fn every_method_feature_is_callable_through_its_prototype() {
    let (interp, api, registry) = rig();
    let mut missing = Vec::new();
    for f in registry.features() {
        if f.kind != FeatureKind::Method {
            continue;
        }
        let proto = api.prototypes[&f.interface];
        let v = interp.heap.get_prop(proto, &f.member);
        match v.as_obj() {
            Some(o) if interp.heap.is_callable(o) => {}
            _ => missing.push(f.name.clone()),
        }
    }
    assert!(missing.is_empty(), "uncallable features: {missing:?}");
}

#[test]
fn every_interface_has_a_marked_prototype() {
    let (interp, api, registry) = rig();
    for f in registry.features() {
        let proto = api.prototypes[&f.interface];
        let marker = interp.heap.get_prop(proto, IFACE_MARKER).to_display();
        assert_eq!(marker, f.interface);
    }
}

#[test]
fn every_property_feature_is_attributable_after_instrumentation() {
    // Write every property feature through a realistic receiver and check
    // the instrumentation attributes each write to the right FeatureId.
    let registry = Rc::new(FeatureRegistry::build());
    let mut interp = Interpreter::new();
    let doc = bfu_dom::html::parse("<html><head></head><body></body></html>");
    let host = Rc::new(RefCell::new(HostEnv::new(
        doc,
        Url::parse("http://contract.test/").unwrap(),
    )));
    let api = api::install(&mut interp, &registry, host);
    let log = Rc::new(RefCell::new(FeatureLog::new()));
    Instrumentation::install(&mut interp, &api, &registry, log.clone());

    let singleton = |iface: &str| match iface {
        "Window" => Some("window"),
        "Navigator" => Some("navigator"),
        "Document" => Some("document"),
        "Performance" => Some("performance"),
        _ => None,
    };
    let mut checked = 0;
    for (ix, f) in registry.features().iter().enumerate() {
        if f.kind != FeatureKind::Property {
            continue;
        }
        // Sample every third property to keep the test quick; the sample
        // rotates across interfaces because features interleave.
        if ix % 3 != 0 {
            continue;
        }
        let src = match singleton(&f.interface) {
            Some(g) => format!("{g}.{} = 1;", f.member),
            None => format!("var o = new {}(); o.{} = 1;", f.interface, f.member),
        };
        interp
            .run_source(&src)
            .unwrap_or_else(|e| panic!("{}: {e}", f.name));
        let fid = bfu_webidl::FeatureId::from_usize(ix);
        assert!(
            log.borrow().saw(fid),
            "property write not attributed: {}",
            f.name
        );
        checked += 1;
    }
    assert!(checked > 100, "sampled {checked} property features");
}

#[test]
fn catalog_and_registry_feature_counts_agree() {
    let registry = FeatureRegistry::build();
    assert_eq!(registry.feature_count() as u32, catalog::feature_count());
    for std_id in registry.standard_ids() {
        assert_eq!(
            registry.features_of(std_id).len() as u32,
            registry.standard(std_id).features
        );
    }
}

#[test]
fn flagships_resolve_and_rank_zero() {
    let registry = FeatureRegistry::build();
    for info in catalog::CATALOG {
        let Some((iface, member, _)) = info.flagship else {
            continue;
        };
        let fid = registry
            .by_interface_member(iface, member)
            .unwrap_or_else(|| panic!("{}: flagship missing", info.abbrev));
        assert_eq!(registry.feature(fid).rank_in_standard, 0, "{}", info.abbrev);
        assert_eq!(
            registry.standard(registry.standard_of(fid)).abbrev,
            info.abbrev
        );
    }
}
