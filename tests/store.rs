//! Cross-crate integration of the dataset store: crash-safe persistence,
//! crawl resumption, and memoized analysis over a real (small) survey.
//!
//! The invariant under test throughout: however a dataset reaches analysis
//! — crawled in one run, resumed across a kill, or recovered around
//! corrupted bytes — its fingerprint and its rendered report are identical
//! to the uninterrupted run's.

use bfu_crawler::{CrawlConfig, Survey};
use bfu_store::{DatasetStore, LoadOutcome, StoreError, StoreMeta};
use bfu_webgen::{SyntheticWeb, WebConfig};
use browser_feature_usage::{Study, StudyConfig};
use std::fs;
use std::path::PathBuf;
use std::sync::OnceLock;

const SITES: usize = 16;
const SEED: u64 = 77;

struct Fixture {
    survey: Survey,
    baseline: bfu_crawler::Dataset,
}

static FIXTURE: OnceLock<Fixture> = OnceLock::new();

fn fixture() -> &'static Fixture {
    FIXTURE.get_or_init(|| {
        let web = SyntheticWeb::generate(WebConfig {
            sites: SITES,
            seed: SEED,
            script_weight: 0,
        });
        let survey = Survey::new(web, CrawlConfig::quick(5));
        let baseline = survey.run();
        Fixture { survey, baseline }
    })
}

fn temp_store(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bfu-int-store-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Write the full baseline into a finished store at `dir`.
fn write_full_store(dir: &std::path::Path) -> DatasetStore {
    let f = fixture();
    let store = DatasetStore::open(dir, StoreMeta::for_survey(&f.survey)).expect("open");
    for m in &f.baseline.sites {
        store.append(m).expect("append");
    }
    store
        .finish(&bfu_crawler::Provenance::of(&f.survey, &f.baseline))
        .expect("finish");
    store
}

/// The first shard file in `dir`, as (path, bytes).
fn first_shard(dir: &std::path::Path) -> (PathBuf, Vec<u8>) {
    let path = dir.join("shard-00000.bfu");
    let bytes = fs::read(&path).expect("shard file");
    (path, bytes)
}

#[test]
fn round_trip_preserves_analysis_fingerprint() {
    let f = fixture();
    let dir = temp_store("roundtrip");
    let store = write_full_store(&dir);
    let scan = store.scan().expect("scan");
    assert_eq!(scan.recovered, SITES);
    assert!(!scan.report.any_loss());

    match bfu_store::load_survey_dataset(&f.survey, &dir).expect("load") {
        LoadOutcome::Complete { dataset, .. } => {
            assert_eq!(dataset.fingerprint(), f.baseline.fingerprint());
        }
        LoadOutcome::Incomplete {
            present, missing, ..
        } => {
            panic!("full store loaded incomplete: {present}/{missing}")
        }
    }
    assert!(dir.join("MANIFEST").exists());
    assert!(dir.join("provenance.json").exists());
}

#[test]
fn flipped_payload_byte_loses_one_site_and_resume_heals_it() {
    let f = fixture();
    let dir = temp_store("flip");
    write_full_store(&dir);

    // Flip one byte inside the first record's payload (header is 16 bytes,
    // the length prefix 4 more; offset 25 lands mid-payload).
    let (path, mut bytes) = first_shard(&dir);
    bytes[25] ^= 0x40;
    fs::write(&path, &bytes).expect("rewrite shard");

    let store = DatasetStore::open(&dir, StoreMeta::for_survey(&f.survey)).expect("open");
    let scan = store.scan().expect("scan");
    assert_eq!(scan.report.records_corrupt, 1, "exactly the damaged record");
    assert_eq!(scan.recovered, SITES - 1, "every other record survives");
    assert!(scan.report.any_loss());

    // Resumption re-crawls only the lost site and lands on the baseline.
    let outcome = bfu_store::resume_survey(&f.survey, &dir).expect("resume");
    assert_eq!(outcome.resumed_sites, SITES - 1);
    assert_eq!(outcome.crawled_sites, 1);
    assert_eq!(outcome.dataset.fingerprint(), f.baseline.fingerprint());
}

#[test]
fn truncated_shard_keeps_prefix_and_resume_heals_the_tail() {
    let f = fixture();
    let dir = temp_store("truncate");
    write_full_store(&dir);

    // Chop the shard mid-file: seal and some records vanish, prefix stays.
    let (path, bytes) = first_shard(&dir);
    fs::write(&path, &bytes[..bytes.len() / 2]).expect("truncate shard");

    let store = DatasetStore::open(&dir, StoreMeta::for_survey(&f.survey)).expect("open");
    let scan = store.scan().expect("scan");
    assert!(scan.report.shards_truncated >= 1);
    assert!(scan.recovered < SITES, "tail records lost");
    assert!(scan.recovered > 0, "intact prefix recovered");

    let outcome = bfu_store::resume_survey(&f.survey, &dir).expect("resume");
    assert_eq!(outcome.dataset.fingerprint(), f.baseline.fingerprint());
}

#[test]
fn resume_after_kill_matches_uninterrupted_run() {
    let f = fixture();
    let dir = temp_store("kill");

    // Simulate a crawl killed mid-run: a store holding an arbitrary subset,
    // its shard unsealed, with a partial frame of trailing garbage — exactly
    // what flush-per-record appends leave on disk.
    let store = DatasetStore::open(&dir, StoreMeta::for_survey(&f.survey)).expect("open");
    for m in f.baseline.sites.iter().take(7) {
        store.append(m).expect("append");
    }
    drop(store); // no finish(): the process died
    let (path, mut bytes) = first_shard(&dir);
    bytes.extend_from_slice(&[0x99, 0x00, 0x00]); // torn write
    fs::write(&path, &bytes).expect("append garbage");

    let outcome = bfu_store::resume_survey(&f.survey, &dir).expect("resume");
    assert_eq!(outcome.resumed_sites, 7);
    assert_eq!(outcome.crawled_sites, SITES - 7);
    assert_eq!(
        outcome.dataset.fingerprint(),
        f.baseline.fingerprint(),
        "resumed dataset must be indistinguishable from an uninterrupted run"
    );

    // And the healed store now loads complete, with zero crawling.
    match bfu_store::load_survey_dataset(&f.survey, &dir).expect("load") {
        LoadOutcome::Complete { dataset, .. } => {
            assert_eq!(dataset.fingerprint(), f.baseline.fingerprint());
        }
        LoadOutcome::Incomplete {
            present, missing, ..
        } => {
            panic!("healed store still incomplete: {present}/{missing}")
        }
    }
}

#[test]
fn wrong_configuration_is_refused() {
    let dir = temp_store("refuse");
    write_full_store(&dir);

    let other_web = SyntheticWeb::generate(WebConfig {
        sites: SITES,
        seed: SEED + 1,
        script_weight: 0,
    });
    let other = Survey::new(other_web, CrawlConfig::quick(5));
    match bfu_store::load_survey_dataset(&other, &dir) {
        Err(StoreError::FingerprintMismatch { .. }) => {}
        other => panic!("expected fingerprint mismatch, got {other:?}"),
    }
}

#[test]
fn study_report_from_store_matches_fresh_study() {
    let dir = temp_store("study-report");
    let config = StudyConfig {
        sites: 10,
        seed: 404,
        rounds: 2,
        pages_per_site: 4,
        page_budget_ms: 8_000,
        fig7_profiles: true,
        threads: 2,
    };
    let fresh = Study::run(config.clone());
    let written = Study::run_with_store(config.clone(), &dir).expect("run with store");
    assert_eq!(written.crawled_sites, 10);

    let loaded = Study::from_store(config, &dir).expect("load");
    assert_eq!(loaded.crawled_sites, 0, "memoized analysis must not crawl");
    assert_eq!(
        loaded.study.report().render_all(),
        fresh.report().render_all(),
        "every table and figure regenerated from the store must match"
    );
}
