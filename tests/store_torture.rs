//! Crash-consistency torture: kill the store at every I/O boundary and
//! prove recovery reconstructs the uninterrupted dataset.
//!
//! The harness leans on `FaultFs`, the deterministic fault-injecting
//! backend: a fault-free enumeration run records the label of every backend
//! operation a workload performs; the sweep then re-runs the workload once
//! per operation with a simulated power cut at exactly that point, power
//! cycles, resumes, and asserts the final dataset fingerprint equals the
//! uninterrupted run's — no silent data loss, no panics, at *any* crash
//! point.
//!
//! By default the sweep is bounded (a deterministic stride subset, CI-fast);
//! set `BFU_TORTURE_FULL=1` for the exhaustive every-single-op sweep. The
//! `store_torture` binary in `bfu-bench` runs the same sweep standalone with
//! progress output.

use bfu_crawler::{CrawlConfig, Provenance, Survey};
use bfu_store::{
    load_survey_dataset_on, resume_survey_on, DatasetStore, FaultFs, LoadOutcome, Manifest,
    ResumeOutcome, StorageBackend, StoreError, StoreFaultPlan, StoreMeta,
};
use bfu_webgen::{SyntheticWeb, WebConfig};
use std::sync::{Arc, OnceLock};

const SITES: usize = 6;
const SEED: u64 = 91;

struct Fixture {
    survey: Survey,
    /// Fingerprint of the uninterrupted dataset — the invariance bar.
    baseline_fingerprint: u64,
    baseline: bfu_crawler::Dataset,
    /// Operation labels of one fault-free store-backed run, in order.
    trace: Vec<String>,
}

static FIXTURE: OnceLock<Fixture> = OnceLock::new();

fn fixture() -> &'static Fixture {
    FIXTURE.get_or_init(|| {
        let web = SyntheticWeb::generate(WebConfig {
            sites: SITES,
            seed: SEED,
            script_weight: 0,
        });
        let mut config = CrawlConfig::quick(9);
        // One worker: measurements are thread-invariant (a tested crawler
        // property), and a single thread makes the backend op sequence — the
        // crash-point coordinate system — identical across runs.
        config.threads = 1;
        // The sweep re-runs this crawl hundreds of times; shrink each run
        // while keeping two profiles (the store encodes per-profile data).
        config.rounds_per_profile = 1;
        config.pages_per_site = 2;
        config.page_budget_ms = 2_000;
        let survey = Survey::new(web, config);
        let baseline = survey.run();
        let fs = Arc::new(FaultFs::new(StoreFaultPlan::none()));
        let outcome = resume_on(&fs, &survey).expect("fault-free enumeration run");
        assert_eq!(
            outcome.dataset.fingerprint(),
            baseline.fingerprint(),
            "store-backed run must match the direct run before any torture"
        );
        Fixture {
            survey,
            baseline_fingerprint: baseline.fingerprint(),
            baseline,
            trace: fs.op_trace(),
        }
    })
}

fn resume_on(fs: &Arc<FaultFs>, survey: &Survey) -> Result<ResumeOutcome, StoreError> {
    let backend: Arc<dyn StorageBackend> = fs.clone();
    resume_survey_on(survey, backend)
}

/// The crash points to sweep: every op under `BFU_TORTURE_FULL=1` (or when
/// the workload is small), a deterministic stride subset otherwise.
fn crash_points(total: u64) -> Vec<u64> {
    const BUDGET: u64 = 48;
    if std::env::var_os("BFU_TORTURE_FULL").is_some() || total <= BUDGET {
        return (0..total).collect();
    }
    let stride = total.div_ceil(BUDGET) as usize;
    let mut points: Vec<u64> = (0..total).step_by(stride).collect();
    if points.last() != Some(&(total - 1)) {
        points.push(total - 1);
    }
    points
}

/// Assert `err` is the simulated power cut (possibly wrapped in
/// [`StoreError::Io`]), not some other failure leaking out of the crash.
fn assert_is_crash(err: &StoreError, k: u64, label: &str) {
    match err {
        StoreError::Io(e) => assert!(
            FaultFs::is_crash(e),
            "crash point {k} ({label}): expected power cut, got {e}"
        ),
        other => panic!("crash point {k} ({label}): unexpected error class {other}"),
    }
}

/// The tentpole sweep: a fresh survey-to-store run killed at every backend
/// operation, then power cycled and resumed. The resumed dataset must be
/// fingerprint-identical to the uninterrupted run's, and a follow-up load
/// must be complete — whatever the crash tore.
#[test]
fn every_crash_point_in_a_fresh_run_recovers() {
    let f = fixture();
    let total = f.trace.len() as u64;
    assert!(
        total > 40,
        "workload too small to be interesting: {total} ops"
    );
    for k in crash_points(total) {
        let label = &f.trace[k as usize];
        let plan = StoreFaultPlan::none()
            .with_seed(0xC4A5 ^ k)
            .with_crash_at(k);
        let fs = Arc::new(FaultFs::new(plan));
        let err = resume_on(&fs, &f.survey)
            .err()
            .unwrap_or_else(|| panic!("crash point {k} ({label}) never fired"));
        assert_is_crash(&err, k, label);
        fs.power_cycle();
        let recovered = resume_on(&fs, &f.survey)
            .unwrap_or_else(|e| panic!("crash point {k} ({label}): recovery failed: {e}"));
        assert_eq!(
            recovered.dataset.fingerprint(),
            f.baseline_fingerprint,
            "crash point {k} ({label}): recovered dataset diverged"
        );
        // And the healed store now loads complete, with zero crawling.
        let backend: Arc<dyn StorageBackend> = fs.clone();
        match load_survey_dataset_on(&f.survey, backend).expect("post-recovery load") {
            LoadOutcome::Complete { dataset, .. } => {
                assert_eq!(dataset.fingerprint(), f.baseline_fingerprint);
            }
            LoadOutcome::Incomplete {
                present, missing, ..
            } => {
                panic!("crash point {k} ({label}): store left incomplete {present}/{missing}")
            }
        }
    }
}

/// Build a battle-scarred store on `fs`: two fragmented sealed shards (from
/// two interrupted sessions), plus a garbage object squatting on a shard
/// name. Returns the op count consumed, so sweeps can start after it.
fn build_fragmented(fs: &Arc<FaultFs>, f: &Fixture) -> u64 {
    let mut meta = StoreMeta::for_survey(&f.survey);
    meta.shard_capacity = 4;
    for range in [0..2, 2..3] {
        let backend: Arc<dyn StorageBackend> = fs.clone();
        let store = DatasetStore::open_on(backend, meta.clone()).expect("open session");
        for m in &f.baseline.sites[range] {
            store.append(m).expect("append");
        }
        store
            .finish(&Provenance::of(&f.survey, &f.baseline))
            .expect("finish session");
    }
    fs.put("shard-00031.bfu", b"squatter: not a shard")
        .expect("plant garbage");
    fs.sync_dir().expect("sync garbage");
    fs.ops()
}

/// The scrub-repair sweep: resuming over a fragmented store with a corrupt
/// squatter exercises quarantine, compaction, manifest fix-up, and
/// self-healing re-crawl — killed at every op of *that* pass.
#[test]
fn every_crash_point_during_scrub_and_heal_recovers() {
    let f = fixture();
    // Enumerate the repair workload's ops.
    let fs = Arc::new(FaultFs::new(StoreFaultPlan::none()));
    let setup_ops = build_fragmented(&fs, f);
    let outcome = resume_on(&fs, &f.survey).expect("fault-free repair run");
    assert_eq!(outcome.dataset.fingerprint(), f.baseline_fingerprint);
    assert_eq!(outcome.resumed_sites, 3, "three sites lived in fragments");
    assert!(outcome.scrub.shards_quarantined >= 1, "{:?}", outcome.scrub);
    assert!(outcome.scrub.shards_compacted >= 2, "{:?}", outcome.scrub);
    let trace = fs.op_trace();
    let total = fs.ops();
    for k in crash_points(total - setup_ops) {
        let k = setup_ops + k;
        let label = &trace[k as usize];
        let plan = StoreFaultPlan::none()
            .with_seed(0x5C2B ^ k)
            .with_crash_at(k);
        let fs = Arc::new(FaultFs::new(plan));
        let built = build_fragmented(&fs, f);
        assert_eq!(built, setup_ops, "setup op sequence must be deterministic");
        let err = resume_on(&fs, &f.survey)
            .err()
            .unwrap_or_else(|| panic!("crash point {k} ({label}) never fired"));
        assert_is_crash(&err, k, label);
        fs.power_cycle();
        let recovered = resume_on(&fs, &f.survey)
            .unwrap_or_else(|e| panic!("crash point {k} ({label}): recovery failed: {e}"));
        assert_eq!(
            recovered.dataset.fingerprint(),
            f.baseline_fingerprint,
            "crash point {k} ({label}): recovered dataset diverged"
        );
        // Quarantine moves aside, never deletes: the squatter's bytes must
        // still exist *somewhere* after full recovery.
        assert!(
            fs.visible_names()
                .iter()
                .any(|n| n.contains(".quarantined")),
            "crash point {k} ({label}): quarantined evidence vanished"
        );
    }
}

/// Satellite: the manifest's two publish crash windows — between writing
/// the temp file and the rename, and between the rename and the directory
/// sync. After a kill in either window, a reader must see the old manifest
/// or the new one: parseable, right fingerprint, never torn.
#[test]
fn manifest_publish_windows_never_tear() {
    let f = fixture();
    let mut windows: Vec<u64> = Vec::new();
    for (i, label) in f.trace.iter().enumerate() {
        if label.contains("MANIFEST") {
            windows.push(i as u64);
            if label.starts_with("rename:") {
                // The dir-sync completing this publish: first syncdir after.
                if let Some(j) = f.trace[i..].iter().position(|l| l == "syncdir") {
                    windows.push((i + j) as u64);
                }
            }
        }
    }
    assert!(
        windows.len() >= 8,
        "expected several manifest ops, got {windows:?}"
    );
    for k in windows {
        let label = &f.trace[k as usize];
        let plan = StoreFaultPlan::none()
            .with_seed(0x7EA6 ^ k)
            .with_crash_at(k);
        let fs = Arc::new(FaultFs::new(plan));
        let err = resume_on(&fs, &f.survey)
            .err()
            .unwrap_or_else(|| panic!("crash point {k} ({label}) never fired"));
        assert_is_crash(&err, k, label);
        fs.power_cycle();
        // Old manifest, new manifest, or (before the very first publish
        // committed) none at all — but never a torn one: `read` would
        // return BadManifest and this expect would fail the test.
        let manifest = Manifest::read(fs.as_ref() as &dyn StorageBackend)
            .unwrap_or_else(|e| panic!("crash point {k} ({label}): torn manifest: {e}"));
        if let Some(m) = manifest {
            assert_eq!(m.fingerprint, f.survey.fingerprint());
        }
    }
}

/// Satellite: a signal storm plus a miserly kernel — spurious `EINTR` on a
/// quarter of all operations and every multi-byte write split in half —
/// must slow the store down, never corrupt it.
#[test]
fn eintr_storms_and_short_writes_never_corrupt() {
    let f = fixture();
    for seed in [1u64, 2, 3] {
        let plan = StoreFaultPlan::none()
            .with_seed(seed)
            .with_eintr_chance(0.25)
            .with_short_writes();
        let fs = Arc::new(FaultFs::new(plan));
        let outcome = resume_on(&fs, &f.survey)
            .unwrap_or_else(|e| panic!("seed {seed}: transient faults broke the run: {e}"));
        assert_eq!(outcome.dataset.fingerprint(), f.baseline_fingerprint);
        assert!(!outcome.report.any_loss());
    }
}

/// Satellite: a full disk fails the run with a clean `ENOSPC` error — no
/// panic, no torn store — and the very next resume completes the dataset.
#[test]
fn enospc_surfaces_cleanly_and_the_next_resume_heals() {
    let f = fixture();
    let writes: Vec<u64> = f
        .trace
        .iter()
        .enumerate()
        .filter(|(_, l)| l.starts_with("write:") || l.starts_with("create:"))
        .map(|(i, _)| i as u64)
        .collect();
    assert!(writes.len() > 10, "workload writes: {}", writes.len());
    // A bounded, spread-out subset: ENOSPC is cheaper to prove than crashes.
    for &k in writes.iter().step_by(writes.len().div_ceil(12).max(1)) {
        let label = &f.trace[k as usize];
        let plan = StoreFaultPlan::none()
            .with_seed(0xD15C ^ k)
            .with_enospc_at(k);
        let fs = Arc::new(FaultFs::new(plan));
        let err = resume_on(&fs, &f.survey)
            .err()
            .unwrap_or_else(|| panic!("ENOSPC at {k} ({label}) never surfaced"));
        match &err {
            StoreError::Io(e) => {
                assert!(!FaultFs::is_crash(e), "ENOSPC is an error, not a crash");
                assert!(e.to_string().contains("ENOSPC"), "op {k}: {e}");
            }
            other => panic!("ENOSPC at {k} ({label}): unexpected class {other}"),
        }
        // No power cycle needed — the machine never died. Resume heals.
        let recovered = resume_on(&fs, &f.survey)
            .unwrap_or_else(|e| panic!("ENOSPC at {k} ({label}): re-resume failed: {e}"));
        assert_eq!(recovered.dataset.fingerprint(), f.baseline_fingerprint);
    }
}
